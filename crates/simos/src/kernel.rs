//! The kernel: clock, processes, scheduler loop, syscall dispatch, signal
//! delivery, kernel threads, modules, timers, and the filesystem.
//!
//! This is where the paper's comparative claims become mechanically true:
//! every user/kernel crossing, context switch, address-space switch, page
//! fault and signal delivery passes through here and is charged from the
//! [`CostModel`].

use crate::apps::{self, AppParams, GuestMemIo, NativeKind};
use crate::cost::{CostModel, PAGE_SIZE};
use crate::fs::{FsError, FsNode, OpenFlags, SimFs};
use crate::kthread::{KtState, KThread};
use crate::mem::{AccessOutcome, AddressSpace, Prot, TrackMode, TEXT_BASE};
#[cfg(test)]
use crate::mem::DATA_BASE;
use crate::module::{KernelModule, KthreadStatus, UserAgent};
use crate::pcb::{FdTable, Pcb, ProcState, ProgramSpec, Regs};
use crate::sched::{RunQueue, SchedPolicy};
use crate::signal::{
    builtin_default_action, DefaultAction, Sig, SigAction, SignalState, UserHandlerKind,
};
use crate::stats::KernelStats;
use crate::syscall::{MaskHow, Syscall, Whence};
use crate::timer::{TimerAction, TimerId, TimerWheel};
use crate::faultpoint::FaultHandle;
use crate::trace::{KernelEvent, TlbFlushSite, TraceHandle};
use crate::types::{
    sysret_encode, Errno, FaultKind, Fd, KtId, OfdId, Pid, SimError, SimResult, SysResult, Task,
};
use crate::vm::{self, Instr, SIG_FRAME_BYTES};
use std::collections::BTreeMap;

/// What an open-file description points at.
#[derive(Debug, Clone, PartialEq)]
pub enum OfdKind {
    Regular,
    Device { module: String, minor: u32 },
    Proc { module: String, tag: String },
}

/// A kernel open-file description (shared between dup'ed descriptors).
#[derive(Debug, Clone)]
pub struct OpenFile {
    pub path: String,
    pub kind: OfdKind,
    pub offset: u64,
    pub flags: OpenFlags,
    pub refs: u32,
}

/// Default chunk size for modelled user-level I/O loops (64 KiB, the usual
/// stdio buffer scale of the era).
pub const USER_IO_CHUNK: u64 = 64 * 1024;

/// The simulated kernel.
pub struct Kernel {
    pub cost: CostModel,
    clock: u64,
    procs: BTreeMap<u32, Pcb>,
    next_pid: u32,
    pub runqueue: RunQueue,
    current: Option<Task>,
    last_task: Option<Task>,
    active_mm: Option<Pid>,
    ofds: BTreeMap<u32, OpenFile>,
    next_ofd: u32,
    pub fs: SimFs,
    modules: BTreeMap<String, Option<Box<dyn KernelModule>>>,
    agents: BTreeMap<String, Option<Box<dyn UserAgent>>>,
    ext_slots: BTreeMap<u32, String>,
    next_ext_slot: u32,
    kthreads: BTreeMap<u32, KThread>,
    next_kt: u32,
    pub timers: TimerWheel,
    /// Signals whose *default action* a module has claimed (e.g. SIGCKPT →
    /// kernel-level checkpoint, the CHPOX scheme).
    signal_claims: BTreeMap<u32, String>,
    pub stats: KernelStats,
    /// Structured event sink ([`crate::trace`]); the default no-op sink
    /// rejects events on one atomic load, so instrumentation stays free
    /// unless a recording handle is installed with [`Kernel::set_trace`].
    pub trace: TraceHandle,
    /// Fault-injection plan ([`crate::faultpoint`]); the default disabled
    /// handle makes every site a single relaxed atomic load, so the hooks
    /// cost nothing and charge no virtual time unless a recording or armed
    /// handle is installed with [`Kernel::set_faults`].
    pub faults: FaultHandle,
    next_tick_at: u64,
}

impl Kernel {
    pub fn new(cost: CostModel) -> Self {
        let tick = cost.tick_interval_ns;
        Kernel {
            cost,
            clock: 0,
            procs: BTreeMap::new(),
            next_pid: 1,
            runqueue: RunQueue::new(),
            current: None,
            last_task: None,
            active_mm: None,
            ofds: BTreeMap::new(),
            next_ofd: 1,
            fs: SimFs::new(),
            modules: BTreeMap::new(),
            agents: BTreeMap::new(),
            ext_slots: BTreeMap::new(),
            next_ext_slot: 0,
            kthreads: BTreeMap::new(),
            next_kt: 1,
            timers: TimerWheel::new(),
            signal_claims: BTreeMap::new(),
            stats: KernelStats::default(),
            trace: TraceHandle::disabled(),
            faults: FaultHandle::disabled(),
            next_tick_at: tick,
        }
    }

    /// Install a trace sink (usually [`TraceHandle::recording`]). The same
    /// handle may be shared with storage backends and other kernels to
    /// collect one cluster-wide trace.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Install a fault-injection handle (usually [`FaultHandle::recording`]
    /// or [`FaultHandle::armed`]). Share the same handle with the storage
    /// backends (via `FaultInjectStore`) and the restart kernel so one plan
    /// covers checkpoint, media events, and restart.
    pub fn set_faults(&mut self, faults: FaultHandle) {
        self.faults = faults;
    }

    /// A mechanism-phase fault-injection site (`mech/<mechanism>/<point>`).
    /// Free when injection is disabled: one relaxed atomic load, no
    /// allocation, no virtual-time charge. Returns
    /// [`SimError::InjectedFault`] when the armed fault fires here; a
    /// fail-stop additionally marks the node crashed so the scheduler loop
    /// refuses to run until the driver models repair.
    pub fn faultpoint(&mut self, mechanism: &str, point: &str) -> SimResult<()> {
        if self.faults.is_off() {
            return Ok(());
        }
        let base = format!("mech/{mechanism}/{point}");
        match self.faults.check(&base, 0) {
            None => Ok(()),
            Some(_) => Err(SimError::InjectedFault {
                site: self.faults.fired().unwrap_or(base),
            }),
        }
    }

    // ------------------------------------------------------------------
    // Time.
    // ------------------------------------------------------------------

    /// Current virtual time (ns).
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Charge kernel-mode time.
    pub fn charge(&mut self, ns: u64) {
        self.clock += ns;
        self.stats.kernel_ns += ns;
    }

    /// Charge user-mode time.
    pub fn charge_user(&mut self, ns: u64) {
        self.clock += ns;
        self.stats.user_ns += ns;
    }

    /// Charge the cost of a user-level I/O loop moving `bytes` through
    /// `write`/`read` syscalls in `chunk`-sized pieces (crossings + copy).
    /// Used by modelled user-level checkpoint libraries.
    pub fn charge_user_io(&mut self, bytes: u64, chunk: u64) {
        let calls = bytes.div_ceil(chunk.max(1)).max(1);
        self.stats.syscalls += calls;
        let t = calls * self.cost.syscall_round_trip() + self.cost.memcpy(bytes);
        self.charge(t);
    }

    // ------------------------------------------------------------------
    // Process lifecycle.
    // ------------------------------------------------------------------

    fn alloc_pid(&mut self) -> Pid {
        loop {
            let pid = self.next_pid;
            self.next_pid = self.next_pid.wrapping_add(1).max(1);
            if !self.procs.contains_key(&pid) {
                return Pid(pid);
            }
        }
    }

    /// Spawn a native-app process (see [`crate::apps`]).
    pub fn spawn_native(&mut self, kind: NativeKind, params: AppParams) -> SimResult<Pid> {
        let data_bytes = PAGE_SIZE + params.mem_bytes + PAGE_SIZE;
        let mem = AddressSpace::new(PAGE_SIZE, data_bytes);
        let pid = self.alloc_pid();
        let pcb = Pcb {
            pid,
            ppid: Pid(0),
            state: ProcState::Ready,
            policy: SchedPolicy::Other { nice: 0 },
            regs: Regs::default(),
            mem,
            fds: FdTable::new(),
            sig: SignalState::new(),
            program: ProgramSpec::Native {
                kind,
                params: params.clone(),
            },
            user_rt: crate::userrt::UserRuntime::new(),
            cpu_ns: 0,
            start_ns: self.clock,
            work_done: 0,
            frozen_for_ckpt: false,
            cow_pending: Default::default(),
        };
        self.procs.insert(pid.0, pcb);
        // Initialize app state in guest memory (charged as one bulk copy
        // for the kinds that pre-fill their arrays).
        {
            let mut io = KernelMemIo::new(self, pid);
            apps::init(kind, &params, &mut io);
            io.finish()?;
        }
        if matches!(kind, NativeKind::ReadMostly | NativeKind::Stencil2D) {
            let t = self.cost.memcpy(params.mem_bytes);
            self.charge_user(t);
        }
        self.runqueue
            .enqueue(Task::Process(pid), SchedPolicy::Other { nice: 0 });
        Ok(pid)
    }

    /// Spawn a VM-program process.
    pub fn spawn_vm(&mut self, text: Vec<u32>, name: &str) -> SimResult<Pid> {
        if text.is_empty() {
            return Err(SimError::Usage("empty VM text".into()));
        }
        let mem = AddressSpace::new((text.len() as u64) * 4, 4 * PAGE_SIZE);
        let pid = self.alloc_pid();
        let mut regs = Regs {
            pc: TEXT_BASE,
            ..Regs::default()
        };
        regs.gpr[crate::asm::SP as usize] = crate::mem::STACK_TOP - 64;
        let pcb = Pcb {
            pid,
            ppid: Pid(0),
            state: ProcState::Ready,
            policy: SchedPolicy::Other { nice: 0 },
            regs,
            mem,
            fds: FdTable::new(),
            sig: SignalState::new(),
            program: ProgramSpec::Vm {
                text,
                name: name.to_string(),
            },
            user_rt: crate::userrt::UserRuntime::new(),
            cpu_ns: 0,
            start_ns: self.clock,
            work_done: 0,
            frozen_for_ckpt: false,
            cow_pending: Default::default(),
        };
        self.procs.insert(pid.0, pcb);
        self.runqueue
            .enqueue(Task::Process(pid), SchedPolicy::Other { nice: 0 });
        Ok(pid)
    }

    /// Insert a fully-constructed PCB (used by restart). Fails with
    /// `Usage` if the pid is already taken — the resource-conflict case pod
    /// virtualization exists to solve.
    pub fn adopt_process(&mut self, pcb: Pcb) -> SimResult<Pid> {
        let pid = pcb.pid;
        if self.procs.contains_key(&pid.0) {
            return Err(SimError::Usage(format!(
                "pid {pid} already exists on this kernel"
            )));
        }
        let policy = pcb.policy;
        let runnable = pcb.is_runnable();
        // Bump reference counts for restored descriptors.
        for (_, e) in pcb.fds.iter() {
            if let Some(ofd) = self.ofds.get_mut(&e.ofd.0) {
                ofd.refs += 1;
            }
        }
        self.procs.insert(pid.0, pcb);
        if runnable {
            self.runqueue.enqueue(Task::Process(pid), policy);
        }
        Ok(pid)
    }

    /// A pid guaranteed to be free right now.
    pub fn fresh_pid(&mut self) -> Pid {
        self.alloc_pid()
    }

    pub fn process(&self, pid: Pid) -> Option<&Pcb> {
        self.procs.get(&pid.0)
    }

    pub fn process_mut(&mut self, pid: Pid) -> Option<&mut Pcb> {
        self.procs.get_mut(&pid.0)
    }

    pub fn pids(&self) -> Vec<Pid> {
        self.procs.keys().map(|p| Pid(*p)).collect()
    }

    /// Remove a zombie from the table (mirrors `wait` reaping).
    pub fn reap(&mut self, pid: Pid) -> SimResult<i32> {
        match self.procs.get(&pid.0) {
            Some(p) if p.has_exited() => {
                let code = p.exit_code().unwrap_or(-1);
                self.procs.remove(&pid.0);
                Ok(code)
            }
            Some(_) => Err(SimError::Usage(format!("{pid} has not exited"))),
            None => Err(SimError::NoSuchProcess(pid)),
        }
    }

    fn exit_process(&mut self, pid: Pid, code: i32) {
        let fds: Vec<OfdId> = match self.procs.get(&pid.0) {
            Some(p) => p.fds.iter().map(|(_, e)| e.ofd).collect(),
            None => return,
        };
        for ofd in fds {
            self.ofd_decref(ofd);
        }
        self.timers.cancel_owned(pid);
        self.runqueue.dequeue(Task::Process(pid));
        let ppid = {
            let p = self.procs.get_mut(&pid.0).expect("checked above");
            p.state = ProcState::Zombie { code };
            p.mem.track = TrackMode::Off;
            p.ppid
        };
        if self.procs.contains_key(&ppid.0) {
            self.post_signal(ppid, Sig::SIGCHLD);
        }
    }

    /// Remove a process from the runqueue for checkpointing (the paper's
    /// "mechanism to stop the application … like removing the application
    /// from its runqueue list").
    pub fn freeze_process(&mut self, pid: Pid) -> SimResult<()> {
        let p = self
            .procs
            .get_mut(&pid.0)
            .ok_or(SimError::NoSuchProcess(pid))?;
        if p.has_exited() {
            return Err(SimError::Usage(format!("{pid} already exited")));
        }
        p.frozen_for_ckpt = true;
        self.runqueue.dequeue(Task::Process(pid));
        self.trace.kernel(KernelEvent::Freeze, self.clock, 0);
        Ok(())
    }

    /// Undo [`Kernel::freeze_process`].
    pub fn thaw_process(&mut self, pid: Pid) -> SimResult<()> {
        let (policy, runnable) = {
            let p = self
                .procs
                .get_mut(&pid.0)
                .ok_or(SimError::NoSuchProcess(pid))?;
            p.frozen_for_ckpt = false;
            (p.policy, p.is_runnable())
        };
        if runnable {
            self.runqueue.enqueue(Task::Process(pid), policy);
        }
        self.trace.kernel(KernelEvent::Thaw, self.clock, 0);
        Ok(())
    }

    /// Fork `parent`: the child is an exact copy with a fresh pid. Charges
    /// the fork cost and arms COW accounting on the parent. The child
    /// starts **stopped** (our only callers are checkpoint mechanisms and
    /// VM `fork`, which re-readies it explicitly).
    pub fn fork_process(&mut self, parent: Pid) -> SimResult<Pid> {
        let child_pid = self.alloc_pid();
        let (cost, child) = {
            let p = self
                .procs
                .get(&parent.0)
                .ok_or(SimError::NoSuchProcess(parent))?;
            let resident = p.mem.resident_count() as u64;
            let cost = self.cost.fork_base_ns + resident * self.cost.fork_per_page_ns;
            let mut child = p.clone();
            child.pid = child_pid;
            child.ppid = parent;
            child.state = ProcState::Stopped;
            child.frozen_for_ckpt = false;
            child.cow_pending.clear();
            child.cpu_ns = 0;
            child.start_ns = self.clock;
            (cost, child)
        };
        self.charge(cost);
        self.stats.forks += 1;
        self.trace.kernel(KernelEvent::Fork, self.clock, cost);
        // Arm COW accounting on the parent.
        {
            let p = self.procs.get_mut(&parent.0).expect("parent exists");
            p.cow_pending = p.mem.resident_pages().collect();
        }
        for (_, e) in child.fds.iter() {
            if let Some(ofd) = self.ofds.get_mut(&e.ofd.0) {
                ofd.refs += 1;
            }
        }
        self.procs.insert(child_pid.0, child);
        Ok(child_pid)
    }

    /// Drop COW accounting armed by a fork (called when the forked copy has
    /// been saved and discarded).
    pub fn end_cow(&mut self, parent: Pid) {
        if let Some(p) = self.procs.get_mut(&parent.0) {
            p.cow_pending.clear();
        }
    }

    // ------------------------------------------------------------------
    // Modules, agents, extension syscalls, kernel threads.
    // ------------------------------------------------------------------

    /// Register a kernel module (loadable or static) and run its
    /// `on_load` hook.
    pub fn register_module(&mut self, module: Box<dyn KernelModule>) -> SimResult<()> {
        let name = module.name().to_string();
        if self.modules.contains_key(&name) {
            return Err(SimError::Usage(format!("module {name} already loaded")));
        }
        self.modules.insert(name.clone(), Some(module));
        self.dispatch_module(&name, |m, k| m.on_load(k));
        Ok(())
    }

    /// Unload a loadable module (static-kernel extensions refuse).
    pub fn unload_module(&mut self, name: &str) -> SimResult<()> {
        let loadable = self
            .modules
            .get(name)
            .and_then(|s| s.as_ref().map(|m| m.is_loadable()))
            .ok_or_else(|| SimError::Usage(format!("module {name} not loaded")))?;
        if !loadable {
            return Err(SimError::Usage(format!(
                "{name} is in the static kernel and cannot be unloaded"
            )));
        }
        self.dispatch_module(name, |m, k| m.on_unload(k));
        self.modules.remove(name);
        self.ext_slots.retain(|_, m| m != name);
        self.signal_claims.retain(|_, m| m != name);
        self.kthreads.retain(|_, kt| kt.module != name);
        Ok(())
    }

    pub fn module_loaded(&self, name: &str) -> bool {
        self.modules.contains_key(name)
    }

    /// Dispatch a closure against a module with the module temporarily
    /// detached from the registry (so it can receive `&mut Kernel`).
    pub fn dispatch_module<R>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut dyn KernelModule, &mut Kernel) -> R,
    ) -> Option<R> {
        let mut m = self.modules.get_mut(name)?.take()?;
        let r = f(m.as_mut(), self);
        if let Some(slot) = self.modules.get_mut(name) {
            *slot = Some(m);
        }
        Some(r)
    }

    /// Downcasting module accessor for embedders.
    pub fn with_module_mut<T: KernelModule, R>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut T, &mut Kernel) -> R,
    ) -> Option<R> {
        let mut m = self.modules.get_mut(name)?.take()?;
        let r = m.as_any_mut().downcast_mut::<T>().map(|t| f(t, self));
        if let Some(slot) = self.modules.get_mut(name) {
            *slot = Some(m);
        }
        r
    }

    /// Read-only downcasting module accessor. Unlike
    /// [`Kernel::with_module_mut`] the module stays in the registry, so
    /// this works on `&Kernel` — mechanism `outcomes` run through here.
    pub fn with_module<T: KernelModule, R>(
        &self,
        name: &str,
        f: impl FnOnce(&T) -> R,
    ) -> Option<R> {
        let m = self.modules.get(name)?.as_ref()?;
        m.as_any().downcast_ref::<T>().map(f)
    }

    /// Register a user-level agent (checkpoint library code).
    pub fn register_agent(&mut self, agent: Box<dyn UserAgent>) -> SimResult<()> {
        let name = agent.name().to_string();
        if self.agents.contains_key(&name) {
            return Err(SimError::Usage(format!("agent {name} already registered")));
        }
        self.agents.insert(name, Some(agent));
        Ok(())
    }

    pub fn dispatch_agent<R>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut dyn UserAgent, &mut Kernel) -> R,
    ) -> Option<R> {
        let mut a = self.agents.get_mut(name)?.take()?;
        let r = f(a.as_mut(), self);
        if let Some(slot) = self.agents.get_mut(name) {
            *slot = Some(a);
        }
        Some(r)
    }

    pub fn with_agent_mut<T: UserAgent, R>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut T, &mut Kernel) -> R,
    ) -> Option<R> {
        let mut a = self.agents.get_mut(name)?.take()?;
        let r = a.as_any_mut().downcast_mut::<T>().map(|t| f(t, self));
        if let Some(slot) = self.agents.get_mut(name) {
            *slot = Some(a);
        }
        r
    }

    /// Read-only downcasting agent accessor (see [`Kernel::with_module`]).
    pub fn with_agent<T: UserAgent, R>(
        &self,
        name: &str,
        f: impl FnOnce(&T) -> R,
    ) -> Option<R> {
        let a = self.agents.get(name)?.as_ref()?;
        a.as_any().downcast_ref::<T>().map(f)
    }

    /// Allocate an extension-syscall slot owned by `module`.
    pub fn register_ext_syscall(&mut self, module: &str) -> u32 {
        let slot = self.next_ext_slot;
        self.next_ext_slot += 1;
        self.ext_slots.insert(slot, module.to_string());
        slot
    }

    /// Claim the default action of `sig` for a module: when a process
    /// receives `sig` with `SigAction::Default`, the module's
    /// `kernel_signal` hook runs in the process's kernel context.
    pub fn claim_signal_default(&mut self, sig: Sig, module: &str) {
        self.signal_claims.insert(sig.0, module.to_string());
    }

    /// Create a kernel thread owned by `module`.
    pub fn spawn_kthread(&mut self, name: &str, module: &str, policy: SchedPolicy) -> KtId {
        let id = KtId(self.next_kt);
        self.next_kt += 1;
        self.kthreads
            .insert(id.0, KThread::new(id, name, module, policy));
        id
    }

    /// Wake a kernel thread (enqueue it).
    pub fn wake_kthread(&mut self, kt: KtId) -> SimResult<()> {
        let t = self
            .kthreads
            .get_mut(&kt.0)
            .ok_or(SimError::NoSuchKThread(kt))?;
        if t.state == KtState::Dead {
            return Err(SimError::NoSuchKThread(kt));
        }
        t.state = KtState::Ready;
        t.wakeups += 1;
        let policy = t.policy;
        self.runqueue.enqueue(Task::KThread(kt), policy);
        Ok(())
    }

    pub fn kthread(&self, kt: KtId) -> Option<&KThread> {
        self.kthreads.get(&kt.0)
    }

    /// A kernel thread needs `pid`'s address space. Charges the
    /// address-space switch + TLB penalty iff the active space differs —
    /// the paper's kernel-thread cost (Section 4.1).
    pub fn kthread_attach_mm(&mut self, pid: Pid) -> SimResult<()> {
        if !self.procs.contains_key(&pid.0) {
            return Err(SimError::NoSuchProcess(pid));
        }
        if self.active_mm != Some(pid) {
            let t = self.cost.mm_switch();
            self.charge(t);
            self.stats.mm_switches += 1;
            self.trace.kernel(KernelEvent::MmSwitch, self.clock, t);
            self.trace.kernel(KernelEvent::TlbFlush, self.clock, 0);
            // The software TLB mirrors the hardware one it models: the
            // incoming space starts translation-cold after a switch.
            if let Some(p) = self.procs.get_mut(&pid.0) {
                p.mem.tlb_flush();
            }
            self.trace.soft_tlb_flush(TlbFlushSite::MmSwitch);
            self.active_mm = Some(pid);
        }
        Ok(())
    }

    /// The address space currently loaded (for tests/experiments).
    pub fn active_mm(&self) -> Option<Pid> {
        self.active_mm
    }

    // ------------------------------------------------------------------
    // Signals.
    // ------------------------------------------------------------------

    /// Post a signal from kernel context (no syscall cost).
    pub fn post_signal(&mut self, pid: Pid, sig: Sig) {
        let Some(p) = self.procs.get_mut(&pid.0) else {
            return;
        };
        if p.has_exited() {
            return;
        }
        p.sig.post(sig);
        // Interruptible sleep: any signal wakes a sleeper; SIGCONT/SIGKILL
        // wake the stopped.
        let wake = match p.state {
            ProcState::Sleeping { .. } => true,
            ProcState::Stopped => sig == Sig::SIGCONT || sig == Sig::SIGKILL,
            _ => false,
        };
        if wake && !p.frozen_for_ckpt {
            p.state = ProcState::Ready;
            if sig == Sig::SIGCONT {
                p.sig.pending.retain(|s| *s != Sig::SIGCONT && *s != Sig::SIGSTOP);
            }
            let policy = p.policy;
            self.runqueue.enqueue(Task::Process(pid), policy);
        }
    }

    /// Deliver pending unblocked signals at a kernel→user transition.
    /// Returns `false` if the process is no longer runnable afterwards.
    fn deliver_signals(&mut self, pid: Pid) -> SimResult<bool> {
        loop {
            let Some(p) = self.procs.get_mut(&pid.0) else {
                return Ok(false);
            };
            if !p.is_runnable() {
                return Ok(false);
            }
            let Some(sig) = p.sig.take_deliverable() else {
                return Ok(true);
            };
            let action = p.sig.action(sig).clone();
            match action {
                SigAction::Ignore => continue,
                SigAction::Handler {
                    kind,
                    uses_non_reentrant,
                } => {
                    self.stats.signals_delivered += 1;
                    let t = self.cost.signal_deliver_ns;
                    self.charge(t);
                    self.trace
                        .kernel(KernelEvent::SignalDelivered, self.clock, t);
                    let now = self.clock;
                    let p = self.procs.get_mut(&pid.0).expect("exists");
                    if uses_non_reentrant && p.sig.non_reentrant_depth > 0 {
                        p.sig
                            .note_hazard(sig, now, "handler uses non-reentrant libc inside malloc");
                    }
                    p.sig.in_handler += 1;
                    match kind {
                        UserHandlerKind::VmFunction(addr) => {
                            self.push_sig_frame(pid, addr)?;
                            // Guest handler code runs until SRET; stop
                            // delivering more signals for now.
                            return Ok(true);
                        }
                        UserHandlerKind::CkptLibCheckpoint => {
                            let p = self.procs.get_mut(&pid.0).expect("exists");
                            p.user_rt.handler_invocations += 1;
                            p.user_rt.checkpoint_requested = true;
                            let agent = p.user_rt.agent.clone();
                            if let Some(agent) = agent {
                                self.dispatch_agent(&agent, |a, k| a.user_checkpoint(k, pid));
                            }
                            if let Some(p) = self.procs.get_mut(&pid.0) {
                                p.sig.in_handler = p.sig.in_handler.saturating_sub(1);
                                p.user_rt.checkpoint_requested = false;
                            }
                        }
                        UserHandlerKind::DirtyTrackSegv | UserHandlerKind::CountOnly => {
                            let p = self.procs.get_mut(&pid.0).expect("exists");
                            p.user_rt.handler_invocations += 1;
                            p.sig.in_handler = p.sig.in_handler.saturating_sub(1);
                        }
                    }
                }
                SigAction::Default => {
                    // Module-claimed default?
                    if let Some(module) = self.signal_claims.get(&sig.0).cloned() {
                        let handled = self
                            .dispatch_module(&module, |m, k| m.kernel_signal(k, pid, sig))
                            .unwrap_or(false);
                        if handled {
                            self.stats.signals_defaulted += 1;
                            continue;
                        }
                    }
                    self.stats.signals_defaulted += 1;
                    match builtin_default_action(sig) {
                        DefaultAction::Ignore | DefaultAction::Continue => continue,
                        DefaultAction::Stop => {
                            let p = self.procs.get_mut(&pid.0).expect("exists");
                            p.state = ProcState::Stopped;
                            self.runqueue.dequeue(Task::Process(pid));
                            return Ok(false);
                        }
                        DefaultAction::Terminate => {
                            self.exit_process(pid, 128 + sig.0 as i32);
                            return Ok(false);
                        }
                        DefaultAction::KernelCheckpoint => continue,
                    }
                }
            }
        }
    }

    fn push_sig_frame(&mut self, pid: Pid, handler: u64) -> SimResult<()> {
        let (regs, sp) = {
            let p = self.procs.get(&pid.0).expect("exists");
            let sp = p.regs.gpr[crate::asm::SP as usize] - SIG_FRAME_BYTES;
            (p.regs.clone(), sp)
        };
        let mut frame = Vec::with_capacity(SIG_FRAME_BYTES as usize);
        frame.extend_from_slice(&regs.pc.to_le_bytes());
        for g in regs.gpr {
            frame.extend_from_slice(&g.to_le_bytes());
        }
        self.mem_write(pid, sp, &frame)?;
        let p = self.procs.get_mut(&pid.0).expect("exists");
        p.regs.gpr[crate::asm::SP as usize] = sp;
        p.regs.pc = handler;
        Ok(())
    }

    fn pop_sig_frame(&mut self, pid: Pid) -> SimResult<()> {
        let sp = {
            let p = self.procs.get(&pid.0).expect("exists");
            p.regs.gpr[crate::asm::SP as usize]
        };
        let mut frame = vec![0u8; SIG_FRAME_BYTES as usize];
        self.mem_read(pid, sp, &mut frame)?;
        let p = self.procs.get_mut(&pid.0).expect("exists");
        p.regs.pc = u64::from_le_bytes(frame[0..8].try_into().unwrap());
        for i in 0..16 {
            p.regs.gpr[i] =
                u64::from_le_bytes(frame[8 + i * 8..16 + i * 8].try_into().unwrap());
        }
        p.sig.in_handler = p.sig.in_handler.saturating_sub(1);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Guest memory access (protection + tracking + COW accounting).
    // ------------------------------------------------------------------

    /// Write guest memory on behalf of user-context execution.
    pub fn mem_write(&mut self, pid: Pid, addr: u64, bytes: &[u8]) -> SimResult<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        loop {
            let p = self
                .procs
                .get_mut(&pid.0)
                .ok_or(SimError::NoSuchProcess(pid))?;
            match p.mem.check_write(addr, bytes.len() as u64) {
                AccessOutcome::Ok => {
                    // COW accounting after fork.
                    if !p.cow_pending.is_empty() {
                        let first = addr / PAGE_SIZE;
                        let last = (addr + bytes.len() as u64 - 1) / PAGE_SIZE;
                        let mut faults = 0;
                        for pn in first..=last {
                            if p.cow_pending.remove(&pn) {
                                faults += 1;
                            }
                        }
                        if faults > 0 {
                            self.stats.cow_faults += faults;
                            let t = faults * self.cost.cow_fault_ns;
                            self.charge(t);
                            for _ in 0..faults {
                                self.trace.kernel(
                                    KernelEvent::CowFault,
                                    self.clock,
                                    self.cost.cow_fault_ns,
                                );
                            }
                        }
                    }
                    let p = self.procs.get_mut(&pid.0).expect("exists");
                    // Fresh-page writes under page tracking are dirty by
                    // construction (they were not resident when tracking
                    // was armed).
                    if matches!(
                        p.mem.track,
                        TrackMode::KernelPage | TrackMode::UserSigsegv
                    ) {
                        let first = addr / PAGE_SIZE;
                        let last = (addr + bytes.len() as u64 - 1) / PAGE_SIZE;
                        for pn in first..=last {
                            if p.mem.page_data(pn).is_none() {
                                p.mem.note_fresh_dirty(pn);
                                if p.mem.track == TrackMode::UserSigsegv {
                                    p.user_rt.dirty_bitmap.insert(pn);
                                }
                            }
                        }
                    }
                    p.mem.write_unchecked(addr, bytes);
                    return Ok(());
                }
                AccessOutcome::Fault {
                    addr: faddr,
                    kind: FaultKind::WriteProtected,
                } => {
                    self.stats.page_faults += 1;
                    let t = self.cost.page_fault_trap_ns;
                    self.charge(t);
                    self.trace.kernel(KernelEvent::PageFault, self.clock, t);
                    let pn = faddr / PAGE_SIZE;
                    let track = self.procs.get(&pid.0).expect("exists").mem.track;
                    match track {
                        TrackMode::KernelPage => {
                            let resolved = self
                                .procs
                                .get_mut(&pid.0)
                                .expect("exists")
                                .mem
                                .resolve_tracked_fault(pn);
                            if resolved {
                                continue;
                            }
                            return self.fault_to_segv(pid, faddr, FaultKind::WriteProtected);
                        }
                        TrackMode::UserSigsegv => {
                            // SIGSEGV to the user tracking handler: signal
                            // delivery + handler records page + mprotect
                            // syscall + sigreturn.
                            let resolved = {
                                let p = self.procs.get_mut(&pid.0).expect("exists");
                                p.mem.resolve_tracked_fault(pn)
                            };
                            if resolved {
                                self.stats.signals_delivered += 1;
                                self.stats.syscalls += 2; // mprotect + sigreturn
                                let t = self.cost.signal_deliver_ns
                                    + 2 * self.cost.syscall_round_trip()
                                    + self.cost.mprotect_per_page_ns;
                                self.charge(t);
                                let p = self.procs.get_mut(&pid.0).expect("exists");
                                p.user_rt.dirty_bitmap.insert(pn);
                                p.user_rt.segv_tracked += 1;
                                continue;
                            }
                            return self.fault_to_segv(pid, faddr, FaultKind::WriteProtected);
                        }
                        _ => {
                            return self.fault_to_segv(pid, faddr, FaultKind::WriteProtected)
                        }
                    }
                }
                AccessOutcome::Fault { addr: faddr, kind } => {
                    self.stats.page_faults += 1;
                    let t = self.cost.page_fault_trap_ns;
                    self.charge(t);
                    self.trace.kernel(KernelEvent::PageFault, self.clock, t);
                    return self.fault_to_segv(pid, faddr, kind);
                }
            }
        }
    }

    /// Read guest memory on behalf of user-context execution.
    pub fn mem_read(&mut self, pid: Pid, addr: u64, out: &mut [u8]) -> SimResult<()> {
        if out.is_empty() {
            return Ok(());
        }
        let p = self
            .procs
            .get_mut(&pid.0)
            .ok_or(SimError::NoSuchProcess(pid))?;
        match p.mem.check_read(addr, out.len() as u64) {
            AccessOutcome::Ok => {
                p.mem.read_unchecked(addr, out);
                Ok(())
            }
            AccessOutcome::Fault { addr: faddr, kind } => {
                self.stats.page_faults += 1;
                let t = self.cost.page_fault_trap_ns;
                self.charge(t);
                self.trace.kernel(KernelEvent::PageFault, self.clock, t);
                self.fault_to_segv(pid, faddr, kind)
            }
        }
    }

    fn fault_to_segv(&mut self, pid: Pid, addr: u64, kind: FaultKind) -> SimResult<()> {
        self.post_signal(pid, Sig::SIGSEGV);
        Err(SimError::Fault { pid, addr, kind })
    }

    // ------------------------------------------------------------------
    // Syscall dispatch.
    // ------------------------------------------------------------------

    /// Execute a syscall on behalf of `pid`, charging the crossings.
    pub fn do_syscall(&mut self, pid: Pid, call: Syscall) -> SysResult {
        self.stats.syscalls += 1;
        let mut t = self.cost.syscall_round_trip();
        // LD_PRELOAD interposition tax + user-space mirroring.
        let interposes = self
            .procs
            .get(&pid.0)
            .map(|p| p.user_rt.interpose_active && call.is_interposable())
            .unwrap_or(false);
        if interposes {
            t += self.cost.interpose_ns;
            self.stats.interposed_syscalls += 1;
        }
        self.charge(t);
        self.trace.kernel(KernelEvent::SyscallEntry, self.clock, t);
        let ret = self.syscall_body(pid, &call, interposes);
        if matches!(call, Syscall::Ext { .. }) {
            self.stats.ext_syscalls += 1;
        }
        self.trace.kernel(KernelEvent::SyscallExit, self.clock, 0);
        ret
    }

    fn syscall_body(&mut self, pid: Pid, call: &Syscall, interposes: bool) -> SysResult {
        match call.clone() {
            Syscall::Exit { code } => {
                self.exit_process(pid, code);
                Ok(0)
            }
            Syscall::Getpid => Ok(pid.0 as u64),
            Syscall::Sbrk { delta } => {
                let p = self.procs.get_mut(&pid.0).ok_or(Errno::ESRCH)?;
                // POSIX semantics: return the *previous* break (so
                // `sbrk(n)` yields the base of the newly granted region,
                // and `sbrk(0)` reports the current break).
                let old = p.mem.brk();
                p.mem.sbrk(delta).map_err(|_| Errno::ENOMEM)?;
                Ok(old)
            }
            Syscall::Mmap { len, prot } => {
                let p = self.procs.get_mut(&pid.0).ok_or(Errno::ESRCH)?;
                let addr = p.mem.mmap(len, prot, "anon").map_err(|_| Errno::ENOMEM)?;
                if interposes {
                    p.user_rt.mirror_mmap(addr, len, "anon");
                }
                Ok(addr)
            }
            Syscall::Munmap { addr } => {
                let p = self.procs.get_mut(&pid.0).ok_or(Errno::ESRCH)?;
                p.mem.munmap(addr).map_err(|_| Errno::EINVAL)?;
                if interposes {
                    p.user_rt.mirror_munmap(addr);
                }
                Ok(0)
            }
            Syscall::Mprotect { addr, len, prot } => {
                let p = self.procs.get_mut(&pid.0).ok_or(Errno::ESRCH)?;
                let pages = p.mem.mprotect(addr, len, prot).map_err(|_| Errno::EINVAL)?;
                let t = pages * self.cost.mprotect_per_page_ns;
                self.charge(t);
                self.trace.soft_tlb_flush(TlbFlushSite::MprotectRearm);
                Ok(pages)
            }
            Syscall::Open { path, flags } => self.sys_open(pid, &path, flags, interposes),
            Syscall::Close { fd } => self.sys_close(pid, fd, interposes),
            Syscall::Read { fd, buf, len } => self.sys_read(pid, fd, buf, len),
            Syscall::Write { fd, buf, len } => self.sys_write(pid, fd, buf, len),
            Syscall::Lseek { fd, offset, whence } => self.sys_lseek(pid, fd, offset, whence),
            Syscall::Dup { fd } => {
                let entry = {
                    let p = self.procs.get(&pid.0).ok_or(Errno::ESRCH)?;
                    p.fds.get(fd).ok_or(Errno::EBADF)?
                };
                self.ofds
                    .get_mut(&entry.ofd.0)
                    .ok_or(Errno::EBADF)?
                    .refs += 1;
                let p = self.procs.get_mut(&pid.0).ok_or(Errno::ESRCH)?;
                let new = p.fds.alloc(entry.ofd);
                if interposes {
                    p.user_rt.mirror_dup(fd, new);
                }
                Ok(new.0 as u64)
            }
            Syscall::Kill { pid: target, sig } => {
                if !self.procs.contains_key(&target.0) {
                    return Err(Errno::ESRCH);
                }
                self.post_signal(target, sig);
                Ok(0)
            }
            Syscall::Sigaction { sig, action } => {
                let p = self.procs.get_mut(&pid.0).ok_or(Errno::ESRCH)?;
                p.sig.set_action(sig, action).map_err(|_| Errno::EINVAL)?;
                Ok(0)
            }
            Syscall::Sigprocmask { how, mask } => {
                let p = self.procs.get_mut(&pid.0).ok_or(Errno::ESRCH)?;
                let old = p.sig.mask;
                p.sig.mask = match how {
                    MaskHow::Block => old | mask,
                    MaskHow::Unblock => old & !mask,
                    MaskHow::Set => mask,
                };
                Ok(old)
            }
            Syscall::Sigpending => {
                let p = self.procs.get(&pid.0).ok_or(Errno::ESRCH)?;
                Ok(p.sig.pending_mask())
            }
            Syscall::Alarm { ns } => {
                // Cancel previous alarms for this pid.
                let old: Vec<TimerId> = self
                    .timers
                    .owned_by(pid)
                    .into_iter()
                    .filter(|t| {
                        matches!(t.action, TimerAction::SendSignal { sig, .. } if sig == Sig::SIGALRM)
                    })
                    .map(|t| t.id)
                    .collect();
                for id in old {
                    self.timers.cancel(id);
                }
                if ns > 0 {
                    self.timers.arm(
                        self.clock + ns,
                        None,
                        TimerAction::SendSignal {
                            pid,
                            sig: Sig::SIGALRM,
                        },
                        Some(pid),
                    );
                }
                Ok(0)
            }
            Syscall::Setitimer { interval_ns } => {
                let old: Vec<TimerId> = self
                    .timers
                    .owned_by(pid)
                    .into_iter()
                    .filter(|t| {
                        matches!(t.action, TimerAction::SendSignal { sig, .. } if sig == Sig::SIGALRM)
                    })
                    .map(|t| t.id)
                    .collect();
                for id in old {
                    self.timers.cancel(id);
                }
                if interval_ns > 0 {
                    self.timers.arm(
                        self.clock + interval_ns,
                        Some(interval_ns),
                        TimerAction::SendSignal {
                            pid,
                            sig: Sig::SIGALRM,
                        },
                        Some(pid),
                    );
                }
                Ok(0)
            }
            Syscall::Nanosleep { ns } => {
                let until = self.clock + ns;
                let p = self.procs.get_mut(&pid.0).ok_or(Errno::ESRCH)?;
                p.state = ProcState::Sleeping { until };
                self.runqueue.dequeue(Task::Process(pid));
                Ok(0)
            }
            Syscall::SchedYield => {
                // Re-enqueueing is a no-op in our model; the slice ends.
                Ok(0)
            }
            Syscall::Fork => {
                let child = self.fork_process(pid).map_err(|_| Errno::EAGAIN)?;
                // Child resumes in user mode with r0 = 0.
                let c = self.procs.get_mut(&child.0).expect("just forked");
                c.regs.gpr[0] = 0;
                c.state = ProcState::Ready;
                let policy = c.policy;
                self.runqueue.enqueue(Task::Process(child), policy);
                Ok(child.0 as u64)
            }
            Syscall::Ioctl { fd, req, arg } => {
                let entry = {
                    let p = self.procs.get(&pid.0).ok_or(Errno::ESRCH)?;
                    p.fds.get(fd).ok_or(Errno::EBADF)?
                };
                let ofd = self.ofds.get(&entry.ofd.0).ok_or(Errno::EBADF)?;
                match ofd.kind.clone() {
                    OfdKind::Device { module, minor } => {
                        self.stats.ioctls += 1;
                        self.dispatch_module(&module, |m, k| m.ioctl(k, pid, minor, req, arg))
                            .unwrap_or(Err(Errno::ENOTTY))
                    }
                    _ => Err(Errno::ENOTTY),
                }
            }
            Syscall::SchedSetScheduler { pid: target, policy } => {
                let p = self.procs.get_mut(&target.0).ok_or(Errno::ESRCH)?;
                p.policy = policy;
                self.runqueue.set_policy(Task::Process(target), policy);
                Ok(0)
            }
            Syscall::Ext { slot, args } => {
                let module = self.ext_slots.get(&slot).cloned().ok_or(Errno::ENOSYS)?;
                self.dispatch_module(&module, |m, k| m.ext_syscall(k, pid, slot, args))
                    .unwrap_or(Err(Errno::ENOSYS))
            }
        }
    }

    fn sys_open(&mut self, pid: Pid, path: &str, flags: OpenFlags, interposes: bool) -> SysResult {
        let kind = match self.fs.get(path) {
            Some(FsNode::File { .. }) => {
                if flags.truncate {
                    self.fs.create_file(path).map_err(fs_errno)?;
                }
                OfdKind::Regular
            }
            Some(FsNode::Device { module, minor }) => OfdKind::Device {
                module: module.clone(),
                minor: *minor,
            },
            Some(FsNode::Proc { module, tag }) => OfdKind::Proc {
                module: module.clone(),
                tag: tag.clone(),
            },
            Some(FsNode::Dir) => return Err(Errno::EACCES),
            None => {
                if flags.create {
                    self.fs.create_file(path).map_err(fs_errno)?;
                    OfdKind::Regular
                } else {
                    return Err(Errno::ENOENT);
                }
            }
        };
        let id = OfdId(self.next_ofd);
        self.next_ofd += 1;
        self.ofds.insert(
            id.0,
            OpenFile {
                path: path.to_string(),
                kind,
                offset: 0,
                flags,
                refs: 1,
            },
        );
        let p = self.procs.get_mut(&pid.0).ok_or(Errno::ESRCH)?;
        let fd = p.fds.alloc(id);
        if interposes {
            p.user_rt.mirror_open(fd, path, flags.write);
        }
        Ok(fd.0 as u64)
    }

    fn sys_close(&mut self, pid: Pid, fd: Fd, interposes: bool) -> SysResult {
        let entry = {
            let p = self.procs.get_mut(&pid.0).ok_or(Errno::ESRCH)?;
            let e = p.fds.remove(fd).ok_or(Errno::EBADF)?;
            if interposes {
                p.user_rt.mirror_close(fd);
            }
            e
        };
        self.ofd_decref(entry.ofd);
        Ok(0)
    }

    fn ofd_decref(&mut self, id: OfdId) {
        if let Some(ofd) = self.ofds.get_mut(&id.0) {
            ofd.refs = ofd.refs.saturating_sub(1);
            if ofd.refs == 0 {
                self.ofds.remove(&id.0);
            }
        }
    }

    fn sys_read(&mut self, pid: Pid, fd: Fd, buf: u64, len: u64) -> SysResult {
        let entry = {
            let p = self.procs.get(&pid.0).ok_or(Errno::ESRCH)?;
            p.fds.get(fd).ok_or(Errno::EBADF)?
        };
        let (path, kind, offset) = {
            let ofd = self.ofds.get(&entry.ofd.0).ok_or(Errno::EBADF)?;
            if !ofd.flags.read {
                return Err(Errno::EACCES);
            }
            (ofd.path.clone(), ofd.kind.clone(), ofd.offset)
        };
        let data: Vec<u8> = match kind {
            OfdKind::Regular => {
                let mut tmp = vec![0u8; len as usize];
                let n = self.fs.read_at(&path, offset, &mut tmp).map_err(fs_errno)?;
                tmp.truncate(n);
                tmp
            }
            OfdKind::Proc { module, tag } => {
                let full = self
                    .dispatch_module(&module, |m, k| m.proc_read(k, pid, &tag))
                    .unwrap_or(Err(Errno::ENOSYS))?;
                let off = (offset as usize).min(full.len());
                let n = (len as usize).min(full.len() - off);
                full[off..off + n].to_vec()
            }
            OfdKind::Device { .. } => return Err(Errno::EINVAL),
        };
        let t = self.cost.memcpy(data.len() as u64);
        self.charge(t);
        self.mem_write(pid, buf, &data)
            .map_err(|_| Errno::EFAULT)?;
        if let Some(ofd) = self.ofds.get_mut(&entry.ofd.0) {
            ofd.offset += data.len() as u64;
        }
        Ok(data.len() as u64)
    }

    fn sys_write(&mut self, pid: Pid, fd: Fd, buf: u64, len: u64) -> SysResult {
        let entry = {
            let p = self.procs.get(&pid.0).ok_or(Errno::ESRCH)?;
            p.fds.get(fd).ok_or(Errno::EBADF)?
        };
        let (path, kind, offset, append) = {
            let ofd = self.ofds.get(&entry.ofd.0).ok_or(Errno::EBADF)?;
            if !ofd.flags.write {
                return Err(Errno::EACCES);
            }
            (
                ofd.path.clone(),
                ofd.kind.clone(),
                ofd.offset,
                ofd.flags.append,
            )
        };
        let mut data = vec![0u8; len as usize];
        self.mem_read(pid, buf, &mut data)
            .map_err(|_| Errno::EFAULT)?;
        let t = self.cost.memcpy(data.len() as u64);
        self.charge(t);
        match kind {
            OfdKind::Regular => {
                let off = if append {
                    self.fs.file_len(&path).map_err(fs_errno)?
                } else {
                    offset
                };
                let n = self.fs.write_at(&path, off, &data).map_err(fs_errno)?;
                if let Some(ofd) = self.ofds.get_mut(&entry.ofd.0) {
                    ofd.offset = off + n as u64;
                }
                Ok(n as u64)
            }
            OfdKind::Proc { module, tag } => self
                .dispatch_module(&module, |m, k| m.proc_write(k, pid, &tag, &data))
                .unwrap_or(Err(Errno::ENOSYS)),
            OfdKind::Device { .. } => Err(Errno::EINVAL),
        }
    }

    fn sys_lseek(&mut self, pid: Pid, fd: Fd, offset: i64, whence: Whence) -> SysResult {
        let entry = {
            let p = self.procs.get(&pid.0).ok_or(Errno::ESRCH)?;
            p.fds.get(fd).ok_or(Errno::EBADF)?
        };
        let (path, kind, cur) = {
            let ofd = self.ofds.get(&entry.ofd.0).ok_or(Errno::EBADF)?;
            (ofd.path.clone(), ofd.kind.clone(), ofd.offset)
        };
        if !matches!(kind, OfdKind::Regular) {
            return Err(Errno::EINVAL);
        }
        let base = match whence {
            Whence::Set => 0i64,
            Whence::Cur => cur as i64,
            Whence::End => self.fs.file_len(&path).map_err(fs_errno)? as i64,
        };
        let new = base + offset;
        if new < 0 {
            return Err(Errno::EINVAL);
        }
        if let Some(ofd) = self.ofds.get_mut(&entry.ofd.0) {
            ofd.offset = new as u64;
        }
        Ok(new as u64)
    }

    /// Look up an open-file description (for checkpointers walking the fd
    /// table from kernel context).
    pub fn ofd(&self, id: OfdId) -> Option<&OpenFile> {
        self.ofds.get(&id.0)
    }

    /// Recreate an open-file description during restart; returns its id.
    pub fn restore_ofd(&mut self, path: &str, offset: u64, flags: OpenFlags) -> OfdId {
        let kind = match self.fs.get(path) {
            Some(FsNode::Device { module, minor }) => OfdKind::Device {
                module: module.clone(),
                minor: *minor,
            },
            Some(FsNode::Proc { module, tag }) => OfdKind::Proc {
                module: module.clone(),
                tag: tag.clone(),
            },
            _ => OfdKind::Regular,
        };
        if matches!(kind, OfdKind::Regular) && !self.fs.exists(path) {
            // Restore of a file that does not exist on this node: recreate
            // it empty (UCLiK-style file-content restoration is handled a
            // level up, by the checkpoint engine).
            let _ = self.fs.create_file(path);
        }
        let id = OfdId(self.next_ofd);
        self.next_ofd += 1;
        self.ofds.insert(
            id.0,
            OpenFile {
                path: path.to_string(),
                kind,
                offset,
                flags,
                refs: 0, // adopt_process bumps per descriptor
            },
        );
        id
    }

    // ------------------------------------------------------------------
    // The scheduler loop.
    // ------------------------------------------------------------------

    /// Run the machine for `ns` of virtual time.
    pub fn run_for(&mut self, ns: u64) -> SimResult<()> {
        let deadline = self.clock.saturating_add(ns);
        while self.clock < deadline {
            // An injected fail-stop kills the whole node: nothing runs
            // until the driver models repair (`FaultHandle::clear_crash`).
            if !self.faults.is_off() && self.faults.node_crashed() {
                return Err(SimError::InjectedFault {
                    site: self.faults.fired().unwrap_or_default(),
                });
            }
            self.fire_due_timers();
            self.wake_sleepers();
            let Some(task) = self.runqueue.pick_next() else {
                // Idle: jump to the next event.
                let mut next = deadline;
                if let Some(t) = self.timers.next_at() {
                    next = next.min(t.max(self.clock));
                }
                if let Some(w) = self.earliest_wakeup() {
                    next = next.min(w.max(self.clock));
                }
                next = next.min(self.next_tick_at.max(self.clock));
                if next > self.clock {
                    self.stats.idle_ns += next - self.clock;
                    self.clock = next;
                }
                self.advance_ticks();
                if next == deadline && self.timers.next_at().is_none() && self.earliest_wakeup().is_none() && self.runqueue.is_empty() {
                    // Nothing will ever happen; stop early.
                    self.stats.idle_ns += deadline.saturating_sub(self.clock);
                    self.clock = deadline;
                    return Ok(());
                }
                continue;
            };
            if Some(task) != self.last_task {
                self.stats.context_switches += 1;
                let t = self.cost.context_switch_ns;
                self.charge(t);
                self.trace
                    .kernel(KernelEvent::ContextSwitch, self.clock, t);
            }
            self.current = Some(task);
            let slice_end = deadline
                .min(self.next_tick_at)
                .min(self.clock + self.cost.timeslice_ns);
            match task {
                Task::Process(pid) => {
                    let _ = self.run_process_until(pid, slice_end);
                }
                Task::KThread(kt) => {
                    self.run_kthread_once(kt);
                }
            }
            self.last_task = Some(task);
            self.current = None;
            // Every dispatch counts as a quantum for dynamic priority:
            // the runner's bonus decays and waiters age. (Timer ticks
            // below only account tick overhead; aging per dispatch keeps
            // short kernel-thread bursts from monopolizing the CPU
            // between coarse ticks.)
            self.runqueue.tick(task);
            self.advance_ticks();
        }
        Ok(())
    }

    fn earliest_wakeup(&self) -> Option<u64> {
        self.procs
            .values()
            .filter_map(|p| match p.state {
                ProcState::Sleeping { until } => Some(until),
                _ => None,
            })
            .min()
    }

    fn wake_sleepers(&mut self) {
        let now = self.clock;
        let due: Vec<(Pid, SchedPolicy)> = self
            .procs
            .values()
            .filter(|p| matches!(p.state, ProcState::Sleeping { until } if until <= now))
            .map(|p| (p.pid, p.policy))
            .collect();
        for (pid, policy) in due {
            if let Some(p) = self.procs.get_mut(&pid.0) {
                p.state = ProcState::Ready;
                if !p.frozen_for_ckpt {
                    self.runqueue.enqueue(Task::Process(pid), policy);
                }
            }
        }
    }

    fn advance_ticks(&mut self) {
        while self.clock >= self.next_tick_at {
            self.stats.ticks += 1;
            let t = self.cost.tick_overhead_ns;
            self.charge(t);
            self.next_tick_at += self.cost.tick_interval_ns;
        }
    }

    fn fire_due_timers(&mut self) {
        let due = self.timers.take_due(self.clock);
        for t in due {
            self.stats.timer_fires += 1;
            match t.action {
                TimerAction::SendSignal { pid, sig } => self.post_signal(pid, sig),
                TimerAction::WakeKThread(kt) => {
                    let _ = self.wake_kthread(kt);
                }
                TimerAction::ModuleEvent { module, tag } => {
                    self.dispatch_module(&module, |m, k| m.timer_event(k, tag));
                }
            }
        }
    }

    fn run_process_until(&mut self, pid: Pid, until: u64) -> SimResult<()> {
        // Address-space switch on entry.
        if self.active_mm != Some(pid) {
            let t = self.cost.mm_switch();
            self.charge(t);
            self.stats.mm_switches += 1;
            self.trace.kernel(KernelEvent::MmSwitch, self.clock, t);
            self.trace.kernel(KernelEvent::TlbFlush, self.clock, 0);
            // Incoming space runs translation-cold, like the hardware TLB
            // the switch cost models.
            if let Some(p) = self.procs.get_mut(&pid.0) {
                p.mem.tlb_flush();
            }
            self.trace.soft_tlb_flush(TlbFlushSite::MmSwitch);
            self.active_mm = Some(pid);
        }
        // Kernel→user transition: deliver pending signals.
        if !self.deliver_signals(pid)? {
            return Ok(());
        }
        let start = self.clock;
        loop {
            if self.clock >= until {
                break;
            }
            let Some(p) = self.procs.get(&pid.0) else {
                break;
            };
            if !p.is_runnable() {
                break;
            }
            match &p.program {
                ProgramSpec::Vm { .. } => {
                    if let Err(_e) = self.vm_step(pid) {
                        // Fault posted a signal; deliver it (may terminate).
                        let _ = self.deliver_signals(pid)?;
                        break;
                    }
                    // Signals posted by the instruction itself (e.g. kill
                    // to self) are delivered at the next slice entry —
                    // matching real deferred delivery. Exception: if the
                    // process stopped being runnable, end the slice.
                }
                ProgramSpec::Native { kind, params } => {
                    let kind = *kind;
                    let params = params.clone();
                    let outcome = {
                        let mut io = KernelMemIo::new(self, pid);
                        let out = apps::step(kind, &params, &mut io);
                        io.finish()?;
                        out
                    };
                    let t = self.cost.native_step_ns + self.cost.memcpy(outcome.bytes_touched);
                    self.charge_user(t);
                    let (every, agent, ext) = {
                        let p = self.procs.get_mut(&pid.0).expect("exists");
                        p.work_done += 1;
                        (
                            p.user_rt.self_ckpt_every,
                            p.user_rt.agent.clone(),
                            p.user_rt.self_ckpt_ext,
                        )
                    };
                    // Self-checkpoint call sites inserted into the app
                    // (libckpt / VMADump pattern).
                    if let Some(every) = every {
                        if every > 0 && (outcome.step + 1) % every == 0 {
                            if let Some(slot) = ext {
                                let _ = self.do_syscall(pid, Syscall::Ext { slot, args: [0; 5] });
                            } else if let Some(agent) = agent {
                                self.dispatch_agent(&agent, |a, k| a.user_checkpoint(k, pid));
                            }
                        }
                    }
                    if outcome.finished {
                        let _ = self.do_syscall(pid, Syscall::Exit { code: 0 });
                        break;
                    }
                }
            }
        }
        let used = self.clock - start;
        if let Some(p) = self.procs.get_mut(&pid.0) {
            p.cpu_ns += used;
        }
        Ok(())
    }

    fn run_kthread_once(&mut self, kt: KtId) {
        let module = match self.kthreads.get_mut(&kt.0) {
            Some(t) if t.state == KtState::Ready => t.module.clone(),
            _ => {
                self.runqueue.dequeue(Task::KThread(kt));
                return;
            }
        };
        let start = self.clock;
        let status = self
            .dispatch_module(&module, |m, k| m.kthread_run(k, kt))
            .unwrap_or(KthreadStatus::Exit);
        let used = self.clock - start;
        if let Some(t) = self.kthreads.get_mut(&kt.0) {
            t.cpu_ns += used;
            match status {
                KthreadStatus::Sleep => {
                    t.state = KtState::Sleeping;
                    self.runqueue.dequeue(Task::KThread(kt));
                }
                KthreadStatus::Yield => {}
                KthreadStatus::Exit => {
                    t.state = KtState::Dead;
                    self.runqueue.dequeue(Task::KThread(kt));
                }
            }
        }
    }

    /// Run until `pid` exits or `limit_ns` of virtual time passes.
    pub fn run_until_exit_limit(&mut self, pid: Pid, limit_ns: u64) -> SimResult<i32> {
        let deadline = self.clock.saturating_add(limit_ns);
        while self.clock < deadline {
            match self.procs.get(&pid.0) {
                None => return Err(SimError::NoSuchProcess(pid)),
                Some(p) => {
                    if let Some(code) = p.exit_code() {
                        return Ok(code);
                    }
                }
            }
            let step = self
                .cost
                .tick_interval_ns
                .min(deadline - self.clock)
                .max(1);
            self.run_for(step)?;
        }
        Err(SimError::Timeout(format!("{pid} did not exit")))
    }

    /// Run until `pid` exits (bounded at 1000 virtual seconds).
    pub fn run_until_exit(&mut self, pid: Pid) -> SimResult<i32> {
        self.run_until_exit_limit(pid, 1_000_000_000_000)
    }

    // ------------------------------------------------------------------
    // VM execution.
    // ------------------------------------------------------------------

    fn vm_step(&mut self, pid: Pid) -> SimResult<()> {
        let (pc, instr) = {
            let p = self
                .procs
                .get(&pid.0)
                .ok_or(SimError::NoSuchProcess(pid))?;
            let pc = p.regs.pc;
            let ProgramSpec::Vm { text, .. } = &p.program else {
                return Err(SimError::Usage("vm_step on non-VM process".into()));
            };
            if pc < TEXT_BASE || !(pc - TEXT_BASE).is_multiple_of(4) {
                return Err(SimError::IllegalInstruction {
                    pid,
                    pc,
                    detail: "misaligned pc".into(),
                });
            }
            let idx = ((pc - TEXT_BASE) / 4) as usize;
            if idx >= text.len() {
                return Err(SimError::IllegalInstruction {
                    pid,
                    pc,
                    detail: "pc outside text".into(),
                });
            }
            let word = text[idx];
            let instr = vm::decode(word).map_err(|detail| SimError::IllegalInstruction {
                pid,
                pc,
                detail,
            })?;
            (pc, instr)
        };
        let t = self.cost.instr_ns;
        self.charge_user(t);
        let mut next_pc = pc + 4;
        macro_rules! regs {
            () => {
                self.procs.get_mut(&pid.0).expect("exists").regs
            };
        }
        match instr {
            Instr::Nop => {}
            Instr::Halt => {
                let code = regs!().gpr[0] as i32;
                self.exit_process(pid, code);
                return Ok(());
            }
            Instr::Li { a, imm } => regs!().gpr[a as usize] = imm as u64,
            Instr::Lui { a, imm } => {
                let r = &mut regs!().gpr[a as usize];
                *r = ((imm as u64) << 16) | (*r & 0xFFFF);
            }
            Instr::Mov { a, b } => {
                let v = regs!().gpr[b as usize];
                regs!().gpr[a as usize] = v;
            }
            Instr::Add { a, b, c } => {
                let (x, y) = {
                    let r = &regs!();
                    (r.gpr[b as usize], r.gpr[c as usize])
                };
                regs!().gpr[a as usize] = x.wrapping_add(y);
            }
            Instr::Sub { a, b, c } => {
                let (x, y) = {
                    let r = &regs!();
                    (r.gpr[b as usize], r.gpr[c as usize])
                };
                regs!().gpr[a as usize] = x.wrapping_sub(y);
            }
            Instr::Mul { a, b, c } => {
                let (x, y) = {
                    let r = &regs!();
                    (r.gpr[b as usize], r.gpr[c as usize])
                };
                regs!().gpr[a as usize] = x.wrapping_mul(y);
            }
            Instr::Divu { a, b, c } => {
                let (x, y) = {
                    let r = &regs!();
                    (r.gpr[b as usize], r.gpr[c as usize])
                };
                if y == 0 {
                    return Err(SimError::IllegalInstruction {
                        pid,
                        pc,
                        detail: "division by zero".into(),
                    });
                }
                regs!().gpr[a as usize] = x / y;
            }
            Instr::Addi { a, b, simm } => {
                let x = regs!().gpr[b as usize];
                regs!().gpr[a as usize] = x.wrapping_add(simm as i64 as u64);
            }
            Instr::And { a, b, c } => {
                let (x, y) = {
                    let r = &regs!();
                    (r.gpr[b as usize], r.gpr[c as usize])
                };
                regs!().gpr[a as usize] = x & y;
            }
            Instr::Or { a, b, c } => {
                let (x, y) = {
                    let r = &regs!();
                    (r.gpr[b as usize], r.gpr[c as usize])
                };
                regs!().gpr[a as usize] = x | y;
            }
            Instr::Xor { a, b, c } => {
                let (x, y) = {
                    let r = &regs!();
                    (r.gpr[b as usize], r.gpr[c as usize])
                };
                regs!().gpr[a as usize] = x ^ y;
            }
            Instr::Shl { a, b, c } => {
                let (x, y) = {
                    let r = &regs!();
                    (r.gpr[b as usize], r.gpr[c as usize])
                };
                regs!().gpr[a as usize] = x.wrapping_shl(y as u32);
            }
            Instr::Shr { a, b, c } => {
                let (x, y) = {
                    let r = &regs!();
                    (r.gpr[b as usize], r.gpr[c as usize])
                };
                regs!().gpr[a as usize] = x.wrapping_shr(y as u32);
            }
            Instr::Lw { a, b, simm } => {
                let addr = regs!().gpr[b as usize].wrapping_add(simm as i64 as u64);
                let mut buf = [0u8; 8];
                self.mem_read(pid, addr, &mut buf)?;
                regs!().gpr[a as usize] = u64::from_le_bytes(buf);
            }
            Instr::Sw { a, b, simm } => {
                let (val, addr) = {
                    let r = &regs!();
                    (
                        r.gpr[a as usize],
                        r.gpr[b as usize].wrapping_add(simm as i64 as u64),
                    )
                };
                self.mem_write(pid, addr, &val.to_le_bytes())?;
            }
            Instr::Lb { a, b, simm } => {
                let addr = regs!().gpr[b as usize].wrapping_add(simm as i64 as u64);
                let mut buf = [0u8; 1];
                self.mem_read(pid, addr, &mut buf)?;
                regs!().gpr[a as usize] = buf[0] as u64;
            }
            Instr::Sb { a, b, simm } => {
                let (val, addr) = {
                    let r = &regs!();
                    (
                        r.gpr[a as usize] as u8,
                        r.gpr[b as usize].wrapping_add(simm as i64 as u64),
                    )
                };
                self.mem_write(pid, addr, &[val])?;
            }
            Instr::Beq { a, b, simm } => {
                let (x, y) = {
                    let r = &regs!();
                    (r.gpr[a as usize], r.gpr[b as usize])
                };
                if x == y {
                    next_pc = pc.wrapping_add(4).wrapping_add((simm as i64 * 4) as u64);
                }
            }
            Instr::Bne { a, b, simm } => {
                let (x, y) = {
                    let r = &regs!();
                    (r.gpr[a as usize], r.gpr[b as usize])
                };
                if x != y {
                    next_pc = pc.wrapping_add(4).wrapping_add((simm as i64 * 4) as u64);
                }
            }
            Instr::Bltu { a, b, simm } => {
                let (x, y) = {
                    let r = &regs!();
                    (r.gpr[a as usize], r.gpr[b as usize])
                };
                if x < y {
                    next_pc = pc.wrapping_add(4).wrapping_add((simm as i64 * 4) as u64);
                }
            }
            Instr::Jmp { imm } => next_pc = TEXT_BASE + imm as u64 * 4,
            Instr::Jal { imm } => {
                regs!().gpr[15] = next_pc;
                next_pc = TEXT_BASE + imm as u64 * 4;
            }
            Instr::Jr { a } => next_pc = regs!().gpr[a as usize],
            Instr::Sys => {
                // Advance pc first so a checkpoint taken inside the syscall
                // resumes after it.
                regs!().pc = next_pc;
                let (num, args) = {
                    let r = &regs!();
                    (
                        r.gpr[0],
                        [r.gpr[1], r.gpr[2], r.gpr[3], r.gpr[4], r.gpr[5]],
                    )
                };
                let call = self.vm_decode_syscall(pid, num, args)?;
                let ret = self.do_syscall(pid, call);
                if let Some(p) = self.procs.get_mut(&pid.0) {
                    p.regs.gpr[0] = sysret_encode(ret) as u64;
                    p.work_done += 1;
                }
                return Ok(());
            }
            Instr::MallocEnter => {
                let p = self.procs.get_mut(&pid.0).expect("exists");
                p.sig.non_reentrant_depth += 1;
            }
            Instr::MallocExit => {
                let p = self.procs.get_mut(&pid.0).expect("exists");
                p.sig.non_reentrant_depth = p.sig.non_reentrant_depth.saturating_sub(1);
            }
            Instr::Sret => {
                self.pop_sig_frame(pid)?;
                if let Some(p) = self.procs.get_mut(&pid.0) {
                    p.work_done += 1;
                }
                return Ok(());
            }
        }
        if let Some(p) = self.procs.get_mut(&pid.0) {
            p.regs.pc = next_pc;
            p.work_done += 1;
        }
        Ok(())
    }

    fn vm_decode_syscall(&mut self, pid: Pid, num: u64, args: [u64; 5]) -> SimResult<Syscall> {
        use crate::vm::sysno;
        Ok(match num {
            sysno::EXIT => Syscall::Exit {
                code: args[0] as i32,
            },
            sysno::WRITE => Syscall::Write {
                fd: Fd(args[0] as u32),
                buf: args[1],
                len: args[2],
            },
            sysno::READ => Syscall::Read {
                fd: Fd(args[0] as u32),
                buf: args[1],
                len: args[2],
            },
            sysno::OPEN => {
                let mut name = vec![0u8; args[1] as usize];
                self.mem_read(pid, args[0], &mut name)?;
                let path = String::from_utf8_lossy(&name).to_string();
                let f = args[2];
                Syscall::Open {
                    path,
                    flags: OpenFlags {
                        read: f & 1 != 0,
                        write: f & 2 != 0,
                        create: f & 4 != 0,
                        truncate: f & 8 != 0,
                        append: f & 16 != 0,
                    },
                }
            }
            sysno::CLOSE => Syscall::Close {
                fd: Fd(args[0] as u32),
            },
            sysno::SBRK => Syscall::Sbrk {
                delta: args[0] as i64,
            },
            sysno::GETPID => Syscall::Getpid,
            sysno::KILL => Syscall::Kill {
                pid: Pid(args[0] as u32),
                sig: Sig(args[1] as u32),
            },
            sysno::SIGACTION => Syscall::Sigaction {
                sig: Sig(args[0] as u32),
                action: SigAction::Handler {
                    kind: UserHandlerKind::VmFunction(TEXT_BASE + args[1] * 4),
                    uses_non_reentrant: args[2] != 0,
                },
            },
            sysno::ALARM => Syscall::Alarm { ns: args[0] },
            sysno::NANOSLEEP => Syscall::Nanosleep { ns: args[0] },
            sysno::LSEEK => Syscall::Lseek {
                fd: Fd(args[0] as u32),
                offset: args[1] as i64,
                whence: match args[2] {
                    1 => Whence::Cur,
                    2 => Whence::End,
                    _ => Whence::Set,
                },
            },
            sysno::DUP => Syscall::Dup {
                fd: Fd(args[0] as u32),
            },
            sysno::MMAP => Syscall::Mmap {
                len: args[0],
                prot: Prot::RW,
            },
            sysno::MUNMAP => Syscall::Munmap { addr: args[0] },
            sysno::MPROTECT => Syscall::Mprotect {
                addr: args[0],
                len: args[1],
                prot: Prot(args[2] as u8),
            },
            sysno::SIGPENDING => Syscall::Sigpending,
            sysno::YIELD => Syscall::SchedYield,
            n if n >= sysno::EXT_BASE => Syscall::Ext {
                slot: (n - sysno::EXT_BASE) as u32,
                args,
            },
            _ => {
                return Err(SimError::IllegalInstruction {
                    pid,
                    pc: self.procs[&pid.0].regs.pc,
                    detail: format!("unknown syscall {num}"),
                })
            }
        })
    }
}

fn fs_errno(e: FsError) -> Errno {
    match e {
        FsError::NotFound => Errno::ENOENT,
        FsError::Exists => Errno::EEXIST,
        FsError::NotADirectory => Errno::ENOTDIR,
        FsError::IsADirectory => Errno::EACCES,
        FsError::NotAFile => Errno::EINVAL,
        FsError::NotEmpty => Errno::EBUSY,
    }
}

/// Guest-memory adapter handed to native app steps: routes every access
/// through the kernel's protection/tracking machinery, stashing the first
/// fatal fault for the caller to surface.
pub struct KernelMemIo<'a> {
    k: &'a mut Kernel,
    pid: Pid,
    fatal: Option<SimError>,
}

impl<'a> KernelMemIo<'a> {
    pub fn new(k: &'a mut Kernel, pid: Pid) -> Self {
        KernelMemIo {
            k,
            pid,
            fatal: None,
        }
    }

    /// Surface any fault captured during the step.
    pub fn finish(self) -> SimResult<()> {
        match self.fatal {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl GuestMemIo for KernelMemIo<'_> {
    fn r64(&mut self, addr: u64) -> u64 {
        if self.fatal.is_some() {
            return 0;
        }
        let mut buf = [0u8; 8];
        if let Err(e) = self.k.mem_read(self.pid, addr, &mut buf) {
            self.fatal = Some(e);
            return 0;
        }
        u64::from_le_bytes(buf)
    }

    fn w64(&mut self, addr: u64, val: u64) {
        if self.fatal.is_some() {
            return;
        }
        if let Err(e) = self.k.mem_write(self.pid, addr, &val.to_le_bytes()) {
            self.fatal = Some(e);
        }
    }

    // Bulk fast path: one `mem_write`/`mem_read` per page-sized batch
    // instead of one per word. Protection, tracking, COW, and fault
    // charging are identical to the scalar loop — `check_write` walks the
    // batch's pages in the same ascending order the word loop touches them,
    // so fault counts, order, and virtual-time charges do not change.
    fn write_words(&mut self, addr: u64, vals: &[u64]) {
        if self.fatal.is_some() {
            return;
        }
        let mut buf = [0u8; PAGE_SIZE as usize];
        let words_per_buf = (PAGE_SIZE / 8) as usize;
        let mut off = 0usize;
        while off < vals.len() {
            let n = words_per_buf.min(vals.len() - off);
            for (j, v) in vals[off..off + n].iter().enumerate() {
                buf[j * 8..j * 8 + 8].copy_from_slice(&v.to_le_bytes());
            }
            if let Err(e) = self
                .k
                .mem_write(self.pid, addr + off as u64 * 8, &buf[..n * 8])
            {
                self.fatal = Some(e);
                return;
            }
            off += n;
        }
    }

    fn read_words(&mut self, addr: u64, out: &mut [u64]) {
        if self.fatal.is_some() {
            out.fill(0);
            return;
        }
        let mut buf = [0u8; PAGE_SIZE as usize];
        let words_per_buf = (PAGE_SIZE / 8) as usize;
        let mut off = 0usize;
        while off < out.len() {
            let n = words_per_buf.min(out.len() - off);
            if let Err(e) = self
                .k
                .mem_read(self.pid, addr + off as u64 * 8, &mut buf[..n * 8])
            {
                self.fatal = Some(e);
                out[off..].fill(0);
                return;
            }
            for (j, o) in out[off..off + n].iter_mut().enumerate() {
                *o = u64::from_le_bytes(buf[j * 8..j * 8 + 8].try_into().unwrap());
            }
            off += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::programs;

    fn kernel() -> Kernel {
        Kernel::new(CostModel::circa_2005())
    }

    #[test]
    fn native_app_runs_to_completion() {
        let mut k = kernel();
        let pid = k
            .spawn_native(NativeKind::DenseSweep, AppParams::small())
            .unwrap();
        let code = k.run_until_exit(pid).unwrap();
        assert_eq!(code, 0);
        let p = k.process(pid).unwrap();
        assert_eq!(p.work_done, AppParams::small().total_steps);
    }

    #[test]
    fn native_app_state_matches_reference_run() {
        let mut k = kernel();
        let params = AppParams::small();
        let pid = k
            .spawn_native(NativeKind::SparseRandom, params.clone())
            .unwrap();
        k.run_until_exit(pid).unwrap();
        let (ref_step, ref_sum) = apps::reference_run(NativeKind::SparseRandom, &params);
        let p = k.process(pid).unwrap();
        let mut buf = [0u8; 8];
        p.mem.peek(apps::H_STEP, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), ref_step);
        p.mem.peek(apps::H_SUM, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), ref_sum);
    }

    #[test]
    fn vm_counter_program_counts() {
        let mut k = kernel();
        let pid = k.spawn_vm(programs::counter(100), "counter").unwrap();
        let code = k.run_until_exit(pid).unwrap();
        assert_eq!(code, 0);
        let p = k.process(pid).unwrap();
        let mut buf = [0u8; 8];
        p.mem.peek(DATA_BASE, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 100);
    }

    #[test]
    fn vm_summer_computes_sum() {
        let mut k = kernel();
        let pid = k.spawn_vm(programs::summer(10), "summer").unwrap();
        k.run_until_exit(pid).unwrap();
        let p = k.process(pid).unwrap();
        let mut buf = [0u8; 8];
        p.mem.peek(DATA_BASE, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 55);
    }

    #[test]
    fn time_advances_and_stats_accumulate() {
        let mut k = kernel();
        let pid = k
            .spawn_native(NativeKind::DenseSweep, AppParams::small())
            .unwrap();
        k.run_until_exit(pid).unwrap();
        assert!(k.now() > 0);
        assert!(k.stats.context_switches >= 1);
        assert!(k.stats.syscalls >= 1); // the exit
        assert!(k.stats.user_ns > 0);
    }

    #[test]
    fn two_processes_share_cpu() {
        let mut k = kernel();
        let a = k
            .spawn_native(NativeKind::SparseRandom, AppParams::small())
            .unwrap();
        let b = k
            .spawn_native(NativeKind::SparseRandom, AppParams::small())
            .unwrap();
        k.run_until_exit(a).unwrap();
        k.run_until_exit(b).unwrap();
        assert!(k.process(a).unwrap().has_exited());
        assert!(k.process(b).unwrap().has_exited());
        // Both ran: mm switches happened between them.
        assert!(k.stats.mm_switches >= 2);
    }

    #[test]
    fn sigkill_terminates() {
        let mut k = kernel();
        let mut params = AppParams::small();
        params.total_steps = u64::MAX; // runs forever
        let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        k.run_for(30_000_000).unwrap();
        assert!(!k.process(pid).unwrap().has_exited());
        k.post_signal(pid, Sig::SIGKILL);
        k.run_for(30_000_000).unwrap();
        assert_eq!(k.process(pid).unwrap().exit_code(), Some(128 + 9));
    }

    #[test]
    fn sigstop_and_sigcont() {
        let mut k = kernel();
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        k.run_for(10_000_000).unwrap();
        k.post_signal(pid, Sig::SIGSTOP);
        k.run_for(20_000_000).unwrap();
        let frozen_work = k.process(pid).unwrap().work_done;
        assert_eq!(k.process(pid).unwrap().state, ProcState::Stopped);
        k.run_for(50_000_000).unwrap();
        assert_eq!(k.process(pid).unwrap().work_done, frozen_work);
        k.post_signal(pid, Sig::SIGCONT);
        k.run_for(50_000_000).unwrap();
        assert!(k.process(pid).unwrap().work_done > frozen_work);
    }

    #[test]
    fn freeze_thaw_stops_and_resumes_work() {
        let mut k = kernel();
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        k.run_for(10_000_000).unwrap();
        k.freeze_process(pid).unwrap();
        let w = k.process(pid).unwrap().work_done;
        k.run_for(50_000_000).unwrap();
        assert_eq!(k.process(pid).unwrap().work_done, w);
        k.thaw_process(pid).unwrap();
        k.run_for(50_000_000).unwrap();
        assert!(k.process(pid).unwrap().work_done > w);
    }

    #[test]
    fn vm_signal_handler_runs_and_sret_returns() {
        let mut k = kernel();
        let pid = k.spawn_vm(programs::signal_loop(10), "sigloop").unwrap();
        // Let it install the handler and loop a while.
        k.run_for(5_000_000).unwrap();
        k.post_signal(pid, Sig::SIGUSR1);
        k.run_for(20_000_000).unwrap();
        let p = k.process(pid).unwrap();
        let mut buf = [0u8; 8];
        p.mem.peek(DATA_BASE + 8, &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 1, "handler ran once");
        // Main loop still progressing after SRET.
        p.mem.peek(DATA_BASE, &mut buf);
        let c1 = u64::from_le_bytes(buf);
        let _ = p;
        k.run_for(20_000_000).unwrap();
        let p = k.process(pid).unwrap();
        p.mem.peek(DATA_BASE, &mut buf);
        assert!(u64::from_le_bytes(buf) > c1);
        assert_eq!(k.stats.signals_delivered, 1);
    }

    #[test]
    fn alarm_delivers_sigalrm_default_terminate() {
        let mut k = kernel();
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        k.run_for(1_000_000).unwrap();
        k.do_syscall(pid, Syscall::Alarm { ns: 5_000_000 }).unwrap();
        k.run_for(100_000_000).unwrap();
        assert_eq!(k.process(pid).unwrap().exit_code(), Some(128 + 14));
    }

    #[test]
    fn file_syscalls_round_trip_through_guest_memory() {
        let mut k = kernel();
        let pid = k
            .spawn_native(NativeKind::SparseRandom, AppParams::small())
            .unwrap();
        let fd = k
            .do_syscall(
                pid,
                Syscall::Open {
                    path: "/tmp/out".into(),
                    flags: OpenFlags::RDWR_CREATE,
                },
            )
            .unwrap();
        let fd = Fd(fd as u32);
        // Put bytes in guest memory, write them out.
        k.mem_write(pid, DATA_BASE + 64, b"payload!").unwrap();
        let n = k
            .do_syscall(
                pid,
                Syscall::Write {
                    fd,
                    buf: DATA_BASE + 64,
                    len: 8,
                },
            )
            .unwrap();
        assert_eq!(n, 8);
        // Seek back and read into a different guest address.
        let pos = k
            .do_syscall(
                pid,
                Syscall::Lseek {
                    fd,
                    offset: 0,
                    whence: Whence::Set,
                },
            )
            .unwrap();
        assert_eq!(pos, 0);
        let n = k
            .do_syscall(
                pid,
                Syscall::Read {
                    fd,
                    buf: DATA_BASE + 128,
                    len: 8,
                },
            )
            .unwrap();
        assert_eq!(n, 8);
        let mut buf = [0u8; 8];
        k.mem_read(pid, DATA_BASE + 128, &mut buf).unwrap();
        assert_eq!(&buf, b"payload!");
    }

    #[test]
    fn dup_shares_offset() {
        let mut k = kernel();
        let pid = k
            .spawn_native(NativeKind::SparseRandom, AppParams::small())
            .unwrap();
        let fd = Fd(k
            .do_syscall(
                pid,
                Syscall::Open {
                    path: "/tmp/s".into(),
                    flags: OpenFlags::RDWR_CREATE,
                },
            )
            .unwrap() as u32);
        let fd2 = Fd(k.do_syscall(pid, Syscall::Dup { fd }).unwrap() as u32);
        k.mem_write(pid, DATA_BASE + 64, b"abcd").unwrap();
        k.do_syscall(
            pid,
            Syscall::Write {
                fd,
                buf: DATA_BASE + 64,
                len: 4,
            },
        )
        .unwrap();
        let pos = k
            .do_syscall(
                pid,
                Syscall::Lseek {
                    fd: fd2,
                    offset: 0,
                    whence: Whence::Cur,
                },
            )
            .unwrap();
        assert_eq!(pos, 4, "dup'ed descriptor shares the offset");
    }

    #[test]
    fn sbrk_zero_reports_break() {
        let mut k = kernel();
        let pid = k
            .spawn_native(NativeKind::SparseRandom, AppParams::small())
            .unwrap();
        let b0 = k.do_syscall(pid, Syscall::Sbrk { delta: 0 }).unwrap();
        // sbrk(n) returns the OLD break (the base of the new region).
        let base = k.do_syscall(pid, Syscall::Sbrk { delta: 4096 }).unwrap();
        assert_eq!(base, b0);
        let b1 = k.do_syscall(pid, Syscall::Sbrk { delta: 0 }).unwrap();
        assert_eq!(b1, b0 + 4096);
    }

    #[test]
    fn unknown_ext_syscall_is_enosys() {
        let mut k = kernel();
        let pid = k
            .spawn_native(NativeKind::SparseRandom, AppParams::small())
            .unwrap();
        let r = k.do_syscall(
            pid,
            Syscall::Ext {
                slot: 42,
                args: [0; 5],
            },
        );
        assert_eq!(r, Err(Errno::ENOSYS));
    }

    #[test]
    fn fork_copies_and_cow_faults_charge() {
        let mut k = kernel();
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::DenseSweep, params).unwrap();
        k.run_for(50_000_000).unwrap();
        let child = k.fork_process(pid).unwrap();
        assert_eq!(k.stats.forks, 1);
        assert!(k.process(child).unwrap().state == ProcState::Stopped);
        assert!(!k.process(pid).unwrap().cow_pending.is_empty());
        // Parent keeps writing → COW faults accumulate.
        k.run_for(50_000_000).unwrap();
        assert!(k.stats.cow_faults > 0);
        // Child memory equals parent memory at fork time (same app state).
        let mut b1 = [0u8; 8];
        k.process(child).unwrap().mem.peek(apps::H_MAGIC, &mut b1);
        assert_eq!(u64::from_le_bytes(b1), apps::APP_MAGIC);
    }

    #[test]
    fn freeze_blocks_sleeper_wakeup_until_thaw() {
        let mut k = kernel();
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        k.run_for(1_000_000).unwrap();
        k.freeze_process(pid).unwrap();
        k.post_signal(pid, Sig::SIGKILL);
        k.run_for(10_000_000).unwrap();
        // Frozen: signal stays pending, process not dead.
        assert!(!k.process(pid).unwrap().has_exited());
        k.thaw_process(pid).unwrap();
        k.run_for(10_000_000).unwrap();
        assert!(k.process(pid).unwrap().has_exited());
    }

    #[test]
    fn adopt_rejects_duplicate_pid() {
        let mut k = kernel();
        let pid = k
            .spawn_native(NativeKind::SparseRandom, AppParams::small())
            .unwrap();
        let clone = k.process(pid).unwrap().clone();
        match k.adopt_process(clone) {
            Err(SimError::Usage(msg)) => assert!(msg.contains("already exists")),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn reap_removes_zombie() {
        let mut k = kernel();
        let pid = k
            .spawn_native(NativeKind::SparseRandom, AppParams::small())
            .unwrap();
        k.run_until_exit(pid).unwrap();
        assert_eq!(k.reap(pid).unwrap(), 0);
        assert!(k.process(pid).is_none());
    }

    #[test]
    fn idle_kernel_advances_time_without_work() {
        let mut k = kernel();
        k.run_for(1_000_000_000).unwrap();
        assert_eq!(k.now(), 1_000_000_000);
        assert!(k.stats.idle_ns > 0);
    }

    #[test]
    fn malloc_heavy_hazard_detection() {
        let mut k = kernel();
        let pid = k.spawn_vm(programs::malloc_heavy(), "malloc").unwrap();
        k.run_for(2_000_000).unwrap();
        // Install a non-reentrant-using handler via syscall, then signal.
        k.do_syscall(
            pid,
            Syscall::Sigaction {
                sig: Sig::SIGUSR1,
                action: SigAction::Handler {
                    kind: UserHandlerKind::CountOnly,
                    uses_non_reentrant: true,
                },
            },
        )
        .unwrap();
        // Post many signals over time; some will land inside malloc.
        let mut hazards = 0;
        for _ in 0..50 {
            k.post_signal(pid, Sig::SIGUSR1);
            k.run_for(1_000_000).unwrap();
            hazards = k.process(pid).unwrap().sig.hazards.len();
            if hazards > 0 {
                break;
            }
        }
        assert!(
            hazards > 0,
            "expected at least one reentrancy hazard in malloc-heavy guest"
        );
    }

    #[test]
    fn tracking_counts_dirty_pages_kernel_mode() {
        let mut k = kernel();
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        params.writes_per_step = 4;
        let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        k.run_for(10_000_000).unwrap();
        let resident_before = k.process(pid).unwrap().mem.resident_count();
        assert!(resident_before > 0);
        k.process_mut(pid).unwrap().mem.arm_tracking(TrackMode::KernelPage);
        let faults_before = k.stats.page_faults;
        k.run_for(10_000_000).unwrap();
        let p = k.process(pid).unwrap();
        assert!(!p.mem.dirty_pages.is_empty());
        assert!(k.stats.page_faults > faults_before);
    }

    #[test]
    fn user_tracking_costs_more_than_kernel_tracking() {
        // The same workload, tracked at user level (SIGSEGV + mprotect +
        // sigreturn per first touch) must burn more virtual time than
        // kernel-level tracking — the paper's efficiency argument.
        let run = |mode: TrackMode| -> u64 {
            let mut k = Kernel::new(CostModel::circa_2005());
            let mut params = AppParams::small();
            params.mem_bytes = 512 * 1024; // 128 pages → measurable fault costs
            params.total_steps = u64::MAX;
            let pid = k.spawn_native(NativeKind::DenseSweep, params).unwrap();
            k.run_for(5_000_000).unwrap();
            k.process_mut(pid).unwrap().mem.arm_tracking(mode);
            let t0 = k.now();
            let w0 = k.process(pid).unwrap().work_done;
            // Run until a fixed amount of work is done, in fine-grained
            // chunks so the measurement is not quantized away.
            while k.process(pid).unwrap().work_done < w0 + 5 {
                k.run_for(10_000).unwrap();
            }
            k.now() - t0
        };
        let kernel_t = run(TrackMode::KernelPage);
        let user_t = run(TrackMode::UserSigsegv);
        assert!(
            user_t > kernel_t,
            "user-level tracking ({user_t} ns) should cost more than kernel-level ({kernel_t} ns)"
        );
    }

    #[test]
    fn kthread_attach_mm_charges_switch_once() {
        let mut k = kernel();
        let pid = k
            .spawn_native(NativeKind::SparseRandom, AppParams::small())
            .unwrap();
        let before = k.stats.mm_switches;
        k.kthread_attach_mm(pid).unwrap();
        assert_eq!(k.stats.mm_switches, before + 1);
        // Second attach to the same space is free.
        k.kthread_attach_mm(pid).unwrap();
        assert_eq!(k.stats.mm_switches, before + 1);
    }

    #[test]
    fn run_until_exit_times_out_on_stuck_process() {
        let mut k = kernel();
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        k.freeze_process(pid).unwrap();
        match k.run_until_exit_limit(pid, 50_000_000) {
            Err(SimError::Timeout(_)) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }
}
