//! The guest mini-ISA: a small register machine whose programs the
//! simulator runs as processes.
//!
//! Why a VM at all? Because checkpoint/restart must be *correct*, not just
//! fast: restoring registers + memory + fds + signal state must let the
//! program continue as if nothing happened. VM programs have genuine
//! register state, a stack, signal handlers, and syscalls, so they exercise
//! every section of the checkpoint image. (Large-memory workloads use the
//! cheaper native apps in [`crate::apps`].)
//!
//! ## ISA summary
//!
//! 16 general-purpose 64-bit registers `r0..r15` (`r14` = stack pointer by
//! convention, `r15` = link register) plus `pc`. Fixed 32-bit instruction
//! words `[op:8][a:8][b:8][c:8]`; `imm16 = b<<8|c`; `simm8 = c as i8`;
//! `imm24 = a<<16|b<<8|c`.
//!
//! Signal delivery pushes the full context (pc + 16 GPRs, 136 bytes) onto
//! the guest stack and jumps to the handler; `SRET` pops it — so a
//! checkpoint taken *inside* a handler still captures everything needed to
//! resume, entirely from guest state.

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    Nop,
    /// Terminate with exit code `r0`.
    Halt,
    /// `ra = imm16` (zero-extended).
    Li { a: u8, imm: u16 },
    /// `ra = (imm16 << 16) | (ra & 0xFFFF)`.
    Lui { a: u8, imm: u16 },
    Mov { a: u8, b: u8 },
    Add { a: u8, b: u8, c: u8 },
    Sub { a: u8, b: u8, c: u8 },
    Mul { a: u8, b: u8, c: u8 },
    /// Unsigned divide; division by zero is an illegal instruction.
    Divu { a: u8, b: u8, c: u8 },
    Addi { a: u8, b: u8, simm: i8 },
    And { a: u8, b: u8, c: u8 },
    Or { a: u8, b: u8, c: u8 },
    Xor { a: u8, b: u8, c: u8 },
    Shl { a: u8, b: u8, c: u8 },
    Shr { a: u8, b: u8, c: u8 },
    /// `ra = *(u64*)(rb + simm)`.
    Lw { a: u8, b: u8, simm: i8 },
    /// `*(u64*)(rb + simm) = ra`.
    Sw { a: u8, b: u8, simm: i8 },
    /// `ra = *(u8*)(rb + simm)`.
    Lb { a: u8, b: u8, simm: i8 },
    /// `*(u8*)(rb + simm) = ra as u8`.
    Sb { a: u8, b: u8, simm: i8 },
    /// Branch if `ra == rb`, offset in instructions relative to next.
    Beq { a: u8, b: u8, simm: i8 },
    Bne { a: u8, b: u8, simm: i8 },
    /// Branch if `ra < rb` (unsigned).
    Bltu { a: u8, b: u8, simm: i8 },
    /// Absolute jump to instruction index `imm24` within text.
    Jmp { imm: u32 },
    /// Jump and link (`r15 = return pc`).
    Jal { imm: u32 },
    /// Jump to address in `ra`.
    Jr { a: u8 },
    /// Syscall: number in `r0`, args in `r1..r5`, result in `r0`.
    Sys,
    /// Enter a non-reentrant C-library region (models `malloc`).
    MallocEnter,
    /// Leave the non-reentrant region.
    MallocExit,
    /// Return from a signal handler (pop saved context from the stack).
    Sret,
}

/// Instruction opcodes (stable encoding).
mod op {
    pub const NOP: u8 = 0;
    pub const HALT: u8 = 1;
    pub const LI: u8 = 2;
    pub const LUI: u8 = 3;
    pub const MOV: u8 = 4;
    pub const ADD: u8 = 5;
    pub const SUB: u8 = 6;
    pub const MUL: u8 = 7;
    pub const DIVU: u8 = 8;
    pub const ADDI: u8 = 9;
    pub const AND: u8 = 10;
    pub const OR: u8 = 11;
    pub const XOR: u8 = 12;
    pub const SHL: u8 = 13;
    pub const SHR: u8 = 14;
    pub const LW: u8 = 15;
    pub const SW: u8 = 16;
    pub const LB: u8 = 17;
    pub const SB: u8 = 18;
    pub const BEQ: u8 = 19;
    pub const BNE: u8 = 20;
    pub const BLTU: u8 = 21;
    pub const JMP: u8 = 22;
    pub const JAL: u8 = 23;
    pub const JR: u8 = 24;
    pub const SYS: u8 = 25;
    pub const MENTER: u8 = 26;
    pub const MEXIT: u8 = 27;
    pub const SRET: u8 = 28;
}

/// Encode an instruction to its 32-bit word.
pub fn encode(i: Instr) -> u32 {
    fn w(o: u8, a: u8, b: u8, c: u8) -> u32 {
        ((o as u32) << 24) | ((a as u32) << 16) | ((b as u32) << 8) | c as u32
    }
    fn wi16(o: u8, a: u8, imm: u16) -> u32 {
        w(o, a, (imm >> 8) as u8, imm as u8)
    }
    fn wi24(o: u8, imm: u32) -> u32 {
        assert!(imm < (1 << 24), "imm24 overflow");
        ((o as u32) << 24) | imm
    }
    match i {
        Instr::Nop => w(op::NOP, 0, 0, 0),
        Instr::Halt => w(op::HALT, 0, 0, 0),
        Instr::Li { a, imm } => wi16(op::LI, a, imm),
        Instr::Lui { a, imm } => wi16(op::LUI, a, imm),
        Instr::Mov { a, b } => w(op::MOV, a, b, 0),
        Instr::Add { a, b, c } => w(op::ADD, a, b, c),
        Instr::Sub { a, b, c } => w(op::SUB, a, b, c),
        Instr::Mul { a, b, c } => w(op::MUL, a, b, c),
        Instr::Divu { a, b, c } => w(op::DIVU, a, b, c),
        Instr::Addi { a, b, simm } => w(op::ADDI, a, b, simm as u8),
        Instr::And { a, b, c } => w(op::AND, a, b, c),
        Instr::Or { a, b, c } => w(op::OR, a, b, c),
        Instr::Xor { a, b, c } => w(op::XOR, a, b, c),
        Instr::Shl { a, b, c } => w(op::SHL, a, b, c),
        Instr::Shr { a, b, c } => w(op::SHR, a, b, c),
        Instr::Lw { a, b, simm } => w(op::LW, a, b, simm as u8),
        Instr::Sw { a, b, simm } => w(op::SW, a, b, simm as u8),
        Instr::Lb { a, b, simm } => w(op::LB, a, b, simm as u8),
        Instr::Sb { a, b, simm } => w(op::SB, a, b, simm as u8),
        Instr::Beq { a, b, simm } => w(op::BEQ, a, b, simm as u8),
        Instr::Bne { a, b, simm } => w(op::BNE, a, b, simm as u8),
        Instr::Bltu { a, b, simm } => w(op::BLTU, a, b, simm as u8),
        Instr::Jmp { imm } => wi24(op::JMP, imm),
        Instr::Jal { imm } => wi24(op::JAL, imm),
        Instr::Jr { a } => w(op::JR, a, 0, 0),
        Instr::Sys => w(op::SYS, 0, 0, 0),
        Instr::MallocEnter => w(op::MENTER, 0, 0, 0),
        Instr::MallocExit => w(op::MEXIT, 0, 0, 0),
        Instr::Sret => w(op::SRET, 0, 0, 0),
    }
}

/// Decode a 32-bit word.
pub fn decode(word: u32) -> Result<Instr, String> {
    let o = (word >> 24) as u8;
    let a = (word >> 16) as u8;
    let b = (word >> 8) as u8;
    let c = word as u8;
    let imm16 = ((b as u16) << 8) | c as u16;
    let imm24 = word & 0x00FF_FFFF;
    let simm = c as i8;
    let r = |x: u8| -> Result<u8, String> {
        if x < 16 {
            Ok(x)
        } else {
            Err(format!("register r{x} out of range"))
        }
    };
    Ok(match o {
        op::NOP => Instr::Nop,
        op::HALT => Instr::Halt,
        op::LI => Instr::Li { a: r(a)?, imm: imm16 },
        op::LUI => Instr::Lui { a: r(a)?, imm: imm16 },
        op::MOV => Instr::Mov { a: r(a)?, b: r(b)? },
        op::ADD => Instr::Add { a: r(a)?, b: r(b)?, c: r(c)? },
        op::SUB => Instr::Sub { a: r(a)?, b: r(b)?, c: r(c)? },
        op::MUL => Instr::Mul { a: r(a)?, b: r(b)?, c: r(c)? },
        op::DIVU => Instr::Divu { a: r(a)?, b: r(b)?, c: r(c)? },
        op::ADDI => Instr::Addi { a: r(a)?, b: r(b)?, simm },
        op::AND => Instr::And { a: r(a)?, b: r(b)?, c: r(c)? },
        op::OR => Instr::Or { a: r(a)?, b: r(b)?, c: r(c)? },
        op::XOR => Instr::Xor { a: r(a)?, b: r(b)?, c: r(c)? },
        op::SHL => Instr::Shl { a: r(a)?, b: r(b)?, c: r(c)? },
        op::SHR => Instr::Shr { a: r(a)?, b: r(b)?, c: r(c)? },
        op::LW => Instr::Lw { a: r(a)?, b: r(b)?, simm },
        op::SW => Instr::Sw { a: r(a)?, b: r(b)?, simm },
        op::LB => Instr::Lb { a: r(a)?, b: r(b)?, simm },
        op::SB => Instr::Sb { a: r(a)?, b: r(b)?, simm },
        op::BEQ => Instr::Beq { a: r(a)?, b: r(b)?, simm },
        op::BNE => Instr::Bne { a: r(a)?, b: r(b)?, simm },
        op::BLTU => Instr::Bltu { a: r(a)?, b: r(b)?, simm },
        op::JMP => Instr::Jmp { imm: imm24 },
        op::JAL => Instr::Jal { imm: imm24 },
        op::JR => Instr::Jr { a: r(a)? },
        op::SYS => Instr::Sys,
        op::MENTER => Instr::MallocEnter,
        op::MEXIT => Instr::MallocExit,
        op::SRET => Instr::Sret,
        _ => return Err(format!("bad opcode {o}")),
    })
}

/// Guest syscall numbers used by VM programs (placed in `r0` before `SYS`).
pub mod sysno {
    pub const EXIT: u64 = 0;
    pub const WRITE: u64 = 1;
    pub const READ: u64 = 2;
    pub const OPEN: u64 = 3;
    pub const CLOSE: u64 = 4;
    pub const SBRK: u64 = 5;
    pub const GETPID: u64 = 6;
    pub const KILL: u64 = 7;
    pub const SIGACTION: u64 = 8;
    pub const ALARM: u64 = 9;
    pub const NANOSLEEP: u64 = 10;
    pub const LSEEK: u64 = 11;
    pub const DUP: u64 = 12;
    pub const MMAP: u64 = 13;
    pub const MUNMAP: u64 = 14;
    pub const MPROTECT: u64 = 15;
    pub const SIGPENDING: u64 = 16;
    pub const YIELD: u64 = 17;
    /// Extension syscalls installed by kernel modules start here: `r0 =
    /// EXT_BASE + slot` (the "new system call" checkpoint mechanisms).
    pub const EXT_BASE: u64 = 100;
}

/// Size of the signal context frame pushed on delivery (pc + 16 GPRs).
pub const SIG_FRAME_BYTES: u64 = 8 * 17;

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_instrs() -> Vec<Instr> {
        vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Li { a: 3, imm: 0xBEEF },
            Instr::Lui { a: 3, imm: 0xDEAD },
            Instr::Mov { a: 1, b: 2 },
            Instr::Add { a: 1, b: 2, c: 3 },
            Instr::Sub { a: 4, b: 5, c: 6 },
            Instr::Mul { a: 7, b: 8, c: 9 },
            Instr::Divu { a: 1, b: 2, c: 3 },
            Instr::Addi { a: 1, b: 1, simm: -5 },
            Instr::And { a: 0, b: 1, c: 2 },
            Instr::Or { a: 0, b: 1, c: 2 },
            Instr::Xor { a: 0, b: 1, c: 2 },
            Instr::Shl { a: 0, b: 1, c: 2 },
            Instr::Shr { a: 0, b: 1, c: 2 },
            Instr::Lw { a: 1, b: 14, simm: -8 },
            Instr::Sw { a: 1, b: 14, simm: 16 },
            Instr::Lb { a: 1, b: 2, simm: 0 },
            Instr::Sb { a: 1, b: 2, simm: 1 },
            Instr::Beq { a: 1, b: 2, simm: -3 },
            Instr::Bne { a: 1, b: 2, simm: 3 },
            Instr::Bltu { a: 1, b: 2, simm: 100 },
            Instr::Jmp { imm: 1234 },
            Instr::Jal { imm: 77 },
            Instr::Jr { a: 15 },
            Instr::Sys,
            Instr::MallocEnter,
            Instr::MallocExit,
            Instr::Sret,
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        for i in all_sample_instrs() {
            let w = encode(i);
            assert_eq!(decode(w).unwrap(), i, "round trip failed for {i:?}");
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        assert!(decode(0xFF00_0000).is_err());
    }

    #[test]
    fn bad_register_rejected() {
        // ADD with register 16.
        let w = (5u32 << 24) | (16 << 16);
        assert!(decode(w).is_err());
    }

    #[test]
    fn negative_simm_survives() {
        let w = encode(Instr::Addi {
            a: 0,
            b: 0,
            simm: -128,
        });
        match decode(w).unwrap() {
            Instr::Addi { simm, .. } => assert_eq!(simm, -128),
            other => panic!("wrong decode: {other:?}"),
        }
    }
}
