//! The syscall interface: the only way user-context code crosses into the
//! kernel.
//!
//! The paper's Section 3 lists the exact calls a user-level checkpointer
//! must issue to reconstruct state the kernel already has: `sbrk(0)` for the
//! heap boundary, `lseek` for file offsets, `sigpending` for pending
//! signals — each paying a full protection-domain round trip. This module
//! defines the call vocabulary; dispatch (and cost charging) lives in
//! [`crate::kernel::Kernel::do_syscall`].

use crate::mem::Prot;
use crate::sched::SchedPolicy;
use crate::signal::{Sig, SigAction};
use crate::types::{Fd, Pid};

/// `lseek` origins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    Set,
    Cur,
    End,
}

/// `sigprocmask` operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskHow {
    Block,
    Unblock,
    Set,
}

/// A decoded syscall with its arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum Syscall {
    /// Terminate the calling process.
    Exit { code: i32 },
    /// Write `len` bytes from guest address `buf` to `fd`.
    Write { fd: Fd, buf: u64, len: u64 },
    /// Read up to `len` bytes from `fd` into guest address `buf`.
    Read { fd: Fd, buf: u64, len: u64 },
    /// Open a file by path.
    Open { path: String, flags: crate::fs::OpenFlags },
    Close { fd: Fd },
    /// Adjust the program break; `Sbrk { delta: 0 }` queries it — the
    /// user-level checkpointer's heap-boundary probe.
    Sbrk { delta: i64 },
    Getpid,
    /// Send a signal.
    Kill { pid: Pid, sig: Sig },
    /// Install a signal disposition.
    Sigaction { sig: Sig, action: SigAction },
    Sigprocmask { how: MaskHow, mask: u64 },
    /// Query pending signals (returns the pending bitmask).
    Sigpending,
    /// Arm a one-shot SIGALRM after `ns` (0 cancels). Returns 0.
    Alarm { ns: u64 },
    /// Arm a periodic SIGALRM every `interval_ns` (0 cancels). Returns 0.
    Setitimer { interval_ns: u64 },
    /// Sleep for `ns`.
    Nanosleep { ns: u64 },
    Lseek { fd: Fd, offset: i64, whence: Whence },
    Dup { fd: Fd },
    /// Map anonymous memory.
    Mmap { len: u64, prot: Prot },
    Munmap { addr: u64 },
    Mprotect { addr: u64, len: u64, prot: Prot },
    /// Yield the CPU.
    SchedYield,
    /// Fork the calling process.
    Fork,
    /// Device control.
    Ioctl { fd: Fd, req: u64, arg: u64 },
    /// Change scheduling policy of a process.
    SchedSetScheduler { pid: Pid, policy: SchedPolicy },
    /// A module-registered extension syscall (the "new system call"
    /// checkpoint mechanisms of Section 4.1).
    Ext { slot: u32, args: [u64; 5] },
}

impl Syscall {
    /// Short name for stats/tracing.
    pub fn name(&self) -> &'static str {
        match self {
            Syscall::Exit { .. } => "exit",
            Syscall::Write { .. } => "write",
            Syscall::Read { .. } => "read",
            Syscall::Open { .. } => "open",
            Syscall::Close { .. } => "close",
            Syscall::Sbrk { .. } => "sbrk",
            Syscall::Getpid => "getpid",
            Syscall::Kill { .. } => "kill",
            Syscall::Sigaction { .. } => "sigaction",
            Syscall::Sigprocmask { .. } => "sigprocmask",
            Syscall::Sigpending => "sigpending",
            Syscall::Alarm { .. } => "alarm",
            Syscall::Setitimer { .. } => "setitimer",
            Syscall::Nanosleep { .. } => "nanosleep",
            Syscall::Lseek { .. } => "lseek",
            Syscall::Dup { .. } => "dup",
            Syscall::Mmap { .. } => "mmap",
            Syscall::Munmap { .. } => "munmap",
            Syscall::Mprotect { .. } => "mprotect",
            Syscall::SchedYield => "sched_yield",
            Syscall::Fork => "fork",
            Syscall::Ioctl { .. } => "ioctl",
            Syscall::SchedSetScheduler { .. } => "sched_setscheduler",
            Syscall::Ext { .. } => "ext",
        }
    }

    /// Whether an `LD_PRELOAD` shim interposes this call (the calls whose
    /// effects user space must mirror to checkpoint without kernel help).
    pub fn is_interposable(&self) -> bool {
        matches!(
            self,
            Syscall::Open { .. }
                | Syscall::Close { .. }
                | Syscall::Dup { .. }
                | Syscall::Mmap { .. }
                | Syscall::Munmap { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Syscall::Getpid.name(), "getpid");
        assert_eq!(Syscall::Sbrk { delta: 0 }.name(), "sbrk");
        assert_eq!(
            Syscall::Ext {
                slot: 1,
                args: [0; 5]
            }
            .name(),
            "ext"
        );
    }

    #[test]
    fn interposable_set_matches_paper_list() {
        assert!(Syscall::Open {
            path: "/x".into(),
            flags: crate::fs::OpenFlags::RDONLY
        }
        .is_interposable());
        assert!(Syscall::Mmap {
            len: 4096,
            prot: Prot::RW
        }
        .is_interposable());
        assert!(Syscall::Dup { fd: Fd(0) }.is_interposable());
        assert!(!Syscall::Getpid.is_interposable());
        assert!(!Syscall::Write {
            fd: Fd(1),
            buf: 0,
            len: 0
        }
        .is_interposable());
    }
}
