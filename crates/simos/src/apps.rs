//! Native guest applications: deterministic "scientific kernels" whose
//! entire mutable state lives in guest memory.
//!
//! The incremental-checkpointing evaluation of Sancho et al. [31] showed
//! that the benefit of incremental checkpointing "depends strongly on the
//! application" — specifically on its memory-update pattern. These kernels
//! span that space:
//!
//! * [`NativeKind::DenseSweep`] — rewrites its whole working set every step
//!   (worst case for incremental checkpointing);
//! * [`NativeKind::SparseRandom`] — a configurable number of random-word
//!   writes per step (best case);
//! * [`NativeKind::Stencil2D`] — a 2-D relaxation kernel (dense but with
//!   read traffic, representative of the ASC-style codes the paper cites);
//! * [`NativeKind::AppendLog`] — append-only growth (tiny deltas);
//! * [`NativeKind::ReadMostly`] — full-set reads with one written word per
//!   page stride (dirty fraction tunable by stride).
//!
//! All state — step counter, RNG state, running checksum, and the working
//! array — is stored in guest memory, starting at [`HEADER_BASE`]. Restoring
//! a checkpoint image therefore restores the application exactly; the
//! running checksum makes divergence detectable.

use crate::mem::{DATA_BASE, PAGE_SIZE};

/// Base address of the app header in guest memory.
pub const HEADER_BASE: u64 = DATA_BASE;
/// Header layout (u64 slots): magic, step, rng, checksum.
pub const H_MAGIC: u64 = HEADER_BASE;
pub const H_STEP: u64 = HEADER_BASE + 8;
pub const H_RNG: u64 = HEADER_BASE + 16;
pub const H_SUM: u64 = HEADER_BASE + 24;
/// Start of the working array.
pub const ARRAY_BASE: u64 = HEADER_BASE + PAGE_SIZE;

pub const APP_MAGIC: u64 = 0x434b_5054_4150_5031; // "CKPTAPP1"

/// Which native kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NativeKind {
    DenseSweep,
    SparseRandom,
    Stencil2D,
    AppendLog,
    ReadMostly,
}

impl NativeKind {
    pub const ALL: [NativeKind; 5] = [
        NativeKind::DenseSweep,
        NativeKind::SparseRandom,
        NativeKind::Stencil2D,
        NativeKind::AppendLog,
        NativeKind::ReadMostly,
    ];
}

/// Immutable parameters of a native app (recorded in the
/// [`crate::pcb::ProgramSpec`], and thus in every checkpoint image).
#[derive(Debug, Clone, PartialEq)]
pub struct AppParams {
    /// Working-set size in bytes (rounded down to whole u64 words).
    pub mem_bytes: u64,
    /// Steps until the app exits.
    pub total_steps: u64,
    /// Random writes per step (SparseRandom only).
    pub writes_per_step: u64,
    /// Page stride between written words (ReadMostly only; 1 = every page).
    pub write_stride_pages: u64,
    /// RNG seed (initial value of the in-memory RNG state).
    pub seed: u64,
}

impl AppParams {
    /// A small configuration suitable for unit tests (64 KiB, 32 steps).
    pub fn small() -> Self {
        AppParams {
            mem_bytes: 64 * 1024,
            total_steps: 32,
            writes_per_step: 16,
            write_stride_pages: 4,
            seed: 0x5eed,
        }
    }

    /// A medium configuration for integration tests (1 MiB, 64 steps).
    pub fn medium() -> Self {
        AppParams {
            mem_bytes: 1024 * 1024,
            total_steps: 64,
            writes_per_step: 64,
            write_stride_pages: 8,
            seed: 0xfeed,
        }
    }

    /// Number of u64 words in the working array.
    pub fn words(&self) -> u64 {
        (self.mem_bytes / 8).max(1)
    }

    /// Number of pages the working array spans.
    pub fn array_pages(&self) -> u64 {
        self.mem_bytes.div_ceil(PAGE_SIZE).max(1)
    }
}

/// Memory access interface the kernel hands to an app step. All accesses go
/// through the kernel's protection/tracking machinery.
pub trait GuestMemIo {
    fn r64(&mut self, addr: u64) -> u64;
    fn w64(&mut self, addr: u64, val: u64);

    /// Store `vals` at consecutive word addresses starting at `addr`.
    /// Semantically identical to a `w64` loop (the default *is* that loop);
    /// kernel-backed implementations override it to move whole page-sized
    /// batches through one protection check.
    fn write_words(&mut self, addr: u64, vals: &[u64]) {
        for (i, v) in vals.iter().enumerate() {
            self.w64(addr + i as u64 * 8, *v);
        }
    }

    /// Load consecutive words starting at `addr` into `out`. Semantically
    /// identical to an `r64` loop.
    fn read_words(&mut self, addr: u64, out: &mut [u64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.r64(addr + i as u64 * 8);
        }
    }
}

/// Words per bulk batch: one guest page, so a batch never needs more than
/// one protection resolution per page on the kernel fast path.
const BATCH_WORDS: usize = (PAGE_SIZE / 8) as usize;

/// Result of one app step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// The step index just completed.
    pub step: u64,
    /// True if the app has completed all its steps and wants to exit.
    pub finished: bool,
    /// Bytes of application memory traffic this step (for cost charging).
    pub bytes_touched: u64,
}

/// Deterministic 64-bit mix (splitmix64 finalizer) used both as the apps'
/// in-memory RNG and for value generation.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Initialize the app's guest-memory state. Called once at spawn; never at
/// restart (restart restores memory instead).
pub fn init(kind: NativeKind, params: &AppParams, io: &mut dyn GuestMemIo) {
    io.w64(H_MAGIC, APP_MAGIC);
    io.w64(H_STEP, 0);
    io.w64(H_RNG, params.seed | 1);
    io.w64(H_SUM, 0);
    match kind {
        NativeKind::ReadMostly | NativeKind::Stencil2D => {
            // These kernels read before writing: initialize the array,
            // page-sized batch at a time.
            let words = params.words();
            let mut buf = [0u64; BATCH_WORDS];
            let mut i = 0u64;
            while i < words {
                let n = BATCH_WORDS.min((words - i) as usize);
                for (j, b) in buf[..n].iter_mut().enumerate() {
                    *b = mix64(params.seed ^ (i + j as u64));
                }
                io.write_words(ARRAY_BASE + i * 8, &buf[..n]);
                i += n as u64;
            }
        }
        _ => {}
    }
}

/// Execute one step of the app against guest memory. Deterministic: the
/// same (kind, params, memory state) always produces the same new state.
pub fn step(kind: NativeKind, params: &AppParams, io: &mut dyn GuestMemIo) -> StepOutcome {
    let step = io.r64(H_STEP);
    let words = params.words();
    let mut touched: u64 = 32; // header traffic
    let mut sum = io.r64(H_SUM);
    match kind {
        NativeKind::DenseSweep => {
            // Page-granular batches; values and the checksum accumulate in
            // the exact order the scalar loop produced.
            let mut buf = [0u64; BATCH_WORDS];
            let mut i = 0u64;
            while i < words {
                let n = BATCH_WORDS.min((words - i) as usize);
                for (j, b) in buf[..n].iter_mut().enumerate() {
                    let v = mix64(step.wrapping_mul(0x1000_0001).wrapping_add(i + j as u64));
                    *b = v;
                    sum = sum.wrapping_add(v);
                }
                io.write_words(ARRAY_BASE + i * 8, &buf[..n]);
                i += n as u64;
            }
            touched += words * 8;
        }
        NativeKind::SparseRandom => {
            let mut rng = io.r64(H_RNG);
            for _ in 0..params.writes_per_step {
                rng = mix64(rng);
                let idx = rng % words;
                let v = mix64(rng ^ step);
                io.w64(ARRAY_BASE + idx * 8, v);
                sum = sum.wrapping_add(v);
            }
            io.w64(H_RNG, rng);
            touched += params.writes_per_step * 16;
        }
        NativeKind::Stencil2D => {
            // Square-ish grid of u64 cells; Jacobi-style in-place update
            // (deterministic even though not a true Jacobi sweep).
            let side = (words as f64).sqrt() as u64;
            let side = side.max(2);
            for r in 1..side - 1 {
                for c in 1..side - 1 {
                    let at = |rr: u64, cc: u64| ARRAY_BASE + (rr * side + cc) * 8;
                    let v = io
                        .r64(at(r - 1, c))
                        .wrapping_add(io.r64(at(r + 1, c)))
                        .wrapping_add(io.r64(at(r, c - 1)))
                        .wrapping_add(io.r64(at(r, c + 1)))
                        / 4
                        + 1;
                    io.w64(at(r, c), v);
                    sum = sum.wrapping_add(v);
                }
            }
            let inner = (side - 2) * (side - 2);
            touched += inner * 8 * 5;
        }
        NativeKind::AppendLog => {
            // Append 8 words (64 bytes) per step.
            let base = ARRAY_BASE + (step * 64) % (words * 8 / 64 * 64).max(64);
            for i in 0..8u64 {
                let v = mix64(step ^ i);
                io.w64(base + i * 8, v);
                sum = sum.wrapping_add(v);
            }
            touched += 64;
        }
        NativeKind::ReadMostly => {
            // Read the whole set; write one word per `write_stride_pages`
            // pages.
            let mut acc = 0u64;
            let mut buf = [0u64; BATCH_WORDS];
            let mut i = 0u64;
            while i < words {
                let n = BATCH_WORDS.min((words - i) as usize);
                io.read_words(ARRAY_BASE + i * 8, &mut buf[..n]);
                for v in &buf[..n] {
                    acc = acc.wrapping_add(*v);
                }
                i += n as u64;
            }
            let stride_words = params.write_stride_pages.max(1) * (PAGE_SIZE / 8);
            let mut i = (step * 7) % stride_words.min(words);
            while i < words {
                let v = mix64(acc ^ i ^ step);
                io.w64(ARRAY_BASE + i * 8, v);
                sum = sum.wrapping_add(v);
                i += stride_words;
            }
            touched += words * 8 + (words / stride_words.max(1) + 1) * 8;
        }
    }
    let next = step + 1;
    io.w64(H_STEP, next);
    io.w64(H_SUM, sum);
    StepOutcome {
        step,
        finished: next >= params.total_steps,
        bytes_touched: touched,
    }
}

/// Pure-Rust reference executor: runs the app against a plain byte vector
/// (no kernel, no tracking). Used by tests to compute the expected final
/// (step, checksum) for correctness comparisons after restarts.
pub struct VecMem {
    base: u64,
    pub bytes: Vec<u8>,
}

impl VecMem {
    pub fn new(params: &AppParams) -> Self {
        let span = (ARRAY_BASE - HEADER_BASE) + params.mem_bytes + PAGE_SIZE;
        VecMem {
            base: HEADER_BASE,
            bytes: vec![0; span as usize],
        }
    }
}

impl GuestMemIo for VecMem {
    fn r64(&mut self, addr: u64) -> u64 {
        let off = (addr - self.base) as usize;
        u64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }
    fn w64(&mut self, addr: u64, val: u64) {
        let off = (addr - self.base) as usize;
        self.bytes[off..off + 8].copy_from_slice(&val.to_le_bytes());
    }
}

/// Run an app to completion on a [`VecMem`] and return (final step, final
/// checksum).
pub fn reference_run(kind: NativeKind, params: &AppParams) -> (u64, u64) {
    let mut mem = VecMem::new(params);
    init(kind, params, &mut mem);
    loop {
        let out = step(kind, params, &mut mem);
        if out.finished {
            break;
        }
    }
    (mem.r64(H_STEP), mem.r64(H_SUM))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_runs_are_deterministic() {
        for kind in NativeKind::ALL {
            let p = AppParams::small();
            let a = reference_run(kind, &p);
            let b = reference_run(kind, &p);
            assert_eq!(a, b, "{kind:?} not deterministic");
            assert_eq!(a.0, p.total_steps, "{kind:?} wrong step count");
        }
    }

    #[test]
    fn different_seeds_give_different_checksums_for_sparse() {
        let mut p1 = AppParams::small();
        let mut p2 = AppParams::small();
        p1.seed = 1;
        p2.seed = 2;
        let a = reference_run(NativeKind::SparseRandom, &p1);
        let b = reference_run(NativeKind::SparseRandom, &p2);
        assert_ne!(a.1, b.1);
    }

    #[test]
    fn state_is_entirely_in_memory() {
        // Running k steps, snapshotting the bytes, then continuing must
        // equal running the same k steps on the snapshot.
        let p = AppParams::small();
        let kind = NativeKind::SparseRandom;
        let mut m1 = VecMem::new(&p);
        init(kind, &p, &mut m1);
        for _ in 0..10 {
            step(kind, &p, &mut m1);
        }
        let snapshot = m1.bytes.clone();
        // Continue original.
        for _ in 0..10 {
            step(kind, &p, &mut m1);
        }
        // Restore snapshot into a fresh VecMem and continue.
        let mut m2 = VecMem::new(&p);
        m2.bytes = snapshot;
        for _ in 0..10 {
            step(kind, &p, &mut m2);
        }
        assert_eq!(m1.r64(H_SUM), m2.r64(H_SUM));
        assert_eq!(m1.r64(H_STEP), m2.r64(H_STEP));
    }

    #[test]
    fn dense_touches_more_than_sparse() {
        let p = AppParams::small();
        let mut m = VecMem::new(&p);
        init(NativeKind::DenseSweep, &p, &mut m);
        let dense = step(NativeKind::DenseSweep, &p, &mut m).bytes_touched;
        let mut m2 = VecMem::new(&p);
        init(NativeKind::SparseRandom, &p, &mut m2);
        let sparse = step(NativeKind::SparseRandom, &p, &mut m2).bytes_touched;
        assert!(dense > 10 * sparse);
    }

    #[test]
    fn mix64_is_a_bijection_sample() {
        // Distinct inputs map to distinct outputs on a sample.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn header_constants_do_not_overlap_array() {
        // Evaluated through locals so the layout invariant is checked even
        // though the operands are compile-time constants.
        let (sum_end, array_base) = (H_SUM + 8, ARRAY_BASE);
        assert!(sum_end <= array_base);
        assert_eq!(array_base % PAGE_SIZE, 0);
    }
}
