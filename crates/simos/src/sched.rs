//! The scheduler: `SCHED_OTHER` with decaying dynamic priorities and
//! `SCHED_FIFO` real-time tasks.
//!
//! The paper's Section 4.1 argues that checkpoint code running as an
//! ordinary process can be starved ("the process could be suspended by the
//! kernel because there is another process with a higher priority waiting
//! for the CPU; the priority is dynamic so it decreases with time"), while a
//! kernel thread given `SCHED_FIFO` priority "will be executed as soon as it
//! wakes up and it will run until it has completed its work". This module
//! implements exactly those semantics so the claim is measurable.

use crate::types::Task;

/// Scheduling policy of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Time-sharing with dynamic priority (decays while running, ages while
    /// waiting). `nice` shifts the base priority: lower nice = higher
    /// priority, range [-20, 19] as in Linux.
    Other { nice: i32 },
    /// Real-time FIFO: always beats every `Other` task; among FIFO tasks the
    /// highest `rt_prio` wins, ties broken in enqueue order; never preempted
    /// by equal or lower priority.
    Fifo { rt_prio: u8 },
}

impl SchedPolicy {
    pub fn is_fifo(&self) -> bool {
        matches!(self, SchedPolicy::Fifo { .. })
    }
}

const BASE_PRIO: i32 = 120;
const MAX_DYN_BONUS: i32 = 10;

#[derive(Debug, Clone)]
struct Entry {
    task: Task,
    policy: SchedPolicy,
    /// Dynamic bonus for `Other` tasks, in [-MAX_DYN_BONUS, MAX_DYN_BONUS];
    /// higher is better. Decays while running, ages while waiting.
    dyn_bonus: i32,
    enq_seq: u64,
}

impl Entry {
    /// Effective priority: smaller is better (like kernel prio values).
    fn eff_prio(&self) -> i32 {
        match self.policy {
            SchedPolicy::Fifo { rt_prio } => -(rt_prio as i32) - 1000,
            SchedPolicy::Other { nice } => BASE_PRIO + nice - self.dyn_bonus,
        }
    }
}

/// The ready queue. Removing a task from here is the "stop the application"
/// operation kernel-thread checkpointers perform to guarantee consistency.
#[derive(Debug, Clone, Default)]
pub struct RunQueue {
    entries: Vec<Entry>,
    seq: u64,
}

impl RunQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task to the ready queue. Idempotent (re-enqueueing refreshes
    /// nothing and keeps the original order position).
    pub fn enqueue(&mut self, task: Task, policy: SchedPolicy) {
        if self.entries.iter().any(|e| e.task == task) {
            return;
        }
        self.seq += 1;
        self.entries.push(Entry {
            task,
            policy,
            dyn_bonus: 0,
            enq_seq: self.seq,
        });
    }

    /// Remove a task (blocking, exiting, or being frozen by a
    /// checkpointer). Returns true if it was queued.
    pub fn dequeue(&mut self, task: Task) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.task != task);
        self.entries.len() != before
    }

    pub fn contains(&self, task: Task) -> bool {
        self.entries.iter().any(|e| e.task == task)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Update a queued task's policy (mirrors `sched_setscheduler`).
    pub fn set_policy(&mut self, task: Task, policy: SchedPolicy) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.task == task) {
            e.policy = policy;
        }
    }

    /// Choose the next task to run without removing it.
    pub fn pick_next(&self) -> Option<Task> {
        self.entries
            .iter()
            .min_by_key(|e| (e.eff_prio(), e.enq_seq))
            .map(|e| e.task)
    }

    /// Would `candidate` preempt `current`? FIFO tasks are only preempted by
    /// strictly higher FIFO priority; `Other` tasks are preempted by any
    /// FIFO task or a strictly better `Other` priority.
    pub fn would_preempt(&self, current: Task, current_policy: SchedPolicy) -> bool {
        let cur = Entry {
            task: current,
            policy: current_policy,
            dyn_bonus: self
                .entries
                .iter()
                .find(|e| e.task == current)
                .map(|e| e.dyn_bonus)
                .unwrap_or(0),
            enq_seq: 0,
        };
        self.entries
            .iter()
            .filter(|e| e.task != current)
            .any(|e| e.eff_prio() < cur.eff_prio())
    }

    /// Account a tick of CPU used by `ran`: its dynamic bonus decays while
    /// every other waiting `Other` task ages upward, and the runner rotates
    /// to the back of its priority class (round-robin among equals —
    /// without this, once several waiters saturate at `MAX_DYN_BONUS` the
    /// two oldest entries ping-pong on the enqueue-order tie-break and
    /// everything behind them starves). FIFO entries are unaffected: a
    /// FIFO task runs until it yields the queue position itself.
    pub fn tick(&mut self, ran: Task) {
        let mut rotate = false;
        for e in self.entries.iter_mut() {
            if let SchedPolicy::Other { .. } = e.policy {
                if e.task == ran {
                    e.dyn_bonus = (e.dyn_bonus - 1).max(-MAX_DYN_BONUS);
                    rotate = true;
                } else {
                    e.dyn_bonus = (e.dyn_bonus + 1).min(MAX_DYN_BONUS);
                }
            }
        }
        if rotate {
            self.seq += 1;
            let seq = self.seq;
            if let Some(e) = self.entries.iter_mut().find(|e| e.task == ran) {
                e.enq_seq = seq;
            }
        }
    }

    /// All queued tasks in priority order (for inspection/debugging).
    pub fn snapshot(&self) -> Vec<(Task, SchedPolicy, i32)> {
        let mut v: Vec<_> = self
            .entries
            .iter()
            .map(|e| (e.task, e.policy, e.eff_prio()))
            .collect();
        v.sort_by_key(|(_, _, p)| *p);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{KtId, Pid};

    fn p(n: u32) -> Task {
        Task::Process(Pid(n))
    }

    #[test]
    fn fifo_always_beats_other() {
        let mut rq = RunQueue::new();
        rq.enqueue(p(1), SchedPolicy::Other { nice: -20 });
        rq.enqueue(Task::KThread(KtId(1)), SchedPolicy::Fifo { rt_prio: 1 });
        assert_eq!(rq.pick_next(), Some(Task::KThread(KtId(1))));
    }

    #[test]
    fn higher_rt_prio_wins_among_fifo() {
        let mut rq = RunQueue::new();
        rq.enqueue(p(1), SchedPolicy::Fifo { rt_prio: 10 });
        rq.enqueue(p(2), SchedPolicy::Fifo { rt_prio: 50 });
        assert_eq!(rq.pick_next(), Some(p(2)));
    }

    #[test]
    fn fifo_ties_break_in_enqueue_order() {
        let mut rq = RunQueue::new();
        rq.enqueue(p(3), SchedPolicy::Fifo { rt_prio: 5 });
        rq.enqueue(p(4), SchedPolicy::Fifo { rt_prio: 5 });
        assert_eq!(rq.pick_next(), Some(p(3)));
    }

    #[test]
    fn nice_orders_other_tasks() {
        let mut rq = RunQueue::new();
        rq.enqueue(p(1), SchedPolicy::Other { nice: 10 });
        rq.enqueue(p(2), SchedPolicy::Other { nice: -10 });
        assert_eq!(rq.pick_next(), Some(p(2)));
    }

    #[test]
    fn dynamic_priority_decays_for_runner_and_ages_waiters() {
        let mut rq = RunQueue::new();
        rq.enqueue(p(1), SchedPolicy::Other { nice: 0 });
        rq.enqueue(p(2), SchedPolicy::Other { nice: 0 });
        assert_eq!(rq.pick_next(), Some(p(1))); // enqueue order tie-break
        // p1 runs for two ticks: its bonus decays, p2 ages.
        rq.tick(p(1));
        rq.tick(p(1));
        assert_eq!(rq.pick_next(), Some(p(2)));
    }

    #[test]
    fn bonus_saturates() {
        let mut rq = RunQueue::new();
        rq.enqueue(p(1), SchedPolicy::Other { nice: 0 });
        for _ in 0..100 {
            rq.tick(p(1));
        }
        let snap = rq.snapshot();
        assert_eq!(snap[0].2, BASE_PRIO + MAX_DYN_BONUS); // fully decayed
    }

    #[test]
    fn saturated_queue_does_not_starve_late_arrivals() {
        // Three equal-nice tasks driven to bonus saturation: every task must
        // keep getting quanta (the runner rotates behind its equals), not
        // just the two oldest entries.
        let mut rq = RunQueue::new();
        rq.enqueue(p(1), SchedPolicy::Other { nice: 0 });
        rq.enqueue(p(2), SchedPolicy::Other { nice: 0 });
        rq.enqueue(Task::KThread(KtId(7)), SchedPolicy::Other { nice: 0 });
        let mut ran = std::collections::BTreeSet::new();
        for _ in 0..100 {
            let t = rq.pick_next().unwrap();
            ran.insert(format!("{t:?}"));
            rq.tick(t);
        }
        assert_eq!(ran.len(), 3, "all three tasks must run: {ran:?}");
    }

    #[test]
    fn dequeue_freezes_task() {
        let mut rq = RunQueue::new();
        rq.enqueue(p(1), SchedPolicy::Other { nice: 0 });
        assert!(rq.dequeue(p(1)));
        assert!(!rq.contains(p(1)));
        assert!(!rq.dequeue(p(1)));
        assert_eq!(rq.pick_next(), None);
    }

    #[test]
    fn would_preempt_fifo_semantics() {
        let mut rq = RunQueue::new();
        // Current: FIFO prio 50 (not necessarily in queue while running).
        let cur = p(1);
        rq.enqueue(p(2), SchedPolicy::Fifo { rt_prio: 50 });
        // Equal priority does NOT preempt FIFO.
        assert!(!rq.would_preempt(cur, SchedPolicy::Fifo { rt_prio: 50 }));
        rq.enqueue(p(3), SchedPolicy::Fifo { rt_prio: 60 });
        assert!(rq.would_preempt(cur, SchedPolicy::Fifo { rt_prio: 50 }));
        // Any FIFO preempts Other.
        assert!(rq.would_preempt(cur, SchedPolicy::Other { nice: -20 }));
    }

    #[test]
    fn enqueue_is_idempotent() {
        let mut rq = RunQueue::new();
        rq.enqueue(p(1), SchedPolicy::Other { nice: 0 });
        rq.enqueue(p(1), SchedPolicy::Other { nice: 0 });
        assert_eq!(rq.len(), 1);
    }

    #[test]
    fn set_policy_changes_ordering() {
        let mut rq = RunQueue::new();
        rq.enqueue(p(1), SchedPolicy::Other { nice: 0 });
        rq.enqueue(p(2), SchedPolicy::Other { nice: 0 });
        rq.set_policy(p(2), SchedPolicy::Fifo { rt_prio: 1 });
        assert_eq!(rq.pick_next(), Some(p(2)));
    }
}
