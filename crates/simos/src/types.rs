//! Fundamental identifier and error types shared across the simulator.

use std::fmt;

/// Process identifier. PID 0 is reserved for the idle task and never
/// assigned to a guest process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Kernel-thread identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KtId(pub u32);

impl fmt::Display for KtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kt{}", self.0)
    }
}

/// File descriptor index within a process's fd table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fd(pub u32);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// Index into the kernel's open-file-description table. Two descriptors
/// created by `dup` share one description (and thus one offset), exactly
/// like Linux.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OfdId(pub u32);

/// A schedulable entity: either a guest process or a kernel thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Task {
    Process(Pid),
    KThread(KtId),
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Task::Process(p) => write!(f, "{p}"),
            Task::KThread(k) => write!(f, "{k}"),
        }
    }
}

/// Errors surfaced by the simulator to its embedder. Guest-visible errors
/// (e.g. `EBADF`) are reported as [`Errno`] values through syscall returns
/// instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The referenced process does not exist (or has been reaped).
    NoSuchProcess(Pid),
    /// The referenced kernel thread does not exist.
    NoSuchKThread(KtId),
    /// A guest memory access failed and could not be handled.
    Fault {
        pid: Pid,
        addr: u64,
        kind: FaultKind,
    },
    /// The guest program performed an illegal operation (bad opcode,
    /// division by zero, jump outside text, ...).
    IllegalInstruction { pid: Pid, pc: u64, detail: String },
    /// The kernel ran out of a finite resource (pids, memory budget, ...).
    ResourceExhausted(&'static str),
    /// An embedder-level misuse of the API.
    Usage(String),
    /// The process terminated abnormally (killed by a signal).
    KilledBySignal { pid: Pid, sig: u32 },
    /// A deadline passed without the awaited condition becoming true.
    Timeout(String),
    /// An armed [`crate::faultpoint`] site fired: the injected failure
    /// (fail-stop, torn write, transient) interrupted the operation.
    InjectedFault { site: String },
    /// Post-copy live migration lost its source node before the residual
    /// page set drained: the pages still on the source are unrecoverable
    /// and the half-populated target must be discarded.
    SourceLostMidMigration { residual_pages: u64 },
    /// Iterative pre-copy could not converge: the guest dirtied pages
    /// faster than the link drained them for the whole round budget, and
    /// auto-converge throttling was not enabled (or was exhausted).
    CutoverDiverged { rounds: u32, residual_pages: u64 },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoSuchProcess(p) => write!(f, "no such process: {p}"),
            SimError::NoSuchKThread(k) => write!(f, "no such kernel thread: {k}"),
            SimError::Fault { pid, addr, kind } => {
                write!(f, "{pid}: unhandled fault at {addr:#x}: {kind:?}")
            }
            SimError::IllegalInstruction { pid, pc, detail } => {
                write!(f, "{pid}: illegal instruction at pc={pc:#x}: {detail}")
            }
            SimError::ResourceExhausted(what) => write!(f, "resource exhausted: {what}"),
            SimError::Usage(msg) => write!(f, "API misuse: {msg}"),
            SimError::KilledBySignal { pid, sig } => {
                write!(f, "{pid} killed by signal {sig}")
            }
            SimError::Timeout(what) => write!(f, "timeout waiting for {what}"),
            SimError::InjectedFault { site } => {
                write!(f, "injected fault fired at {site}")
            }
            SimError::SourceLostMidMigration { residual_pages } => {
                write!(
                    f,
                    "migration source lost with {residual_pages} residual pages undrained"
                )
            }
            SimError::CutoverDiverged {
                rounds,
                residual_pages,
            } => {
                write!(
                    f,
                    "pre-copy diverged after {rounds} rounds ({residual_pages} pages still dirty)"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Why a guest memory access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// No mapping covers the address.
    NotMapped,
    /// Write to a page without write permission.
    WriteProtected,
    /// Read from a page without read permission.
    ReadProtected,
    /// Instruction fetch from a page without execute permission.
    ExecProtected,
}

pub type SimResult<T> = Result<T, SimError>;

/// Guest-visible error numbers, modelled on the usual POSIX set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(i64)]
pub enum Errno {
    EPERM = 1,
    ENOENT = 2,
    ESRCH = 3,
    EINTR = 4,
    EBADF = 9,
    ECHILD = 10,
    EAGAIN = 11,
    ENOMEM = 12,
    EACCES = 13,
    EFAULT = 14,
    EBUSY = 16,
    EEXIST = 17,
    ENOTDIR = 20,
    EINVAL = 22,
    ENFILE = 23,
    EMFILE = 24,
    ENOTTY = 25,
    ENOSPC = 28,
    ENOSYS = 38,
    EADDRINUSE = 98,
}

impl Errno {
    /// The conventional negative return value for a failing syscall.
    pub fn as_ret(self) -> i64 {
        -(self as i64)
    }
}

/// Result of a guest syscall: a non-negative value or an errno.
pub type SysResult = Result<u64, Errno>;

/// Encode a [`SysResult`] the way the kernel ABI does: negative errno.
pub fn sysret_encode(r: SysResult) -> i64 {
    match r {
        Ok(v) => v as i64,
        Err(e) => e.as_ret(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_encoding_is_negative() {
        assert_eq!(Errno::EINVAL.as_ret(), -22);
        assert_eq!(sysret_encode(Err(Errno::ENOSYS)), -38);
        assert_eq!(sysret_encode(Ok(7)), 7);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Pid(3).to_string(), "pid3");
        assert_eq!(KtId(1).to_string(), "kt1");
        assert_eq!(Fd(2).to_string(), "fd2");
        assert_eq!(Task::Process(Pid(9)).to_string(), "pid9");
        assert_eq!(Task::KThread(KtId(4)).to_string(), "kt4");
    }

    #[test]
    fn sim_error_display_is_informative() {
        let e = SimError::Fault {
            pid: Pid(5),
            addr: 0x1000,
            kind: FaultKind::WriteProtected,
        };
        let s = e.to_string();
        assert!(s.contains("pid5"));
        assert!(s.contains("0x1000"));
    }
}
