//! The modelled user-space checkpoint runtime.
//!
//! User-level checkpointing schemes (Section 3 of the paper) attach code to
//! the application: a checkpoint library linked in (libckpt), signal
//! handlers, or an `LD_PRELOAD` shim that interposes on syscalls to mirror
//! kernel state in user space. The simulator models that attached code with
//! this structure, kept inside the [`crate::pcb::Pcb`] but semantically
//! living *in user space* — everything recorded here could only have been
//! learned through syscalls or interposition, and the costs of learning it
//! are charged when it is recorded.

use crate::types::Fd;
use std::collections::{BTreeMap, BTreeSet};

/// A user-space mirror of one file descriptor's metadata, built by
/// interposing `open`/`dup`/`close` (the paper's example of state that is
/// "inaccessible from user level" without interception).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdMirror {
    pub path: String,
    pub flags_write: bool,
}

/// A user-space mirror of one dynamic memory mapping, built by interposing
/// `mmap`/`munmap`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MmapMirror {
    pub addr: u64,
    pub len: u64,
    pub name: String,
}

/// State of the modelled user-level runtime.
#[derive(Debug, Clone, Default)]
pub struct UserRuntime {
    /// Whether the LD_PRELOAD interposition shim is active (adds a fixed
    /// overhead to every interposed syscall for the process's lifetime).
    pub interpose_active: bool,
    /// Mirrored fd table (only populated when interposing).
    pub fd_mirror: BTreeMap<u32, FdMirror>,
    /// Mirrored dynamic mappings (only populated when interposing).
    pub mmap_mirror: Vec<MmapMirror>,
    /// User-space dirty-page bitmap maintained by the SIGSEGV tracking
    /// handler (page numbers).
    pub dirty_bitmap: BTreeSet<u64>,
    /// Number of SIGSEGV tracking faults the user handler has serviced.
    pub segv_tracked: u64,
    /// Number of syscalls that went through the interposition shim.
    pub interposed_calls: u64,
    /// Counter incremented by `UserHandlerKind::CountOnly` handlers.
    pub handler_invocations: u64,
    /// Set by signal-driven checkpoint handlers to ask the embedding
    /// mechanism to perform a user-level checkpoint at the next safe point.
    pub checkpoint_requested: bool,
    /// Number of user-level checkpoints this runtime has performed.
    pub checkpoints_taken: u64,
    /// Name of the [`crate::module::UserAgent`] attached to this process
    /// (the linked/preloaded checkpoint library), if any.
    pub agent: Option<String>,
    /// If set, the application has been modified/relinked to call its
    /// checkpoint library every N completed steps (the libckpt/VMADump
    /// self-checkpointing pattern — the transparency cost in Table 1).
    pub self_ckpt_every: Option<u64>,
    /// If set, the self-checkpoint call site invokes this extension syscall
    /// (the VMADump "checkpoint yourself via a new system call" pattern)
    /// instead of a user-level agent.
    pub self_ckpt_ext: Option<u32>,
}

impl UserRuntime {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an interposed `open`.
    pub fn mirror_open(&mut self, fd: Fd, path: &str, write: bool) {
        self.fd_mirror.insert(
            fd.0,
            FdMirror {
                path: path.to_string(),
                flags_write: write,
            },
        );
        self.interposed_calls += 1;
    }

    /// Record an interposed `close`.
    pub fn mirror_close(&mut self, fd: Fd) {
        self.fd_mirror.remove(&fd.0);
        self.interposed_calls += 1;
    }

    /// Record an interposed `dup`.
    pub fn mirror_dup(&mut self, from: Fd, to: Fd) {
        if let Some(m) = self.fd_mirror.get(&from.0).cloned() {
            self.fd_mirror.insert(to.0, m);
        }
        self.interposed_calls += 1;
    }

    /// Record an interposed `mmap`.
    pub fn mirror_mmap(&mut self, addr: u64, len: u64, name: &str) {
        self.mmap_mirror.push(MmapMirror {
            addr,
            len,
            name: name.to_string(),
        });
        self.interposed_calls += 1;
    }

    /// Record an interposed `munmap`.
    pub fn mirror_munmap(&mut self, addr: u64) {
        self.mmap_mirror.retain(|m| m.addr != addr);
        self.interposed_calls += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_mirror_tracks_open_close_dup() {
        let mut rt = UserRuntime::new();
        rt.mirror_open(Fd(3), "/tmp/x", true);
        rt.mirror_dup(Fd(3), Fd(4));
        assert_eq!(rt.fd_mirror.len(), 2);
        assert_eq!(rt.fd_mirror[&4].path, "/tmp/x");
        rt.mirror_close(Fd(3));
        assert_eq!(rt.fd_mirror.len(), 1);
        assert_eq!(rt.interposed_calls, 3);
    }

    #[test]
    fn mmap_mirror_tracks_mappings() {
        let mut rt = UserRuntime::new();
        rt.mirror_mmap(0x4000_0000, 8192, "anon");
        rt.mirror_mmap(0x4001_0000, 4096, "lib");
        rt.mirror_munmap(0x4000_0000);
        assert_eq!(rt.mmap_mirror.len(), 1);
        assert_eq!(rt.mmap_mirror[0].name, "lib");
    }

    #[test]
    fn dup_of_unmirrored_fd_is_harmless() {
        let mut rt = UserRuntime::new();
        rt.mirror_dup(Fd(9), Fd(10));
        assert!(rt.fd_mirror.is_empty());
        assert_eq!(rt.interposed_calls, 1);
    }
}
