//! A small in-memory filesystem with regular files, `/dev` device nodes and
//! `/proc` pseudo-entries.
//!
//! Device nodes and proc entries carry the name of the kernel module that
//! services them; the kernel dispatches `read`/`write`/`ioctl` on such files
//! to the module (see [`crate::module`]). This is how the surveyed
//! kernel-thread checkpointers expose their interfaces: CRAK/BLCR use a
//! device file in `/dev` with `ioctl`, CHPOX/PsncR/C use `/proc` entries
//! (Section 4.1).

use std::collections::BTreeMap;

/// A node in the filesystem tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsNode {
    Dir,
    File { data: Vec<u8> },
    /// A character device serviced by a kernel module.
    Device { module: String, minor: u32 },
    /// A `/proc` pseudo-file serviced by a kernel module.
    Proc { module: String, tag: String },
}

/// Open flags (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenFlags {
    pub read: bool,
    pub write: bool,
    pub create: bool,
    pub truncate: bool,
    pub append: bool,
}

impl OpenFlags {
    pub const RDONLY: OpenFlags = OpenFlags {
        read: true,
        write: false,
        create: false,
        truncate: false,
        append: false,
    };
    pub const WRONLY_CREATE: OpenFlags = OpenFlags {
        read: false,
        write: true,
        create: true,
        truncate: true,
        append: false,
    };
    pub const RDWR: OpenFlags = OpenFlags {
        read: true,
        write: true,
        create: false,
        truncate: false,
        append: false,
    };
    pub const RDWR_CREATE: OpenFlags = OpenFlags {
        read: true,
        write: true,
        create: true,
        truncate: false,
        append: false,
    };
}

/// The in-memory filesystem.
#[derive(Debug, Clone, Default)]
pub struct SimFs {
    nodes: BTreeMap<String, FsNode>,
}

fn normalize(path: &str) -> String {
    let mut out = String::from("/");
    for comp in path.split('/').filter(|c| !c.is_empty() && *c != ".") {
        if !out.ends_with('/') {
            out.push('/');
        }
        out.push_str(comp);
    }
    out
}

fn parent_of(path: &str) -> Option<String> {
    let p = path.rfind('/')?;
    if p == 0 {
        Some("/".to_string())
    } else {
        Some(path[..p].to_string())
    }
}

impl SimFs {
    /// A filesystem pre-populated with `/`, `/dev`, `/proc`, `/tmp`,
    /// `/ckpt`.
    pub fn new() -> Self {
        let mut fs = SimFs {
            nodes: BTreeMap::new(),
        };
        for d in ["/", "/dev", "/proc", "/tmp", "/ckpt"] {
            fs.nodes.insert(d.to_string(), FsNode::Dir);
        }
        fs
    }

    /// Look up a node.
    pub fn get(&self, path: &str) -> Option<&FsNode> {
        self.nodes.get(&normalize(path))
    }

    pub fn get_mut(&mut self, path: &str) -> Option<&mut FsNode> {
        self.nodes.get_mut(&normalize(path))
    }

    pub fn exists(&self, path: &str) -> bool {
        self.get(path).is_some()
    }

    /// Create a directory (parents must exist).
    pub fn mkdir(&mut self, path: &str) -> Result<(), FsError> {
        let path = normalize(path);
        self.check_parent(&path)?;
        if self.nodes.contains_key(&path) {
            return Err(FsError::Exists);
        }
        self.nodes.insert(path, FsNode::Dir);
        Ok(())
    }

    fn check_parent(&self, path: &str) -> Result<(), FsError> {
        match parent_of(path) {
            Some(p) => match self.nodes.get(&p) {
                Some(FsNode::Dir) => Ok(()),
                Some(_) => Err(FsError::NotADirectory),
                None => Err(FsError::NotFound),
            },
            None => Err(FsError::NotFound),
        }
    }

    /// Create (or truncate) a regular file.
    pub fn create_file(&mut self, path: &str) -> Result<(), FsError> {
        let path = normalize(path);
        self.check_parent(&path)?;
        match self.nodes.get(&path) {
            Some(FsNode::Dir) => return Err(FsError::IsADirectory),
            Some(FsNode::Device { .. }) | Some(FsNode::Proc { .. }) => {
                return Err(FsError::Exists)
            }
            _ => {}
        }
        self.nodes.insert(path, FsNode::File { data: Vec::new() });
        Ok(())
    }

    /// Register a device node (done by kernel modules at load time).
    pub fn register_device(&mut self, path: &str, module: &str, minor: u32) -> Result<(), FsError> {
        let path = normalize(path);
        self.check_parent(&path)?;
        if self.nodes.contains_key(&path) {
            return Err(FsError::Exists);
        }
        self.nodes.insert(
            path,
            FsNode::Device {
                module: module.to_string(),
                minor,
            },
        );
        Ok(())
    }

    /// Register a `/proc` entry.
    pub fn register_proc(&mut self, path: &str, module: &str, tag: &str) -> Result<(), FsError> {
        let path = normalize(path);
        self.check_parent(&path)?;
        if self.nodes.contains_key(&path) {
            return Err(FsError::Exists);
        }
        self.nodes.insert(
            path,
            FsNode::Proc {
                module: module.to_string(),
                tag: tag.to_string(),
            },
        );
        Ok(())
    }

    /// Remove a node (files, devices, proc entries — not non-empty dirs).
    pub fn unlink(&mut self, path: &str) -> Result<(), FsError> {
        let path = normalize(path);
        match self.nodes.get(&path) {
            None => Err(FsError::NotFound),
            Some(FsNode::Dir) => {
                let prefix = if path == "/" {
                    path.clone()
                } else {
                    format!("{path}/")
                };
                if self.nodes.keys().any(|k| k.starts_with(&prefix)) {
                    Err(FsError::NotEmpty)
                } else {
                    self.nodes.remove(&path);
                    Ok(())
                }
            }
            Some(_) => {
                self.nodes.remove(&path);
                Ok(())
            }
        }
    }

    /// Read from a regular file at an offset. Returns bytes read.
    pub fn read_at(&self, path: &str, offset: u64, out: &mut [u8]) -> Result<usize, FsError> {
        match self.get(path) {
            Some(FsNode::File { data }) => {
                let off = offset.min(data.len() as u64) as usize;
                let n = out.len().min(data.len() - off);
                out[..n].copy_from_slice(&data[off..off + n]);
                Ok(n)
            }
            Some(_) => Err(FsError::NotAFile),
            None => Err(FsError::NotFound),
        }
    }

    /// Write to a regular file at an offset (extending as needed). Returns
    /// bytes written.
    pub fn write_at(&mut self, path: &str, offset: u64, data: &[u8]) -> Result<usize, FsError> {
        match self.get_mut(path) {
            Some(FsNode::File { data: content }) => {
                let end = offset as usize + data.len();
                if content.len() < end {
                    content.resize(end, 0);
                }
                content[offset as usize..end].copy_from_slice(data);
                Ok(data.len())
            }
            Some(_) => Err(FsError::NotAFile),
            None => Err(FsError::NotFound),
        }
    }

    /// Size of a regular file.
    pub fn file_len(&self, path: &str) -> Result<u64, FsError> {
        match self.get(path) {
            Some(FsNode::File { data }) => Ok(data.len() as u64),
            Some(_) => Err(FsError::NotAFile),
            None => Err(FsError::NotFound),
        }
    }

    /// Entire contents of a regular file.
    pub fn read_file(&self, path: &str) -> Result<&[u8], FsError> {
        match self.get(path) {
            Some(FsNode::File { data }) => Ok(data),
            Some(_) => Err(FsError::NotAFile),
            None => Err(FsError::NotFound),
        }
    }

    /// List directory entries (immediate children), sorted.
    pub fn list(&self, dir: &str) -> Result<Vec<String>, FsError> {
        let dir = normalize(dir);
        match self.nodes.get(&dir) {
            Some(FsNode::Dir) => {}
            Some(_) => return Err(FsError::NotADirectory),
            None => return Err(FsError::NotFound),
        }
        let prefix = if dir == "/" {
            "/".to_string()
        } else {
            format!("{dir}/")
        };
        Ok(self
            .nodes
            .keys()
            .filter(|k| {
                k.starts_with(&prefix)
                    && k.len() > prefix.len()
                    && !k[prefix.len()..].contains('/')
            })
            .cloned()
            .collect())
    }
}

/// Filesystem-level errors (mapped to errnos by the syscall layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    NotFound,
    Exists,
    NotADirectory,
    IsADirectory,
    NotAFile,
    NotEmpty,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_paths() {
        assert_eq!(normalize("/a//b/./c"), "/a/b/c");
        assert_eq!(normalize("a/b"), "/a/b");
        assert_eq!(normalize("/"), "/");
    }

    #[test]
    fn create_write_read_round_trip() {
        let mut fs = SimFs::new();
        fs.create_file("/tmp/x").unwrap();
        fs.write_at("/tmp/x", 0, b"abcdef").unwrap();
        let mut buf = [0u8; 6];
        assert_eq!(fs.read_at("/tmp/x", 0, &mut buf).unwrap(), 6);
        assert_eq!(&buf, b"abcdef");
        // Offset read.
        let mut buf2 = [0u8; 3];
        assert_eq!(fs.read_at("/tmp/x", 3, &mut buf2).unwrap(), 3);
        assert_eq!(&buf2, b"def");
    }

    #[test]
    fn write_extends_with_zero_fill() {
        let mut fs = SimFs::new();
        fs.create_file("/tmp/x").unwrap();
        fs.write_at("/tmp/x", 4, b"zz").unwrap();
        assert_eq!(fs.file_len("/tmp/x").unwrap(), 6);
        assert_eq!(fs.read_file("/tmp/x").unwrap(), &[0, 0, 0, 0, b'z', b'z']);
    }

    #[test]
    fn missing_parent_rejected() {
        let mut fs = SimFs::new();
        assert_eq!(fs.create_file("/nodir/x"), Err(FsError::NotFound));
        fs.mkdir("/nodir").unwrap();
        assert!(fs.create_file("/nodir/x").is_ok());
    }

    #[test]
    fn device_and_proc_registration() {
        let mut fs = SimFs::new();
        fs.register_device("/dev/crak", "crak", 0).unwrap();
        fs.register_proc("/proc/chpox", "chpox", "register").unwrap();
        assert!(matches!(fs.get("/dev/crak"), Some(FsNode::Device { .. })));
        assert!(matches!(fs.get("/proc/chpox"), Some(FsNode::Proc { .. })));
        // Double registration fails.
        assert_eq!(
            fs.register_device("/dev/crak", "crak", 0),
            Err(FsError::Exists)
        );
        // Reading a device through the regular path is an error here; the
        // kernel must dispatch to the module instead.
        let mut buf = [0u8; 1];
        assert_eq!(fs.read_at("/dev/crak", 0, &mut buf), Err(FsError::NotAFile));
    }

    #[test]
    fn unlink_semantics() {
        let mut fs = SimFs::new();
        fs.create_file("/tmp/x").unwrap();
        fs.unlink("/tmp/x").unwrap();
        assert!(!fs.exists("/tmp/x"));
        assert_eq!(fs.unlink("/tmp/x"), Err(FsError::NotFound));
        // Non-empty dir refuses.
        fs.create_file("/tmp/y").unwrap();
        assert_eq!(fs.unlink("/tmp"), Err(FsError::NotEmpty));
        fs.unlink("/tmp/y").unwrap();
        assert!(fs.unlink("/tmp").is_ok());
    }

    #[test]
    fn list_sorted_children() {
        let mut fs = SimFs::new();
        fs.create_file("/tmp/b").unwrap();
        fs.create_file("/tmp/a").unwrap();
        fs.mkdir("/tmp/sub").unwrap();
        fs.create_file("/tmp/sub/deep").unwrap();
        let l = fs.list("/tmp").unwrap();
        assert_eq!(l, vec!["/tmp/a", "/tmp/b", "/tmp/sub"]);
    }

    #[test]
    fn truncating_create_resets_content() {
        let mut fs = SimFs::new();
        fs.create_file("/tmp/x").unwrap();
        fs.write_at("/tmp/x", 0, b"data").unwrap();
        fs.create_file("/tmp/x").unwrap();
        assert_eq!(fs.file_len("/tmp/x").unwrap(), 0);
    }
}
