//! Kernel-wide event counters.
//!
//! The experiments quantify the paper's claims by *counting the events the
//! paper argues about*: protection-domain crossings, context switches,
//! address-space switches with TLB flushes, page faults, and signal
//! deliveries.

/// Monotonic counters maintained by the kernel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Syscalls dispatched (all kinds), i.e. user→kernel→user round trips.
    pub syscalls: u64,
    /// Extension syscalls (module-registered) among the above.
    pub ext_syscalls: u64,
    /// Task-to-task context switches.
    pub context_switches: u64,
    /// Address-space (mm) switches, each implying a TLB flush.
    pub mm_switches: u64,
    /// Page-fault traps taken.
    pub page_faults: u64,
    /// Signals delivered to user handlers.
    pub signals_delivered: u64,
    /// Signals resolved by kernel default actions.
    pub signals_defaulted: u64,
    /// Timer ticks processed.
    pub ticks: u64,
    /// Kernel-timer firings.
    pub timer_fires: u64,
    /// ioctl dispatches to modules.
    pub ioctls: u64,
    /// Syscalls that went through an LD_PRELOAD interposition shim.
    pub interposed_syscalls: u64,
    /// Virtual ns the CPU sat idle (nothing runnable).
    pub idle_ns: u64,
    /// Virtual ns spent executing guest work (user mode).
    pub user_ns: u64,
    /// Virtual ns spent in kernel mode (syscalls, faults, modules,
    /// kthreads).
    pub kernel_ns: u64,
    /// Process forks performed.
    pub forks: u64,
    /// Copy-on-write faults serviced after forks.
    pub cow_faults: u64,
}

impl KernelStats {
    /// Difference `self - earlier` (for measuring an interval).
    pub fn delta_since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            syscalls: self.syscalls - earlier.syscalls,
            ext_syscalls: self.ext_syscalls - earlier.ext_syscalls,
            context_switches: self.context_switches - earlier.context_switches,
            mm_switches: self.mm_switches - earlier.mm_switches,
            page_faults: self.page_faults - earlier.page_faults,
            signals_delivered: self.signals_delivered - earlier.signals_delivered,
            signals_defaulted: self.signals_defaulted - earlier.signals_defaulted,
            ticks: self.ticks - earlier.ticks,
            timer_fires: self.timer_fires - earlier.timer_fires,
            ioctls: self.ioctls - earlier.ioctls,
            interposed_syscalls: self.interposed_syscalls - earlier.interposed_syscalls,
            idle_ns: self.idle_ns - earlier.idle_ns,
            user_ns: self.user_ns - earlier.user_ns,
            kernel_ns: self.kernel_ns - earlier.kernel_ns,
            forks: self.forks - earlier.forks,
            cow_faults: self.cow_faults - earlier.cow_faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = KernelStats {
            syscalls: 10,
            idle_ns: 100,
            ..KernelStats::default()
        };
        let mut b = a.clone();
        b.syscalls = 25;
        b.idle_ns = 150;
        b.page_faults = 3;
        let d = b.delta_since(&a);
        assert_eq!(d.syscalls, 15);
        assert_eq!(d.idle_ns, 50);
        assert_eq!(d.page_faults, 3);
        assert_eq!(d.context_switches, 0);
    }
}
