//! Guest virtual memory: pages, VMAs, protection, and write tracking.
//!
//! Memory is sparse: only touched pages are materialized. Every access goes
//! through protection checks, which is what makes the incremental
//! checkpointing techniques of the paper implementable — write-protecting
//! the address space and catching the first write to each page is exactly
//! the `mprotect`/`SIGSEGV` (user-level) or page-fault-handler
//! (system-level) scheme of Sections 3 and 4.1.
//!
//! The module also supports cache-line-granularity write logging for the
//! hardware-assisted model of Section 4.2 (ReVive/SafetyNet).
//!
//! ## The software TLB
//!
//! Resolving one guest access used to cost a `BTreeMap` walk to find the
//! page, a linear VMA scan when the page was absent, and a second walk to
//! fetch the data. A direct-mapped translation cache ([`TlbEntry`],
//! `TLB_SIZE` entries) short-circuits both: it maps a page number to the
//! page's *slot* in a stable page store plus its effective protection, so
//! the hot path is one array probe. The cache is purely a host-side
//! accelerator — it never changes guest-visible behavior or virtual-time
//! accounting, only wall-clock. Its invalidation points are exactly the
//! paper's TLB-flush events: address-space operations (`mmap`/`munmap`/
//! `brk`), `mprotect`-based (re-)arming of write tracking, checkpoint
//! restore, and — driven by the kernel — the address-space switch.
//! Hit/miss/flush counts are reported in [`MemStats`].
//!
//! Internal fallible operations use `Result<_, ()>`: the kernel maps every
//! failure to a single guest-visible errno, so a richer error type here
//! would add no information.
#![allow(clippy::result_unit_err)]

pub use crate::cost::{CACHE_LINE, PAGE_SIZE};
use crate::types::FaultKind;
use std::collections::{BTreeMap, BTreeSet};

/// Page protection bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prot(pub u8);

impl Prot {
    pub const NONE: Prot = Prot(0);
    pub const R: Prot = Prot(1);
    pub const W: Prot = Prot(2);
    pub const X: Prot = Prot(4);
    pub const RW: Prot = Prot(1 | 2);
    pub const RX: Prot = Prot(1 | 4);
    pub const RWX: Prot = Prot(1 | 2 | 4);

    pub fn readable(self) -> bool {
        self.0 & 1 != 0
    }
    pub fn writable(self) -> bool {
        self.0 & 2 != 0
    }
    pub fn executable(self) -> bool {
        self.0 & 4 != 0
    }
    pub fn union(self, other: Prot) -> Prot {
        Prot(self.0 | other.0)
    }
    pub fn without_write(self) -> Prot {
        Prot(self.0 & !2)
    }
}

impl std::fmt::Display for Prot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.readable() { 'r' } else { '-' },
            if self.writable() { 'w' } else { '-' },
            if self.executable() { 'x' } else { '-' }
        )
    }
}

/// What kind of region a VMA is — mirrors `/proc/<pid>/maps` classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmaKind {
    Text,
    Data,
    Heap,
    Stack,
    Mmap,
    SharedLib,
}

/// A virtual memory area: a contiguous range of pages with common
/// protections, as tracked by the kernel (and dumped by VMADump-style
/// checkpointers).
#[derive(Debug, Clone, PartialEq)]
pub struct Vma {
    pub start: u64,
    pub end: u64, // exclusive, page-aligned
    pub prot: Prot,
    pub kind: VmaKind,
    pub name: String,
}

impl Vma {
    pub fn len(&self) -> u64 {
        self.end - self.start
    }
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end
    }
    pub fn pages(&self) -> impl Iterator<Item = u64> {
        (self.start / PAGE_SIZE)..(self.end / PAGE_SIZE)
    }
}

/// A materialized page.
#[derive(Clone)]
pub struct Page {
    pub data: Box<[u8]>,
    /// Effective protection (may be stricter than the owning VMA's
    /// protection while write-tracking is armed).
    pub prot: Prot,
}

impl Page {
    fn zeroed(prot: Prot) -> Self {
        Page {
            data: vec![0u8; PAGE_SIZE as usize].into_boxed_slice(),
            prot,
        }
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page(prot={})", self.prot)
    }
}

/// How writes are being tracked, if at all. Configured by the
/// checkpoint/restart machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackMode {
    /// No tracking.
    Off,
    /// System-level: the kernel page-fault handler records the dirty page
    /// and re-enables write access (Section 4.1).
    KernelPage,
    /// User-level: the fault is turned into a `SIGSEGV` delivered to a user
    /// handler which records the page and calls `mprotect` (Section 3).
    UserSigsegv,
    /// Hardware: every write is logged at cache-line granularity with no
    /// software cost (Section 4.2).
    HardwareLine,
}

/// Outcome of a raw access attempt, before the kernel's fault policy runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    Ok,
    Fault { addr: u64, kind: FaultKind },
}

/// Statistics the memory subsystem keeps for the embedder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemStats {
    pub pages_materialized: u64,
    pub write_faults_tracked: u64,
    pub protection_faults: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
    /// Software-TLB probes answered from the cache.
    pub tlb_hits: u64,
    /// Software-TLB probes that fell back to the page-index walk.
    pub tlb_misses: u64,
    /// Full software-TLB flushes (mm switch, mprotect re-arm, unmap,
    /// restore — the paper's invalidation events).
    pub tlb_flushes: u64,
    /// Dirty-rate samples taken by live migration's per-round observer
    /// (see [`AddressSpace::sample_dirty`]).
    pub dirty_samples: u64,
    /// Total dirty pages seen across those samples (sum, so the mean
    /// per-round dirty set is `dirty_pages_sampled / dirty_samples`).
    pub dirty_pages_sampled: u64,
}

/// Number of entries in the direct-mapped software TLB.
const TLB_SIZE: usize = 128;

/// One software-TLB entry: page number → slot in the page store plus the
/// page's effective protection at fill time.
#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    pn: u64,
    slot: u32,
    prot: Prot,
}

impl TlbEntry {
    /// `u64::MAX` is never a reachable guest page number (the layout tops
    /// out at [`STACK_TOP`]), so it doubles as the invalid marker.
    const INVALID: TlbEntry = TlbEntry {
        pn: u64::MAX,
        slot: 0,
        prot: Prot::NONE,
    };
}

#[inline]
fn tlb_idx(pn: u64) -> usize {
    (pn as usize) & (TLB_SIZE - 1)
}

/// A guest address space.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    /// Page number → slot in `slots`. The indirection gives every
    /// materialized page a stable index the TLB can cache across unrelated
    /// inserts; only removal or protection change invalidates an entry.
    page_index: BTreeMap<u64, u32>,
    slots: Vec<Option<Page>>,
    free_slots: Vec<u32>,
    tlb: [TlbEntry; TLB_SIZE],
    /// Runtime switch for the translation cache (observational-equivalence
    /// tests run with it off; production paths leave it on).
    tlb_enabled: bool,
    vmas: Vec<Vma>,
    brk: u64,
    heap_base: u64,
    mmap_cursor: u64,
    pub track: TrackMode,
    /// Pages dirtied since tracking was last armed (kernel- or user-level;
    /// the user-level set models the user-space bitmap the SIGSEGV handler
    /// maintains, kept here for uniform inspection).
    pub dirty_pages: BTreeSet<u64>,
    /// Cache lines dirtied since tracking was armed (hardware mode).
    pub dirty_lines: BTreeSet<u64>,
    pub stats: MemStats,
}

pub const TEXT_BASE: u64 = 0x0000_0000_0040_0000;
pub const DATA_BASE: u64 = 0x0000_0000_0100_0000;
pub const HEAP_BASE: u64 = 0x0000_0000_0800_0000;
pub const MMAP_BASE: u64 = 0x0000_0000_4000_0000;
pub const STACK_TOP: u64 = 0x0000_0000_8000_0000;
pub const STACK_PAGES: u64 = 64;

impl AddressSpace {
    /// Create an address space with the canonical text/data/heap/stack
    /// layout.
    pub fn new(text_bytes: u64, data_bytes: u64) -> Self {
        let mut a = AddressSpace {
            page_index: BTreeMap::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            tlb: [TlbEntry::INVALID; TLB_SIZE],
            tlb_enabled: true,
            vmas: Vec::new(),
            brk: HEAP_BASE,
            heap_base: HEAP_BASE,
            mmap_cursor: MMAP_BASE,
            track: TrackMode::Off,
            dirty_pages: BTreeSet::new(),
            dirty_lines: BTreeSet::new(),
            stats: MemStats::default(),
        };
        let text_end = TEXT_BASE + round_up(text_bytes.max(1), PAGE_SIZE);
        a.vmas.push(Vma {
            start: TEXT_BASE,
            end: text_end,
            prot: Prot::RX,
            kind: VmaKind::Text,
            name: "[text]".into(),
        });
        let data_end = DATA_BASE + round_up(data_bytes.max(1), PAGE_SIZE);
        a.vmas.push(Vma {
            start: DATA_BASE,
            end: data_end,
            prot: Prot::RW,
            kind: VmaKind::Data,
            name: "[data]".into(),
        });
        a.vmas.push(Vma {
            start: HEAP_BASE,
            end: HEAP_BASE,
            prot: Prot::RW,
            kind: VmaKind::Heap,
            name: "[heap]".into(),
        });
        a.vmas.push(Vma {
            start: STACK_TOP - STACK_PAGES * PAGE_SIZE,
            end: STACK_TOP,
            prot: Prot::RW,
            kind: VmaKind::Stack,
            name: "[stack]".into(),
        });
        a
    }

    // ------------------------------------------------------------------
    // Software TLB.
    // ------------------------------------------------------------------

    /// Enable or disable the translation cache at runtime. Disabling forces
    /// every access down the slow page-index/VMA walk; re-enabling starts
    /// from a cold cache. Guest-visible behavior is identical either way.
    pub fn set_tlb_enabled(&mut self, enabled: bool) {
        if enabled && !self.tlb_enabled {
            self.tlb = [TlbEntry::INVALID; TLB_SIZE];
        }
        self.tlb_enabled = enabled;
    }

    /// Flush the whole translation cache — one of the paper's invalidation
    /// events (the kernel calls this on the address-space switch; internal
    /// callers on `mprotect` re-arm, unmap, and restore).
    pub fn tlb_flush(&mut self) {
        self.tlb = [TlbEntry::INVALID; TLB_SIZE];
        self.stats.tlb_flushes += 1;
    }

    /// Invalidate the single entry for `pn` (the per-page `mprotect` the
    /// tracking fault handler performs — no full flush needed).
    #[inline]
    fn tlb_evict(&mut self, pn: u64) {
        let e = &mut self.tlb[tlb_idx(pn)];
        if e.pn == pn {
            *e = TlbEntry::INVALID;
        }
    }

    #[inline]
    fn tlb_fill(&mut self, pn: u64, slot: u32, prot: Prot) {
        if self.tlb_enabled {
            self.tlb[tlb_idx(pn)] = TlbEntry { pn, slot, prot };
        }
    }

    /// Slow path behind a TLB miss on the protection walk: consult the page
    /// index (filling the TLB on residency) or fall back to the VMA scan.
    fn resolve_prot_slow(&mut self, pn: u64) -> Option<Prot> {
        if let Some(&slot) = self.page_index.get(&pn) {
            let prot = self.slots[slot as usize].as_ref().expect("live slot").prot;
            self.tlb_fill(pn, slot, prot);
            return Some(prot);
        }
        self.vma_of(pn * PAGE_SIZE).map(|v| v.prot)
    }

    /// Resolve the slot for a write to `pn`, materializing on demand. This
    /// is the single place protection/residency is resolved for the data
    /// half of an access — a TLB hit skips both map walks.
    #[inline]
    fn slot_for_write(&mut self, pn: u64) -> u32 {
        if self.tlb_enabled {
            let e = self.tlb[tlb_idx(pn)];
            if e.pn == pn {
                self.stats.tlb_hits += 1;
                return e.slot;
            }
            self.stats.tlb_misses += 1;
        }
        self.materialize_slot(pn)
    }

    fn materialize_slot(&mut self, pn: u64) -> u32 {
        if let Some(&slot) = self.page_index.get(&pn) {
            let prot = self.slots[slot as usize].as_ref().expect("live slot").prot;
            self.tlb_fill(pn, slot, prot);
            return slot;
        }
        let prot = self
            .vma_of(pn * PAGE_SIZE)
            .map(|v| v.prot)
            .unwrap_or(Prot::NONE);
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(Page::zeroed(prot));
                s
            }
            None => {
                self.slots.push(Some(Page::zeroed(prot)));
                (self.slots.len() - 1) as u32
            }
        };
        self.page_index.insert(pn, slot);
        self.stats.pages_materialized += 1;
        self.tlb_fill(pn, slot, prot);
        slot
    }

    fn remove_page(&mut self, pn: u64) {
        if let Some(slot) = self.page_index.remove(&pn) {
            self.slots[slot as usize] = None;
            self.free_slots.push(slot);
        }
        self.tlb_evict(pn);
        self.dirty_pages.remove(&pn);
    }

    #[inline]
    fn page_ref(&self, pn: u64) -> Option<&Page> {
        self.page_index
            .get(&pn)
            .map(|&slot| self.slots[slot as usize].as_ref().expect("live slot"))
    }

    // ------------------------------------------------------------------
    // Layout operations.
    // ------------------------------------------------------------------

    /// The VMAs, in address order.
    pub fn vmas(&self) -> &[Vma] {
        &self.vmas
    }

    /// Current program break (heap end).
    pub fn brk(&self) -> u64 {
        self.brk
    }

    /// Grow/shrink the heap; returns the new break. Mirrors `sbrk`.
    pub fn sbrk(&mut self, delta: i64) -> Result<u64, ()> {
        let new = if delta >= 0 {
            self.brk.checked_add(delta as u64).ok_or(())?
        } else {
            self.brk.checked_sub((-delta) as u64).ok_or(())?
        };
        self.set_brk(new)
    }

    /// Set the program break. Mirrors `brk`.
    pub fn set_brk(&mut self, new: u64) -> Result<u64, ()> {
        if new < self.heap_base || new > MMAP_BASE {
            return Err(());
        }
        let new_end = round_up(new, PAGE_SIZE);
        let heap = self
            .vmas
            .iter_mut()
            .find(|v| v.kind == VmaKind::Heap)
            .expect("heap vma");
        let old_end = heap.end;
        heap.end = new_end.max(heap.start);
        self.brk = new;
        // Release pages beyond a shrunken heap (a TLB invalidation event).
        if new_end < old_end {
            let first_gone = new_end / PAGE_SIZE;
            let last = old_end / PAGE_SIZE;
            for pn in first_gone..last {
                self.remove_page(pn);
            }
            self.stats.tlb_flushes += 1;
        }
        Ok(self.brk)
    }

    /// Map a fresh anonymous region (mirrors `mmap(MAP_ANONYMOUS)`).
    pub fn mmap(&mut self, len: u64, prot: Prot, name: &str) -> Result<u64, ()> {
        if len == 0 {
            return Err(());
        }
        let len = round_up(len, PAGE_SIZE);
        let start = self.mmap_cursor;
        let end = start.checked_add(len).ok_or(())?;
        if end > STACK_TOP - STACK_PAGES * PAGE_SIZE {
            return Err(());
        }
        self.mmap_cursor = end;
        self.vmas.push(Vma {
            start,
            end,
            prot,
            kind: VmaKind::Mmap,
            name: name.to_string(),
        });
        self.vmas.sort_by_key(|v| v.start);
        Ok(start)
    }

    /// Insert a VMA at an explicit address — used only when *restoring* a
    /// checkpoint image, where regions must reappear exactly where they
    /// were. Keeps the mmap cursor beyond the restored region.
    pub fn push_vma_raw(&mut self, vma: Vma) {
        if vma.kind == VmaKind::Mmap {
            self.mmap_cursor = self.mmap_cursor.max(vma.end);
        }
        if vma.kind == VmaKind::Heap {
            self.brk = self.brk.max(vma.end);
        }
        self.vmas.retain(|v| !(v.start == vma.start && v.kind == vma.kind));
        self.vmas.push(vma);
        self.vmas.sort_by_key(|v| v.start);
        self.tlb_flush();
    }

    /// Force the program break to an exact restored value.
    pub fn restore_brk(&mut self, brk: u64) {
        self.brk = brk;
        let new_end = round_up(brk, PAGE_SIZE);
        if let Some(heap) = self.vmas.iter_mut().find(|v| v.kind == VmaKind::Heap) {
            heap.end = new_end.max(heap.start);
        }
        self.tlb_flush();
    }

    /// Unmap a previously mmapped region. Only whole-VMA unmaps are
    /// supported (sufficient for the guests we run).
    pub fn munmap(&mut self, addr: u64) -> Result<(), ()> {
        let idx = self
            .vmas
            .iter()
            .position(|v| v.start == addr && v.kind == VmaKind::Mmap)
            .ok_or(())?;
        let vma = self.vmas.remove(idx);
        for pn in vma.pages() {
            self.remove_page(pn);
        }
        self.stats.tlb_flushes += 1;
        Ok(())
    }

    /// Change protection on `[addr, addr+len)`. Affects both the VMA's
    /// nominal protection and any materialized pages. Returns the number of
    /// pages affected (for cost accounting).
    pub fn mprotect(&mut self, addr: u64, len: u64, prot: Prot) -> Result<u64, ()> {
        if !addr.is_multiple_of(PAGE_SIZE) || len == 0 {
            return Err(());
        }
        let end = round_up(addr + len, PAGE_SIZE);
        // Must lie within mapped VMAs.
        if !self.range_mapped(addr, end) {
            return Err(());
        }
        let mut count = 0;
        for pn in (addr / PAGE_SIZE)..(end / PAGE_SIZE) {
            if let Some(&slot) = self.page_index.get(&pn) {
                self.slots[slot as usize].as_mut().expect("live slot").prot = prot;
            }
            count += 1;
        }
        // Protection changed under cached translations: flush (the paper's
        // mprotect invalidation event).
        self.tlb_flush();
        // Note: we deliberately do not split VMAs; nominal VMA protection is
        // left untouched and effective protection lives on the pages. The
        // checkpointers that arm tracking always operate page-wise.
        Ok(count)
    }

    fn range_mapped(&self, start: u64, end: u64) -> bool {
        let mut cursor = start;
        while cursor < end {
            match self.vma_of(cursor) {
                Some(v) => cursor = v.end,
                None => return false,
            }
        }
        true
    }

    /// The VMA covering `addr`, if any.
    pub fn vma_of(&self, addr: u64) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.contains(addr))
    }

    /// Check whether a write of `len` bytes at `addr` would succeed, without
    /// performing it.
    pub fn check_write(&mut self, addr: u64, len: u64) -> AccessOutcome {
        self.check(addr, len, true)
    }

    /// Check whether a read of `len` bytes at `addr` would succeed.
    pub fn check_read(&mut self, addr: u64, len: u64) -> AccessOutcome {
        self.check(addr, len, false)
    }

    fn check(&mut self, addr: u64, len: u64, write: bool) -> AccessOutcome {
        if len == 0 {
            return AccessOutcome::Ok;
        }
        let first = addr / PAGE_SIZE;
        let last = (addr + len - 1) / PAGE_SIZE;
        for pn in first..=last {
            let prot = if self.tlb_enabled {
                let e = self.tlb[tlb_idx(pn)];
                if e.pn == pn {
                    self.stats.tlb_hits += 1;
                    Some(e.prot)
                } else {
                    self.stats.tlb_misses += 1;
                    self.resolve_prot_slow(pn)
                }
            } else {
                self.resolve_prot_slow(pn)
            };
            match prot {
                None => {
                    return AccessOutcome::Fault {
                        addr: pn * PAGE_SIZE,
                        kind: FaultKind::NotMapped,
                    }
                }
                Some(p) => {
                    if write && !p.writable() {
                        return AccessOutcome::Fault {
                            addr: pn * PAGE_SIZE,
                            kind: FaultKind::WriteProtected,
                        };
                    }
                    if !write && !p.readable() {
                        return AccessOutcome::Fault {
                            addr: pn * PAGE_SIZE,
                            kind: FaultKind::ReadProtected,
                        };
                    }
                }
            }
        }
        AccessOutcome::Ok
    }

    /// Write bytes, assuming protection has already been checked/handled by
    /// the kernel. Records dirty info according to the current track mode.
    pub fn write_unchecked(&mut self, addr: u64, bytes: &[u8]) {
        self.stats.bytes_written += bytes.len() as u64;
        if self.track == TrackMode::HardwareLine {
            let first = addr / CACHE_LINE;
            let last = (addr + bytes.len().max(1) as u64 - 1) / CACHE_LINE;
            for line in first..=last {
                self.dirty_lines.insert(line);
            }
        }
        let mut off = 0usize;
        let mut cur = addr;
        while off < bytes.len() {
            let pn = cur / PAGE_SIZE;
            let in_page = (cur % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - in_page).min(bytes.len() - off);
            let slot = self.slot_for_write(pn);
            let page = self.slots[slot as usize].as_mut().expect("live slot");
            page.data[in_page..in_page + n].copy_from_slice(&bytes[off..off + n]);
            off += n;
            cur += n as u64;
        }
    }

    /// Read bytes, assuming protection has been checked.
    pub fn read_unchecked(&mut self, addr: u64, out: &mut [u8]) {
        self.stats.bytes_read += out.len() as u64;
        let mut off = 0usize;
        let mut cur = addr;
        while off < out.len() {
            let pn = cur / PAGE_SIZE;
            let in_page = (cur % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - in_page).min(out.len() - off);
            let slot = if self.tlb_enabled {
                let e = self.tlb[tlb_idx(pn)];
                if e.pn == pn {
                    self.stats.tlb_hits += 1;
                    Some(e.slot)
                } else {
                    self.stats.tlb_misses += 1;
                    self.page_index.get(&pn).copied().inspect(|&slot| {
                        let prot =
                            self.slots[slot as usize].as_ref().expect("live slot").prot;
                        self.tlb[tlb_idx(pn)] = TlbEntry { pn, slot, prot };
                    })
                }
            } else {
                self.page_index.get(&pn).copied()
            };
            match slot {
                Some(slot) => {
                    let p = self.slots[slot as usize].as_ref().expect("live slot");
                    out[off..off + n].copy_from_slice(&p.data[in_page..in_page + n]);
                }
                None => out[off..off + n].fill(0),
            }
            off += n;
            cur += n as u64;
        }
    }

    /// Read without touching stats — used by checkpointers walking memory
    /// from kernel context (they charge copy costs separately).
    pub fn peek(&self, addr: u64, out: &mut [u8]) {
        let mut off = 0usize;
        let mut cur = addr;
        while off < out.len() {
            let pn = cur / PAGE_SIZE;
            let in_page = (cur % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - in_page).min(out.len() - off);
            match self.page_ref(pn) {
                Some(p) => out[off..off + n].copy_from_slice(&p.data[in_page..in_page + n]),
                None => out[off..off + n].fill(0),
            }
            off += n;
            cur += n as u64;
        }
    }

    /// Write without protection interaction — used when *restoring* a
    /// checkpoint image into a fresh address space.
    pub fn poke(&mut self, addr: u64, bytes: &[u8]) {
        let mut off = 0usize;
        let mut cur = addr;
        while off < bytes.len() {
            let pn = cur / PAGE_SIZE;
            let in_page = (cur % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - in_page).min(bytes.len() - off);
            let slot = self.slot_for_write(pn);
            let page = self.slots[slot as usize].as_mut().expect("live slot");
            page.data[in_page..in_page + n].copy_from_slice(&bytes[off..off + n]);
            off += n;
            cur += n as u64;
        }
    }

    /// Page numbers of all materialized (resident) pages, in order.
    pub fn resident_pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.page_index.keys().copied()
    }

    /// Number of resident pages.
    pub fn resident_count(&self) -> usize {
        self.page_index.len()
    }

    /// Raw page contents (for checkpointers). `None` if not materialized.
    pub fn page_data(&self, pn: u64) -> Option<&[u8]> {
        self.page_ref(pn).map(|p| &*p.data)
    }

    /// Effective protection of a materialized page.
    pub fn page_prot(&self, pn: u64) -> Option<Prot> {
        self.page_ref(pn).map(|p| p.prot)
    }

    /// Arm write tracking: write-protect every resident writable page (for
    /// the page-granularity modes) or clear the line log (hardware mode).
    /// Returns the number of pages protected (for mprotect cost accounting).
    pub fn arm_tracking(&mut self, mode: TrackMode) -> u64 {
        self.track = mode;
        self.dirty_pages.clear();
        self.dirty_lines.clear();
        match mode {
            TrackMode::Off | TrackMode::HardwareLine => 0,
            TrackMode::KernelPage | TrackMode::UserSigsegv => {
                let mut n = 0;
                for &slot in self.page_index.values() {
                    let page = self.slots[slot as usize].as_mut().expect("live slot");
                    if page.prot.writable() {
                        page.prot = page.prot.without_write();
                        n += 1;
                    }
                }
                // Cached protections went stale wholesale: the mprotect
                // re-arm is one of the paper's flush events.
                self.tlb_flush();
                n
            }
        }
    }

    /// Observe the current dirty set without disturbing it: live
    /// migration's per-round dirty-rate sampler. Returns the dirty-page
    /// count and folds it into [`MemStats::dirty_samples`] /
    /// [`MemStats::dirty_pages_sampled`].
    pub fn sample_dirty(&mut self) -> u64 {
        let n = self.dirty_pages.len() as u64;
        self.stats.dirty_samples += 1;
        self.stats.dirty_pages_sampled += n;
        n
    }

    /// Handle a tracked write fault on `pn`: record it dirty and restore
    /// write permission. Returns `true` if this was indeed a tracked page.
    pub fn resolve_tracked_fault(&mut self, pn: u64) -> bool {
        let nominal_writable = self
            .vma_of(pn * PAGE_SIZE)
            .map(|v| v.prot.writable())
            .unwrap_or(false);
        if !nominal_writable {
            return false;
        }
        let slot = self.materialize_slot(pn);
        let page = self.slots[slot as usize].as_mut().expect("live slot");
        if page.prot.writable() {
            // Already writable: not a tracking fault.
            return false;
        }
        page.prot = page.prot.union(Prot::W);
        // Single-page invalidation: the handler's per-page mprotect.
        self.tlb_evict(pn);
        self.dirty_pages.insert(pn);
        self.stats.write_faults_tracked += 1;
        true
    }

    /// A fresh-page write to an unmaterialized tracked page also counts as a
    /// dirtying event (zero pages are materialized on demand).
    pub fn note_fresh_dirty(&mut self, pn: u64) {
        if matches!(self.track, TrackMode::KernelPage | TrackMode::UserSigsegv) {
            self.dirty_pages.insert(pn);
        }
    }

    /// Disarm tracking and restore nominal protections.
    pub fn disarm_tracking(&mut self) -> u64 {
        self.track = TrackMode::Off;
        let vmas = self.vmas.clone();
        let mut n = 0;
        for (&pn, &slot) in self.page_index.iter() {
            let page = self.slots[slot as usize].as_mut().expect("live slot");
            if let Some(v) = vmas.iter().find(|v| v.contains(pn * PAGE_SIZE)) {
                if page.prot != v.prot {
                    page.prot = v.prot;
                    n += 1;
                }
            }
        }
        self.tlb_flush();
        n
    }

    /// Total bytes resident.
    pub fn resident_bytes(&self) -> u64 {
        self.page_index.len() as u64 * PAGE_SIZE
    }

    /// Render a `/proc/<pid>/maps`-style listing.
    pub fn maps_listing(&self) -> String {
        let mut s = String::new();
        for v in &self.vmas {
            s.push_str(&format!(
                "{:012x}-{:012x} {} {:?} {}\n",
                v.start, v.end, v.prot, v.kind, v.name
            ));
        }
        s
    }
}

/// Round `x` up to a multiple of `to` (power of two not required).
pub fn round_up(x: u64, to: u64) -> u64 {
    x.div_ceil(to) * to
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(8 * PAGE_SIZE, 16 * PAGE_SIZE)
    }

    #[test]
    fn layout_has_four_canonical_vmas() {
        let a = space();
        let kinds: Vec<_> = a.vmas().iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&VmaKind::Text));
        assert!(kinds.contains(&VmaKind::Data));
        assert!(kinds.contains(&VmaKind::Heap));
        assert!(kinds.contains(&VmaKind::Stack));
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut a = space();
        let addr = DATA_BASE + 100;
        a.write_unchecked(addr, b"hello world");
        let mut buf = [0u8; 11];
        a.read_unchecked(addr, &mut buf);
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn cross_page_write_round_trips() {
        let mut a = space();
        let addr = DATA_BASE + PAGE_SIZE - 3;
        let payload: Vec<u8> = (0..10u8).collect();
        a.write_unchecked(addr, &payload);
        let mut buf = [0u8; 10];
        a.read_unchecked(addr, &mut buf);
        assert_eq!(buf.to_vec(), payload);
        assert_eq!(a.resident_count(), 2);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut a = space();
        match a.check_write(0xdead_0000_0000, 4) {
            AccessOutcome::Fault { kind, .. } => assert_eq!(kind, FaultKind::NotMapped),
            AccessOutcome::Ok => panic!("expected fault"),
        }
    }

    #[test]
    fn text_is_not_writable() {
        let mut a = space();
        match a.check_write(TEXT_BASE, 4) {
            AccessOutcome::Fault { kind, .. } => assert_eq!(kind, FaultKind::WriteProtected),
            AccessOutcome::Ok => panic!("expected fault"),
        }
        assert_eq!(a.check_read(TEXT_BASE, 4), AccessOutcome::Ok);
    }

    #[test]
    fn sbrk_grows_and_shrinks_heap() {
        let mut a = space();
        let b0 = a.brk();
        let b1 = a.sbrk(3 * PAGE_SIZE as i64).unwrap();
        assert_eq!(b1, b0 + 3 * PAGE_SIZE);
        a.write_unchecked(b0, &[1, 2, 3]);
        assert!(a.resident_count() >= 1);
        let b2 = a.sbrk(-(3 * PAGE_SIZE as i64)).unwrap();
        assert_eq!(b2, b0);
        // Heap page released.
        assert_eq!(a.page_data(b0 / PAGE_SIZE), None);
    }

    #[test]
    fn sbrk_below_base_fails() {
        let mut a = space();
        assert!(a.sbrk(-(PAGE_SIZE as i64)).is_err());
    }

    #[test]
    fn mmap_and_munmap() {
        let mut a = space();
        let addr = a.mmap(5 * PAGE_SIZE, Prot::RW, "anon").unwrap();
        assert!(addr >= MMAP_BASE);
        a.write_unchecked(addr, &[9; 64]);
        assert_eq!(a.check_write(addr, 64), AccessOutcome::Ok);
        a.munmap(addr).unwrap();
        assert!(matches!(
            a.check_write(addr, 1),
            AccessOutcome::Fault {
                kind: FaultKind::NotMapped,
                ..
            }
        ));
    }

    #[test]
    fn munmap_unknown_region_fails() {
        let mut a = space();
        assert!(a.munmap(0x7777_0000).is_err());
    }

    #[test]
    fn arm_tracking_write_protects_resident_pages() {
        let mut a = space();
        a.write_unchecked(DATA_BASE, &[1; 100]);
        let protected = a.arm_tracking(TrackMode::KernelPage);
        assert_eq!(protected, 1);
        match a.check_write(DATA_BASE, 1) {
            AccessOutcome::Fault { kind, .. } => assert_eq!(kind, FaultKind::WriteProtected),
            AccessOutcome::Ok => panic!("tracking did not protect"),
        }
        // Resolving the fault dirties the page and restores write access.
        assert!(a.resolve_tracked_fault(DATA_BASE / PAGE_SIZE));
        assert_eq!(a.check_write(DATA_BASE, 1), AccessOutcome::Ok);
        assert!(a.dirty_pages.contains(&(DATA_BASE / PAGE_SIZE)));
    }

    #[test]
    fn resolve_fault_on_truly_readonly_page_is_rejected() {
        let mut a = space();
        a.arm_tracking(TrackMode::KernelPage);
        // Text pages are not nominally writable: a write there is a real
        // protection violation, not a tracking fault.
        assert!(!a.resolve_tracked_fault(TEXT_BASE / PAGE_SIZE));
    }

    #[test]
    fn disarm_restores_nominal_protection() {
        let mut a = space();
        a.write_unchecked(DATA_BASE, &[1; 8]);
        a.arm_tracking(TrackMode::KernelPage);
        a.disarm_tracking();
        assert_eq!(a.check_write(DATA_BASE, 1), AccessOutcome::Ok);
        assert_eq!(a.track, TrackMode::Off);
    }

    #[test]
    fn hardware_mode_logs_cache_lines() {
        let mut a = space();
        a.arm_tracking(TrackMode::HardwareLine);
        a.write_unchecked(DATA_BASE, &[1; 1]);
        a.write_unchecked(DATA_BASE + 200, &[1; 1]);
        assert_eq!(a.dirty_lines.len(), 2);
        // Same line twice → still one entry.
        a.write_unchecked(DATA_BASE + 1, &[2; 1]);
        assert_eq!(a.dirty_lines.len(), 2);
    }

    #[test]
    fn mprotect_counts_pages_and_applies() {
        let mut a = space();
        a.write_unchecked(DATA_BASE, &[1; (2 * PAGE_SIZE) as usize]);
        let n = a
            .mprotect(DATA_BASE, 2 * PAGE_SIZE, Prot::R)
            .expect("mprotect");
        assert_eq!(n, 2);
        assert!(matches!(
            a.check_write(DATA_BASE, 1),
            AccessOutcome::Fault { .. }
        ));
        a.mprotect(DATA_BASE, 2 * PAGE_SIZE, Prot::RW).unwrap();
        assert_eq!(a.check_write(DATA_BASE, 1), AccessOutcome::Ok);
    }

    #[test]
    fn mprotect_rejects_unmapped_and_unaligned() {
        let mut a = space();
        assert!(a.mprotect(DATA_BASE + 1, 10, Prot::R).is_err());
        assert!(a.mprotect(0xdd00_0000_0000, PAGE_SIZE, Prot::R).is_err());
    }

    #[test]
    fn maps_listing_mentions_all_vmas() {
        let a = space();
        let listing = a.maps_listing();
        assert!(listing.contains("[text]"));
        assert!(listing.contains("[heap]"));
        assert!(listing.contains("[stack]"));
    }

    #[test]
    fn peek_poke_do_not_affect_stats() {
        let mut a = space();
        a.poke(DATA_BASE, &[7; 32]);
        let mut buf = [0u8; 32];
        a.peek(DATA_BASE, &mut buf);
        assert_eq!(buf, [7; 32]);
        assert_eq!(a.stats.bytes_written, 0);
        assert_eq!(a.stats.bytes_read, 0);
    }

    #[test]
    fn round_up_works() {
        assert_eq!(round_up(0, 4096), 0);
        assert_eq!(round_up(1, 4096), 4096);
        assert_eq!(round_up(4096, 4096), 4096);
        assert_eq!(round_up(4097, 4096), 8192);
    }

    // --- software-TLB behavior ---

    #[test]
    fn repeated_access_hits_the_tlb() {
        let mut a = space();
        a.write_unchecked(DATA_BASE, &[1; 8]);
        let miss0 = a.stats.tlb_misses;
        let hit0 = a.stats.tlb_hits;
        for i in 0..100u64 {
            a.write_unchecked(DATA_BASE + i * 8, &[2; 8]);
        }
        assert_eq!(a.stats.tlb_misses, miss0, "same page must not re-miss");
        assert_eq!(a.stats.tlb_hits, hit0 + 100);
    }

    #[test]
    fn checked_write_resolves_protection_once_per_page() {
        let mut a = space();
        a.write_unchecked(DATA_BASE, &[1; 8]); // materialize + fill
        let miss0 = a.stats.tlb_misses;
        // check + data access both hit the cached translation.
        assert_eq!(a.check_write(DATA_BASE + 64, 8), AccessOutcome::Ok);
        a.write_unchecked(DATA_BASE + 64, &[3; 8]);
        assert_eq!(a.stats.tlb_misses, miss0);
    }

    #[test]
    fn mprotect_flushes_tlb() {
        let mut a = space();
        a.write_unchecked(DATA_BASE, &[1; 8]);
        let f0 = a.stats.tlb_flushes;
        a.mprotect(DATA_BASE, PAGE_SIZE, Prot::R).unwrap();
        assert_eq!(a.stats.tlb_flushes, f0 + 1);
        // Stale writable translation must not survive the flush.
        assert!(matches!(
            a.check_write(DATA_BASE, 1),
            AccessOutcome::Fault {
                kind: FaultKind::WriteProtected,
                ..
            }
        ));
    }

    #[test]
    fn arm_and_disarm_flush_tlb() {
        let mut a = space();
        a.write_unchecked(DATA_BASE, &[1; 8]);
        let f0 = a.stats.tlb_flushes;
        a.arm_tracking(TrackMode::KernelPage);
        assert_eq!(a.stats.tlb_flushes, f0 + 1);
        a.disarm_tracking();
        assert_eq!(a.stats.tlb_flushes, f0 + 2);
    }

    #[test]
    fn slot_reuse_does_not_leak_stale_translations() {
        let mut a = space();
        let addr = a.mmap(2 * PAGE_SIZE, Prot::RW, "anon").unwrap();
        a.write_unchecked(addr, &[0xAA; 16]);
        a.munmap(addr).unwrap();
        // The freed slot is reused by a different page; the old page's
        // translation must be gone.
        a.write_unchecked(DATA_BASE, &[0xBB; 16]);
        let mut buf = [0u8; 16];
        a.peek(DATA_BASE, &mut buf);
        assert_eq!(buf, [0xBB; 16]);
        assert!(matches!(
            a.check_write(addr, 1),
            AccessOutcome::Fault {
                kind: FaultKind::NotMapped,
                ..
            }
        ));
    }

    #[test]
    fn disabled_tlb_is_observationally_identical_smoke() {
        let run = |enabled: bool| {
            let mut a = space();
            a.set_tlb_enabled(enabled);
            a.write_unchecked(DATA_BASE, &[5; 300]);
            a.arm_tracking(TrackMode::KernelPage);
            let _ = a.check_write(DATA_BASE, 8);
            a.resolve_tracked_fault(DATA_BASE / PAGE_SIZE);
            a.write_unchecked(DATA_BASE + 8, &[6; 8]);
            let mut buf = [0u8; 16];
            a.read_unchecked(DATA_BASE, &mut buf);
            let mut st = a.stats.clone();
            st.tlb_hits = 0;
            st.tlb_misses = 0;
            st.tlb_flushes = 0;
            (buf, a.dirty_pages.clone(), st)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn tlb_aliasing_pages_evict_each_other_correctly() {
        let mut a = space();
        // Two pages that collide in the direct-mapped TLB (same index).
        let p1 = DATA_BASE;
        let p2 = DATA_BASE + (TLB_SIZE as u64) * PAGE_SIZE;
        // p2 is outside the small data VMA; use a big mmap region instead.
        let base = a
            .mmap((2 * TLB_SIZE as u64) * PAGE_SIZE, Prot::RW, "anon")
            .unwrap();
        let q1 = base;
        let q2 = base + (TLB_SIZE as u64) * PAGE_SIZE;
        assert_eq!(tlb_idx(q1 / PAGE_SIZE), tlb_idx(q2 / PAGE_SIZE));
        a.write_unchecked(q1, &[1; 8]);
        a.write_unchecked(q2, &[2; 8]);
        a.write_unchecked(q1, &[3; 8]);
        let mut b = [0u8; 8];
        a.peek(q1, &mut b);
        assert_eq!(b, [3; 8]);
        a.peek(q2, &mut b);
        assert_eq!(b, [2; 8]);
        let _ = (p1, p2);
    }
}
