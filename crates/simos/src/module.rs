//! Loadable kernel modules and user-level agents.
//!
//! Table 1 of the paper has a "kernel module" column: CRAK, UCLiK, CHPOX,
//! ZAP, BLCR, LAM/MPI and PsncR/C are modules, while VMADump, BPROC, EPCKPT,
//! Software Suspend and Checkpoint live in the static part of the kernel.
//! The simulator makes the distinction concrete:
//!
//! * a [`KernelModule`] is loaded/unloaded at run time, may register device
//!   files, `/proc` entries, extension syscalls, kernel threads, and may
//!   claim the default action of new signals;
//! * static-kernel mechanisms use the same trait but are marked
//!   `is_loadable() == false` and are installed at kernel construction —
//!   they cannot be unloaded.
//!
//! A [`UserAgent`] is the *user-space* counterpart: the checkpoint library
//! code that user-level schemes link (or `LD_PRELOAD`) into the
//! application. It runs in process context on the user side of the
//! protection boundary, so everything it learns about the process must be
//! paid for with syscalls.

use crate::kernel::Kernel;
use crate::signal::Sig;
use crate::types::{KtId, Pid, SysResult};
use std::any::Any;

/// Status returned by a kernel-thread body after a burst of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KthreadStatus {
    /// Go back to sleep until woken.
    Sleep,
    /// Stay runnable; call me again.
    Yield,
    /// Terminate the kernel thread.
    Exit,
}

/// A kernel module (or a static-kernel extension).
///
/// All hooks receive `&mut Kernel`; the kernel guarantees the module itself
/// has been temporarily detached from the registry during the call, so
/// re-entrant dispatch to the *same* module is not possible (mirroring
/// non-reentrant module init paths in real kernels).
pub trait KernelModule: Any {
    /// Module name (registry key, also used in `/dev`//`/proc` ownership).
    fn name(&self) -> &str;

    /// Whether this extension can be loaded/unloaded at run time (a
    /// loadable module) or is compiled into the static kernel.
    fn is_loadable(&self) -> bool {
        true
    }

    /// Called when the module is registered.
    fn on_load(&mut self, _k: &mut Kernel) {}

    /// Called when the module is removed.
    fn on_unload(&mut self, _k: &mut Kernel) {}

    /// An extension syscall registered by this module was invoked by `pid`.
    fn ext_syscall(&mut self, _k: &mut Kernel, _pid: Pid, _slot: u32, _args: [u64; 5]) -> SysResult {
        Err(crate::types::Errno::ENOSYS)
    }

    /// `ioctl` on a device file owned by this module.
    fn ioctl(&mut self, _k: &mut Kernel, _pid: Pid, _minor: u32, _req: u64, _arg: u64) -> SysResult {
        Err(crate::types::Errno::ENOTTY)
    }

    /// Read from a `/proc` entry owned by this module.
    fn proc_read(&mut self, _k: &mut Kernel, _pid: Pid, _tag: &str) -> Result<Vec<u8>, crate::types::Errno> {
        Err(crate::types::Errno::ENOSYS)
    }

    /// Write to a `/proc` entry owned by this module.
    fn proc_write(&mut self, _k: &mut Kernel, _pid: Pid, _tag: &str, _data: &[u8]) -> SysResult {
        Err(crate::types::Errno::ENOSYS)
    }

    /// The kernel is about to apply the default action of `sig` to `pid`
    /// and this module has claimed that signal. Return `true` if the module
    /// handled it (e.g. performed a kernel-level checkpoint), `false` to
    /// fall through to the built-in default.
    fn kernel_signal(&mut self, _k: &mut Kernel, _pid: Pid, _sig: Sig) -> bool {
        false
    }

    /// Body of a kernel thread owned by this module. Called when the thread
    /// is scheduled; should perform a bounded burst of work.
    fn kthread_run(&mut self, _k: &mut Kernel, _kt: KtId) -> KthreadStatus {
        KthreadStatus::Sleep
    }

    /// A kernel timer tagged for this module fired.
    fn timer_event(&mut self, _k: &mut Kernel, _tag: u64) {}

    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// User-space checkpoint-library code attached to a process.
pub trait UserAgent: Any {
    /// Registry key.
    fn name(&self) -> &str;

    /// A checkpoint trigger reached the process in user context: either a
    /// signal handler installed by this agent fired, or the application
    /// reached an inserted checkpoint call site. Runs on the user side —
    /// any process state it needs must be gathered through syscalls, and
    /// the agent must charge its own user-mode work.
    fn user_checkpoint(&mut self, k: &mut Kernel, pid: Pid);

    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl KernelModule for Dummy {
        fn name(&self) -> &str {
            "dummy"
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn default_hooks_refuse_politely() {
        let mut d = Dummy;
        // We cannot build a Kernel in this module without a cycle, so only
        // check the pure defaults here; dispatch is tested in kernel.rs.
        assert!(d.is_loadable());
        assert_eq!(d.name(), "dummy");
        assert!(d.as_any().downcast_ref::<Dummy>().is_some());
        assert!(d.as_any_mut().downcast_mut::<Dummy>().is_some());
    }
}
