//! # ckpt-trace — structured events and metrics for the whole stack
//!
//! The paper's comparative claims are *cost-attribution* arguments:
//! user/kernel crossings, TLB flushes, signal-delivery deferral, storage
//! bandwidth. This module makes those costs observable as they accrue
//! instead of only as end-to-end totals. Every hot path in the kernel, the
//! checkpoint mechanisms, the storage backends, and the cluster layer
//! emits events into a [`TraceHandle`]; collectors aggregate them into
//! per-phase histograms and counters on the fly.
//!
//! ## Cost model
//!
//! Events carry the **monotonic virtual time** at which they occurred and
//! a **cost delta** in virtual nanoseconds. Emitting an event never
//! charges virtual time itself — tracing is a pure observer, so enabling
//! it cannot perturb an experiment.
//!
//! ## The no-op sink
//!
//! A handle created with [`TraceHandle::disabled`] (the default on every
//! kernel) rejects events on a single relaxed atomic load before any
//! argument is materialized, so instrumented hot paths cost one predicted
//! branch when tracing is off. Handles are cheaply cloneable and shareable
//! across kernels, storage backends, and cluster layers — one recording
//! handle can observe a whole cluster.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Checkpoint lifecycle phases, in canonical order. Every mechanism family
/// emits the mandatory subsequence freeze → capture → store → resume; the
/// remaining phases appear where the mechanism actually does that work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Initiation accepted but the mechanism is waiting (signal delivery,
    /// kthread queue, concurrent child still saving).
    Pending,
    /// The target is stopped / quiesced.
    Freeze,
    /// Dirty-state collection (tracker walk or hash scan).
    Walk,
    /// Walking process state into an image.
    Capture,
    /// Image encoding / page compression.
    Compress,
    /// Pushing encoded bytes to stable storage.
    Store,
    /// Garbage-collecting superseded images.
    Prune,
    /// Re-arming dirty tracking for the next interval.
    Rearm,
    /// The target runs again.
    Resume,
    /// Restart: loading + rebuilding a process from an image.
    Restore,
    /// Residual mechanism time not attributable to a specific phase
    /// (e.g. time the parent overlaps a concurrent save).
    Other,
}

impl Phase {
    pub fn label(self) -> &'static str {
        match self {
            Phase::Pending => "pending",
            Phase::Freeze => "freeze",
            Phase::Walk => "walk",
            Phase::Capture => "capture",
            Phase::Compress => "compress",
            Phase::Store => "store",
            Phase::Prune => "prune",
            Phase::Rearm => "rearm",
            Phase::Resume => "resume",
            Phase::Restore => "restore",
            Phase::Other => "other",
        }
    }
}

/// Kernel hot-path events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelEvent {
    SyscallEntry,
    SyscallExit,
    ContextSwitch,
    MmSwitch,
    TlbFlush,
    PageFault,
    CowFault,
    SignalDelivered,
    Freeze,
    Thaw,
    Fork,
}

impl KernelEvent {
    pub fn label(self) -> &'static str {
        match self {
            KernelEvent::SyscallEntry => "syscall-entry",
            KernelEvent::SyscallExit => "syscall-exit",
            KernelEvent::ContextSwitch => "context-switch",
            KernelEvent::MmSwitch => "mm-switch",
            KernelEvent::TlbFlush => "tlb-flush",
            KernelEvent::PageFault => "page-fault",
            KernelEvent::CowFault => "cow-fault",
            KernelEvent::SignalDelivered => "signal-delivered",
            KernelEvent::Freeze => "freeze",
            KernelEvent::Thaw => "thaw",
            KernelEvent::Fork => "fork",
        }
    }
}

/// Where a *software*-TLB flush happened — the host-side translation cache
/// in `simos::mem` invalidates at exactly the paper's TLB-flush events, and
/// this enum names those sites so `report trace` can show the coincidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TlbFlushSite {
    /// Address-space switch (the kernel-thread attach / scheduler switch
    /// the paper charges `tlb_flush_ns + tlb_refill_ns` for).
    MmSwitch,
    /// `mprotect`-based (re-)arming of write tracking.
    MprotectRearm,
    /// Checkpoint restore rebuilding an address space.
    Restore,
}

impl TlbFlushSite {
    pub fn label(self) -> &'static str {
        match self {
            TlbFlushSite::MmSwitch => "mm-switch",
            TlbFlushSite::MprotectRearm => "mprotect-rearm",
            TlbFlushSite::Restore => "restore",
        }
    }
}

/// Storage backend operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StorageOp {
    Store,
    Load,
    Delete,
}

impl StorageOp {
    pub fn label(self) -> &'static str {
        match self {
            StorageOp::Store => "store",
            StorageOp::Load => "load",
            StorageOp::Delete => "delete",
        }
    }
}

/// Cluster-level events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEvent {
    /// A coordinated checkpoint round completed: (ranks, total bytes,
    /// round latency).
    CoordRound { ranks: u32, bytes: u64, round_ns: u64 },
    /// A node fail-stopped.
    FailureInjected { node: u32 },
    /// A failed node rejoined.
    NodeRepaired { node: u32 },
    /// A process moved between nodes: (from, to, bytes moved).
    Migration { from: u32, to: u32, bytes: u64 },
    /// One iterative pre-copy round completed: pages found dirty this
    /// round, bytes shipped, and the sampled dirty rate (pages/ms of guest
    /// run time) the cutover policy saw when deciding to keep iterating.
    MigrationRound {
        round: u32,
        dirty_pages: u64,
        bytes: u64,
        dirty_rate_ppms: u64,
    },
}

/// One recorded phase event (the ordered log the tests assert on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRecord {
    pub at_ns: u64,
    pub mechanism: String,
    pub phase: Phase,
    pub pid: u32,
    pub seq: u64,
    pub cost_ns: u64,
}

/// One recorded cluster event.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRecord {
    pub at_ns: u64,
    pub event: ClusterEvent,
}

/// A power-of-two (log2) latency histogram: bucket `i` counts costs in
/// `[2^i, 2^(i+1))` ns, bucket 0 also holding zero-cost events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    pub buckets: [u64; 48],
    pub min_ns: u64,
    pub max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 48],
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl Histogram {
    pub fn record(&mut self, cost_ns: u64) {
        let b = if cost_ns == 0 {
            0
        } else {
            (63 - cost_ns.leading_zeros() as usize).min(47)
        };
        self.buckets[b] += 1;
        self.min_ns = self.min_ns.min(cost_ns);
        self.max_ns = self.max_ns.max(cost_ns);
    }

    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// Aggregated counter: how many events, and the summed cost delta.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    pub count: u64,
    pub cost_ns: u64,
}

/// Per-phase aggregate: counter plus latency histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseAgg {
    pub count: u64,
    pub total_ns: u64,
    pub hist: Histogram,
}

/// Per-backend storage aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageAgg {
    pub ops: u64,
    pub bytes: u64,
    /// Modelled transfer/stall time the operations cost.
    pub stall_ns: u64,
}

/// A snapshot of everything a recording sink has aggregated.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceReport {
    pub kernel: BTreeMap<KernelEvent, Counter>,
    pub phases: BTreeMap<(String, Phase), PhaseAgg>,
    pub phase_log: Vec<PhaseRecord>,
    pub storage: BTreeMap<(StorageOp, String), StorageAgg>,
    pub cluster: Vec<ClusterRecord>,
    pub events_recorded: u64,
    /// Software-TLB flushes by invalidation site. Kept out of `kernel` and
    /// `events_recorded` on purpose: the software TLB is a host-side
    /// accelerator, and adding it must not perturb any pre-existing totals
    /// (the `report all` output is pinned byte-for-byte).
    pub soft_tlb_flushes: BTreeMap<TlbFlushSite, u64>,
    /// Parallel-encode pool activity (tasks run, successful steals, merge
    /// stalls) attributed to traced checkpoints. Host-side concurrency
    /// observability, excluded from `events_recorded` for the same reason
    /// as `soft_tlb_flushes`.
    pub par_encode: ParEncodeAgg,
    /// Quorum-replication protocol activity (commits, transient retries,
    /// read-repairs, quorum losses). Excluded from `events_recorded` for
    /// the same reason as `soft_tlb_flushes`: the replicated backend must
    /// not perturb any pre-existing pinned totals.
    pub replication: ReplicationAgg,
    /// Erasure-coding activity (shard encodes, reconstructing decodes,
    /// shard repairs, typed shard-loss refusals). Excluded from
    /// `events_recorded` for the same reason as `replication`.
    pub erasure: ErasureAgg,
}

/// Aggregated quorum-replication counters for the replicated store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationAgg {
    /// Writes that reached write-quorum and committed.
    pub commits: u64,
    /// Per-replica transient faults absorbed by backoff-retry.
    pub retries: u64,
    /// Stale/torn/missing replica frames rewritten during quorum reads.
    pub repairs: u64,
    /// Operations refused with a typed `QuorumLost` error.
    pub quorum_losses: u64,
}

/// Aggregated Reed-Solomon counters for the erasure-coded store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ErasureAgg {
    /// Objects split into k data + m parity shards and committed.
    pub encodes: u64,
    /// Reads that needed a matrix-inversion decode (≥ 1 data shard was
    /// lost or torn; a read with all k data shards intact concatenates).
    pub decodes: u64,
    /// Lost/torn shards rebuilt in place during reads (read-repair).
    pub shard_repairs: u64,
    /// Reads refused with a typed `TooManyShardsLost` error.
    pub shard_losses: u64,
}

/// Aggregated worker-pool counters for parallel page encoding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParEncodeAgg {
    /// Pages/items encoded on the pool (serial path included).
    pub tasks: u64,
    /// Successful work-steal operations between pool workers.
    pub steals: u64,
    /// Results completed out of submission order and parked by the
    /// ordered merge.
    pub merge_stalls: u64,
}

impl TraceReport {
    /// Summed cost of one phase for one mechanism.
    pub fn phase_cost(&self, mechanism: &str, phase: Phase) -> u64 {
        self.phases
            .get(&(mechanism.to_string(), phase))
            .map(|a| a.total_ns)
            .unwrap_or(0)
    }

    /// Summed cost across all phases of one mechanism.
    pub fn mechanism_total(&self, mechanism: &str) -> u64 {
        self.phases
            .iter()
            .filter(|((m, _), _)| m == mechanism)
            .map(|(_, a)| a.total_ns)
            .sum()
    }

    /// Every mechanism that emitted at least one phase event, sorted.
    pub fn mechanisms(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .phases
            .keys()
            .map(|(m, _)| m.clone())
            .collect();
        out.dedup();
        out
    }

    /// The ordered phase sequence one mechanism emitted (for order
    /// assertions).
    pub fn phase_sequence(&self, mechanism: &str) -> Vec<Phase> {
        self.phase_log
            .iter()
            .filter(|r| r.mechanism == mechanism)
            .map(|r| r.phase)
            .collect()
    }
}

#[derive(Default)]
struct Collector {
    report: TraceReport,
}

struct SinkInner {
    enabled: AtomicBool,
    data: Mutex<Collector>,
}

/// A cloneable handle to a trace sink. The default handle is the no-op
/// sink: every emit path bails on one relaxed atomic load.
#[derive(Clone)]
pub struct TraceHandle(Arc<SinkInner>);

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for TraceHandle {
    fn default() -> Self {
        TraceHandle::disabled()
    }
}

impl TraceHandle {
    /// The no-op sink: records nothing, costs one atomic load per event.
    pub fn disabled() -> Self {
        TraceHandle(Arc::new(SinkInner {
            enabled: AtomicBool::new(false),
            data: Mutex::new(Collector::default()),
        }))
    }

    /// A recording sink aggregating into counters, histograms, and the
    /// ordered phase log.
    pub fn recording() -> Self {
        TraceHandle(Arc::new(SinkInner {
            enabled: AtomicBool::new(true),
            data: Mutex::new(Collector::default()),
        }))
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.enabled.load(Ordering::Relaxed)
    }

    /// Emit a kernel hot-path event.
    #[inline]
    pub fn kernel(&self, ev: KernelEvent, at_ns: u64, cost_ns: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut d = self.0.data.lock().unwrap();
        let c = d.report.kernel.entry(ev).or_default();
        c.count += 1;
        c.cost_ns += cost_ns;
        d.report.events_recorded += 1;
        let _ = at_ns;
    }

    /// Emit a checkpoint-lifecycle phase event for one mechanism.
    #[inline]
    pub fn phase(
        &self,
        mechanism: &str,
        phase: Phase,
        pid: u32,
        seq: u64,
        at_ns: u64,
        cost_ns: u64,
    ) {
        if !self.is_enabled() {
            return;
        }
        let mut d = self.0.data.lock().unwrap();
        let agg = d
            .report
            .phases
            .entry((mechanism.to_string(), phase))
            .or_default();
        agg.count += 1;
        agg.total_ns += cost_ns;
        agg.hist.record(cost_ns);
        d.report.phase_log.push(PhaseRecord {
            at_ns,
            mechanism: mechanism.to_string(),
            phase,
            pid,
            seq,
            cost_ns,
        });
        d.report.events_recorded += 1;
    }

    /// Emit a storage backend operation (bytes moved + modelled stall).
    #[inline]
    pub fn storage(&self, op: StorageOp, class: &str, bytes: u64, stall_ns: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut d = self.0.data.lock().unwrap();
        let agg = d
            .report
            .storage
            .entry((op, class.to_string()))
            .or_default();
        agg.ops += 1;
        agg.bytes += bytes;
        agg.stall_ns += stall_ns;
        d.report.events_recorded += 1;
    }

    /// Note a software-TLB flush at one of the paper's invalidation sites.
    /// Does not bump `events_recorded` — see [`TraceReport::soft_tlb_flushes`].
    #[inline]
    pub fn soft_tlb_flush(&self, site: TlbFlushSite) {
        if !self.is_enabled() {
            return;
        }
        let mut d = self.0.data.lock().unwrap();
        *d.report.soft_tlb_flushes.entry(site).or_default() += 1;
    }

    /// Accumulate parallel-encode pool counter deltas (plain integers so
    /// simos stays independent of the pool crate). Does not bump
    /// `events_recorded` — see [`TraceReport::par_encode`].
    #[inline]
    pub fn par_encode(&self, tasks: u64, steals: u64, merge_stalls: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut d = self.0.data.lock().unwrap();
        d.report.par_encode.tasks += tasks;
        d.report.par_encode.steals += steals;
        d.report.par_encode.merge_stalls += merge_stalls;
    }

    /// Accumulate quorum-replication counter deltas (plain integers so
    /// simos stays independent of the replication crate). Does not bump
    /// `events_recorded` — see [`TraceReport::replication`].
    #[inline]
    pub fn replication(&self, commits: u64, retries: u64, repairs: u64, quorum_losses: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut d = self.0.data.lock().unwrap();
        d.report.replication.commits += commits;
        d.report.replication.retries += retries;
        d.report.replication.repairs += repairs;
        d.report.replication.quorum_losses += quorum_losses;
    }

    /// Accumulate erasure-coding counter deltas (plain integers so simos
    /// stays independent of the erasure crate). Does not bump
    /// `events_recorded` — see [`TraceReport::erasure`].
    #[inline]
    pub fn erasure(&self, encodes: u64, decodes: u64, shard_repairs: u64, shard_losses: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut d = self.0.data.lock().unwrap();
        d.report.erasure.encodes += encodes;
        d.report.erasure.decodes += decodes;
        d.report.erasure.shard_repairs += shard_repairs;
        d.report.erasure.shard_losses += shard_losses;
    }

    /// Emit a cluster-level event.
    #[inline]
    pub fn cluster(&self, event: ClusterEvent, at_ns: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut d = self.0.data.lock().unwrap();
        d.report.cluster.push(ClusterRecord { at_ns, event });
        d.report.events_recorded += 1;
    }

    /// Total events this sink has recorded (0 for the no-op sink).
    pub fn events_recorded(&self) -> u64 {
        self.0.data.lock().unwrap().report.events_recorded
    }

    /// Summed phase cost for one mechanism so far (0 when disabled).
    /// Mechanisms use this to emit an exact residual ([`Phase::Other`])
    /// that reconciles their trace total with the outcome's end-to-end
    /// numbers.
    pub fn mechanism_total(&self, mechanism: &str) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        self.0.data.lock().unwrap().report.mechanism_total(mechanism)
    }

    /// Snapshot everything aggregated so far.
    pub fn report(&self) -> TraceReport {
        self.0.data.lock().unwrap().report.clone()
    }

    /// Drop all aggregated data (the sink stays enabled/disabled as-is).
    pub fn clear(&self) {
        *self.0.data.lock().unwrap() = Collector::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let t = TraceHandle::disabled();
        t.kernel(KernelEvent::SyscallEntry, 10, 100);
        t.phase("m", Phase::Freeze, 1, 1, 10, 5);
        t.storage(StorageOp::Store, "disk", 4096, 9);
        t.cluster(ClusterEvent::FailureInjected { node: 0 }, 7);
        assert_eq!(t.events_recorded(), 0);
        assert_eq!(t.report(), TraceReport::default());
    }

    #[test]
    fn recording_sink_aggregates_and_logs_order() {
        let t = TraceHandle::recording();
        t.phase("m", Phase::Freeze, 1, 1, 10, 5);
        t.phase("m", Phase::Capture, 1, 1, 15, 20);
        t.phase("m", Phase::Store, 1, 1, 35, 30);
        t.phase("m", Phase::Resume, 1, 1, 65, 1);
        t.phase("other-mech", Phase::Freeze, 2, 1, 70, 2);
        let r = t.report();
        assert_eq!(
            r.phase_sequence("m"),
            vec![Phase::Freeze, Phase::Capture, Phase::Store, Phase::Resume]
        );
        assert_eq!(r.phase_cost("m", Phase::Store), 30);
        assert_eq!(r.mechanism_total("m"), 56);
        assert_eq!(r.mechanism_total("other-mech"), 2);
        assert_eq!(t.mechanism_total("m"), 56);
    }

    #[test]
    fn kernel_and_storage_counters() {
        let t = TraceHandle::recording();
        t.kernel(KernelEvent::PageFault, 1, 250);
        t.kernel(KernelEvent::PageFault, 2, 250);
        t.storage(StorageOp::Store, "remote", 1 << 20, 4_000_000);
        let r = t.report();
        assert_eq!(r.kernel[&KernelEvent::PageFault].count, 2);
        assert_eq!(r.kernel[&KernelEvent::PageFault].cost_ns, 500);
        let s = r.storage[&(StorageOp::Store, "remote".to_string())];
        assert_eq!(s.bytes, 1 << 20);
        assert_eq!(s.stall_ns, 4_000_000);
    }

    #[test]
    fn soft_tlb_flushes_do_not_disturb_event_totals() {
        let t = TraceHandle::recording();
        t.soft_tlb_flush(TlbFlushSite::MmSwitch);
        t.soft_tlb_flush(TlbFlushSite::MmSwitch);
        t.soft_tlb_flush(TlbFlushSite::Restore);
        let r = t.report();
        assert_eq!(r.soft_tlb_flushes[&TlbFlushSite::MmSwitch], 2);
        assert_eq!(r.soft_tlb_flushes[&TlbFlushSite::Restore], 1);
        // Must not perturb kernel counters or the recorded-event total.
        assert_eq!(r.events_recorded, 0);
        assert!(r.kernel.is_empty());
    }

    #[test]
    fn par_encode_counters_do_not_disturb_event_totals() {
        let t = TraceHandle::recording();
        t.par_encode(128, 3, 2);
        t.par_encode(64, 0, 1);
        let r = t.report();
        assert_eq!(r.par_encode.tasks, 192);
        assert_eq!(r.par_encode.steals, 3);
        assert_eq!(r.par_encode.merge_stalls, 3);
        // Must not perturb kernel counters or the recorded-event total.
        assert_eq!(r.events_recorded, 0);
        assert!(r.kernel.is_empty());
    }

    #[test]
    fn replication_counters_do_not_disturb_event_totals() {
        let t = TraceHandle::recording();
        t.replication(2, 1, 0, 0);
        t.replication(1, 0, 3, 1);
        let r = t.report();
        assert_eq!(r.replication.commits, 3);
        assert_eq!(r.replication.retries, 1);
        assert_eq!(r.replication.repairs, 3);
        assert_eq!(r.replication.quorum_losses, 1);
        // Must not perturb kernel counters or the recorded-event total.
        assert_eq!(r.events_recorded, 0);
        assert!(r.kernel.is_empty());
    }

    #[test]
    fn erasure_counters_do_not_disturb_event_totals() {
        let t = TraceHandle::recording();
        t.erasure(4, 1, 0, 0);
        t.erasure(2, 0, 3, 1);
        let r = t.report();
        assert_eq!(r.erasure.encodes, 6);
        assert_eq!(r.erasure.decodes, 1);
        assert_eq!(r.erasure.shard_repairs, 3);
        assert_eq!(r.erasure.shard_losses, 1);
        // Must not perturb kernel counters or the recorded-event total.
        assert_eq!(r.events_recorded, 0);
        assert!(r.kernel.is_empty());
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(1023);
        h.record(1024);
        assert_eq!(h.count(), 4);
        assert_eq!(h.buckets[0], 2); // 0 and 1
        assert_eq!(h.buckets[9], 1); // 512..1024
        assert_eq!(h.buckets[10], 1); // 1024..2048
        assert_eq!(h.min_ns, 0);
        assert_eq!(h.max_ns, 1024);
    }

    #[test]
    fn clear_resets_but_keeps_mode() {
        let t = TraceHandle::recording();
        t.phase("m", Phase::Freeze, 1, 1, 0, 1);
        assert_eq!(t.events_recorded(), 1);
        t.clear();
        assert_eq!(t.events_recorded(), 0);
        assert!(t.is_enabled());
    }
}
