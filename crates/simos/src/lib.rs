//! # simos — a deterministic user-space operating-system simulator
//!
//! `simos` is the substrate on which the checkpoint/restart mechanisms of
//! Sancho et al. (2005) are implemented and compared. It models the parts of
//! a 2005-era Linux kernel that the paper's taxonomy actually discriminates
//! on:
//!
//! * **Virtual memory** with 4 KiB pages, per-page protection, page-fault
//!   semantics, and write tracking at page or cache-line granularity
//!   ([`mem`]).
//! * **Processes** with registers, address space, file-descriptor tables and
//!   signal state ([`pcb`]).
//! * **Signals** with user handlers, kernel default actions, masking,
//!   pending queues, and delivery deferred to the next kernel→user
//!   transition ([`signal`]).
//! * **A scheduler** with `SCHED_OTHER` dynamic priorities and `SCHED_FIFO`
//!   real-time tasks, timeslices, and timer-tick preemption ([`sched`]).
//! * **Kernel threads** that borrow the page tables of the task they
//!   interrupt — so checkpointing from a kernel thread pays an address-space
//!   switch and a TLB flush exactly when the paper says it does
//!   ([`kthread`]).
//! * **A syscall layer** charging user/kernel protection-domain crossings
//!   from a calibrated cost model ([`syscall`], [`cost`]).
//! * **An in-memory filesystem** with regular files, `/dev` device nodes and
//!   `/proc` entries whose reads/writes/ioctls are dispatched to loadable
//!   kernel modules ([`fs`], [`module`]).
//! * **Guest programs**: a small register VM with an assembler ([`vm`],
//!   [`asm`]) and native "scientific kernel" applications whose entire state
//!   lives in guest memory ([`apps`]), so that restart correctness is
//!   checkable by comparing continued execution against an uninterrupted
//!   run.
//!
//! Everything is deterministic: virtual time is advanced only by charges
//! from the [`cost::CostModel`], and all collections iterate in a stable
//! order.
//!
//! ## Example
//!
//! ```
//! use simos::{Kernel, cost::CostModel};
//! use simos::apps::{AppParams, NativeKind};
//!
//! let mut k = Kernel::new(CostModel::circa_2005());
//! let pid = k
//!     .spawn_native(NativeKind::DenseSweep, AppParams::small())
//!     .expect("spawn");
//! k.run_until_exit(pid).expect("run");
//! assert!(k.process(pid).is_none() || k.process(pid).unwrap().has_exited());
//! ```

pub mod apps;
pub mod asm;
pub mod cost;
pub mod faultpoint;
pub mod fs;
pub mod kernel;
pub mod kthread;
pub mod mem;
pub mod module;
pub mod pcb;
pub mod sched;
pub mod signal;
pub mod stats;
pub mod syscall;
pub mod timer;
pub mod trace;
pub mod types;
pub mod userrt;
pub mod vm;

pub use kernel::Kernel;
pub use types::{Fd, KtId, Pid, SimError, SimResult};
