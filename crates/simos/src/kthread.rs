//! Kernel threads.
//!
//! A kernel thread "does not have a proper process address space … and it
//! uses the page tables of the task it interrupted, that may not be the
//! process that has to be checkpointed. If so happened a process address
//! space switch is required and this may invalidate the TLB cache"
//! (Section 4.1). The simulator models this: a kernel thread runs on
//! whatever address space is active; touching another process's memory
//! requires [`crate::kernel::Kernel::kthread_attach_mm`], which charges the
//! switch + TLB penalty exactly when the active space differs.
//!
//! Kernel threads are owned by kernel modules: scheduling one dispatches to
//! [`crate::module::KernelModule::kthread_run`].

use crate::sched::SchedPolicy;
use crate::types::KtId;

/// Life-cycle state of a kernel thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KtState {
    /// Waiting to be woken (not on the runqueue).
    Sleeping,
    /// On the runqueue or running.
    Ready,
    /// Exited; slot retained until reaped.
    Dead,
}

/// Kernel-thread control block.
#[derive(Debug, Clone)]
pub struct KThread {
    pub id: KtId,
    pub name: String,
    /// Owning kernel module (dispatch target).
    pub module: String,
    pub state: KtState,
    pub policy: SchedPolicy,
    /// Accumulated CPU time.
    pub cpu_ns: u64,
    /// Number of times the thread has been woken.
    pub wakeups: u64,
}

impl KThread {
    pub fn new(id: KtId, name: &str, module: &str, policy: SchedPolicy) -> Self {
        KThread {
            id,
            name: name.to_string(),
            module: module.to_string(),
            state: KtState::Sleeping,
            policy,
            cpu_ns: 0,
            wakeups: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_thread_starts_asleep() {
        let kt = KThread::new(KtId(1), "ckptd", "crak", SchedPolicy::Fifo { rt_prio: 50 });
        assert_eq!(kt.state, KtState::Sleeping);
        assert!(kt.policy.is_fifo());
        assert_eq!(kt.wakeups, 0);
    }
}
