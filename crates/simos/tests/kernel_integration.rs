//! Kernel-level integration tests: module lifecycle and dispatch through
//! the real syscall paths, signal masking, interval timers, and scheduler
//! class interactions.

use simos::apps::{AppParams, NativeKind};
use simos::cost::CostModel;
use simos::fs::OpenFlags;
use simos::kernel::Kernel;
use simos::module::KernelModule;
use simos::sched::SchedPolicy;
use simos::signal::{Sig, SigAction, UserHandlerKind};
use simos::syscall::{MaskHow, Syscall};
use simos::types::{Errno, Fd, Pid, SysResult};
use std::any::Any;

/// A toy module: a device whose ioctl echoes arg+1, a proc entry that
/// stores writes and serves them back, and one extension syscall that
/// doubles its argument.
struct EchoModule {
    stored: Vec<u8>,
    slot: Option<u32>,
    pub ioctls_seen: u64,
}

impl EchoModule {
    fn new() -> Self {
        EchoModule {
            stored: b"initial".to_vec(),
            slot: None,
            ioctls_seen: 0,
        }
    }
}

impl KernelModule for EchoModule {
    fn name(&self) -> &str {
        "echo"
    }

    fn on_load(&mut self, k: &mut Kernel) {
        k.fs.register_device("/dev/echo", "echo", 7).unwrap();
        k.fs.register_proc("/proc/echo", "echo", "store").unwrap();
        self.slot = Some(k.register_ext_syscall("echo"));
    }

    fn on_unload(&mut self, k: &mut Kernel) {
        let _ = k.fs.unlink("/dev/echo");
        let _ = k.fs.unlink("/proc/echo");
    }

    fn ioctl(&mut self, _k: &mut Kernel, _pid: Pid, minor: u32, req: u64, arg: u64) -> SysResult {
        assert_eq!(minor, 7);
        self.ioctls_seen += 1;
        if req == 1 {
            Ok(arg + 1)
        } else {
            Err(Errno::ENOTTY)
        }
    }

    fn proc_read(&mut self, _k: &mut Kernel, _pid: Pid, tag: &str) -> Result<Vec<u8>, Errno> {
        assert_eq!(tag, "store");
        Ok(self.stored.clone())
    }

    fn proc_write(&mut self, _k: &mut Kernel, _pid: Pid, _tag: &str, data: &[u8]) -> SysResult {
        self.stored = data.to_vec();
        Ok(data.len() as u64)
    }

    fn ext_syscall(&mut self, _k: &mut Kernel, _pid: Pid, slot: u32, args: [u64; 5]) -> SysResult {
        assert_eq!(Some(slot), self.slot);
        Ok(args[0] * 2)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn kernel_with_app() -> (Kernel, Pid) {
    let mut k = Kernel::new(CostModel::circa_2005());
    let mut p = AppParams::small();
    p.total_steps = u64::MAX;
    let pid = k.spawn_native(NativeKind::SparseRandom, p).unwrap();
    (k, pid)
}

#[test]
fn device_ioctl_flows_through_open_fd() {
    let (mut k, pid) = kernel_with_app();
    k.register_module(Box::new(EchoModule::new())).unwrap();
    let fd = Fd(k
        .do_syscall(
            pid,
            Syscall::Open {
                path: "/dev/echo".into(),
                flags: OpenFlags::RDWR,
            },
        )
        .unwrap() as u32);
    let r = k
        .do_syscall(pid, Syscall::Ioctl { fd, req: 1, arg: 41 })
        .unwrap();
    assert_eq!(r, 42);
    // Unknown request propagates the module's errno.
    assert_eq!(
        k.do_syscall(pid, Syscall::Ioctl { fd, req: 99, arg: 0 }),
        Err(Errno::ENOTTY)
    );
    // ioctl on a regular file is ENOTTY.
    let reg = Fd(k
        .do_syscall(
            pid,
            Syscall::Open {
                path: "/tmp/file".into(),
                flags: OpenFlags::RDWR_CREATE,
            },
        )
        .unwrap() as u32);
    assert_eq!(
        k.do_syscall(pid, Syscall::Ioctl { fd: reg, req: 1, arg: 0 }),
        Err(Errno::ENOTTY)
    );
    let n = k
        .with_module_mut::<EchoModule, _>("echo", |m, _| m.ioctls_seen)
        .unwrap();
    assert_eq!(n, 2);
}

#[test]
fn proc_entry_read_write_through_guest_buffers() {
    let (mut k, pid) = kernel_with_app();
    k.register_module(Box::new(EchoModule::new())).unwrap();
    let fd = Fd(k
        .do_syscall(
            pid,
            Syscall::Open {
                path: "/proc/echo".into(),
                flags: OpenFlags::RDWR,
            },
        )
        .unwrap() as u32);
    // Write "hello" from guest memory.
    let buf = simos::apps::ARRAY_BASE;
    k.mem_write(pid, buf, b"hello").unwrap();
    let n = k
        .do_syscall(pid, Syscall::Write { fd, buf, len: 5 })
        .unwrap();
    assert_eq!(n, 5);
    // Read it back (offset starts where the write left it, so reopen).
    let fd2 = Fd(k
        .do_syscall(
            pid,
            Syscall::Open {
                path: "/proc/echo".into(),
                flags: OpenFlags::RDONLY,
            },
        )
        .unwrap() as u32);
    let out = buf + 64;
    let n = k
        .do_syscall(
            pid,
            Syscall::Read {
                fd: fd2,
                buf: out,
                len: 16,
            },
        )
        .unwrap();
    assert_eq!(n, 5);
    let mut got = [0u8; 5];
    k.mem_read(pid, out, &mut got).unwrap();
    assert_eq!(&got, b"hello");
}

#[test]
fn ext_syscall_dispatches_to_module() {
    let (mut k, pid) = kernel_with_app();
    k.register_module(Box::new(EchoModule::new())).unwrap();
    let r = k
        .do_syscall(
            pid,
            Syscall::Ext {
                slot: 0,
                args: [21, 0, 0, 0, 0],
            },
        )
        .unwrap();
    assert_eq!(r, 42);
    assert_eq!(k.stats.ext_syscalls, 1);
}

#[test]
fn unload_removes_device_proc_and_slots() {
    let (mut k, pid) = kernel_with_app();
    k.register_module(Box::new(EchoModule::new())).unwrap();
    k.unload_module("echo").unwrap();
    assert!(!k.fs.exists("/dev/echo"));
    assert!(!k.fs.exists("/proc/echo"));
    assert_eq!(
        k.do_syscall(
            pid,
            Syscall::Ext {
                slot: 0,
                args: [1, 0, 0, 0, 0]
            }
        ),
        Err(Errno::ENOSYS)
    );
}

#[test]
fn sigprocmask_defers_delivery_until_unblocked() {
    let (mut k, pid) = kernel_with_app();
    k.do_syscall(
        pid,
        Syscall::Sigaction {
            sig: Sig::SIGUSR1,
            action: SigAction::Handler {
                kind: UserHandlerKind::CountOnly,
                uses_non_reentrant: false,
            },
        },
    )
    .unwrap();
    k.do_syscall(
        pid,
        Syscall::Sigprocmask {
            how: MaskHow::Block,
            mask: Sig::SIGUSR1.bit(),
        },
    )
    .unwrap();
    k.post_signal(pid, Sig::SIGUSR1);
    k.run_for(30_000_000).unwrap();
    assert_eq!(
        k.process(pid).unwrap().user_rt.handler_invocations,
        0,
        "masked signal must not be delivered"
    );
    // Pending is visible through sigpending.
    let pending = k.do_syscall(pid, Syscall::Sigpending).unwrap();
    assert_ne!(pending & Sig::SIGUSR1.bit(), 0);
    // Unblock → delivered.
    k.do_syscall(
        pid,
        Syscall::Sigprocmask {
            how: MaskHow::Unblock,
            mask: Sig::SIGUSR1.bit(),
        },
    )
    .unwrap();
    k.run_for(30_000_000).unwrap();
    assert_eq!(k.process(pid).unwrap().user_rt.handler_invocations, 1);
}

#[test]
fn setitimer_fires_repeatedly() {
    let (mut k, pid) = kernel_with_app();
    k.do_syscall(
        pid,
        Syscall::Sigaction {
            sig: Sig::SIGALRM,
            action: SigAction::Handler {
                kind: UserHandlerKind::CountOnly,
                uses_non_reentrant: false,
            },
        },
    )
    .unwrap();
    k.do_syscall(
        pid,
        Syscall::Setitimer {
            interval_ns: 20_000_000,
        },
    )
    .unwrap();
    k.run_for(150_000_000).unwrap();
    let n = k.process(pid).unwrap().user_rt.handler_invocations;
    assert!((4..=9).contains(&n), "expected ~7 firings, got {n}");
    // Cancel stops further firings.
    k.do_syscall(pid, Syscall::Setitimer { interval_ns: 0 }).unwrap();
    k.run_for(100_000_000).unwrap();
    assert_eq!(k.process(pid).unwrap().user_rt.handler_invocations, n);
}

#[test]
fn fifo_process_starves_other_until_it_sleeps() {
    let (mut k, other) = kernel_with_app();
    let mut p = AppParams::small();
    p.total_steps = u64::MAX;
    let fifo = k.spawn_native(NativeKind::SparseRandom, p).unwrap();
    k.do_syscall(
        fifo,
        Syscall::SchedSetScheduler {
            pid: fifo,
            policy: SchedPolicy::Fifo { rt_prio: 10 },
        },
    )
    .unwrap();
    let w0 = k.process(other).unwrap().work_done;
    k.run_for(100_000_000).unwrap();
    // The FIFO task never blocks, so the Other task makes no progress.
    assert_eq!(
        k.process(other).unwrap().work_done,
        w0,
        "SCHED_OTHER must starve under a runnable SCHED_FIFO task"
    );
    assert!(k.process(fifo).unwrap().work_done > 0);
}

#[test]
fn nanosleep_blocks_then_resumes() {
    let (mut k, pid) = kernel_with_app();
    k.run_for(1_000_000).unwrap();
    k.do_syscall(pid, Syscall::Nanosleep { ns: 50_000_000 }).unwrap();
    let w = k.process(pid).unwrap().work_done;
    k.run_for(30_000_000).unwrap();
    assert_eq!(k.process(pid).unwrap().work_done, w, "still sleeping");
    k.run_for(40_000_000).unwrap();
    assert!(k.process(pid).unwrap().work_done > w, "woke up on time");
}

#[test]
fn getpid_and_yield_work() {
    let (mut k, pid) = kernel_with_app();
    assert_eq!(k.do_syscall(pid, Syscall::Getpid).unwrap(), pid.0 as u64);
    assert_eq!(k.do_syscall(pid, Syscall::SchedYield).unwrap(), 0);
}

#[test]
fn kill_to_missing_process_is_esrch() {
    let (mut k, pid) = kernel_with_app();
    assert_eq!(
        k.do_syscall(
            pid,
            Syscall::Kill {
                pid: Pid(9999),
                sig: Sig::SIGTERM
            }
        ),
        Err(Errno::ESRCH)
    );
}

#[test]
fn duplicate_module_registration_rejected() {
    let (mut k, _pid) = kernel_with_app();
    k.register_module(Box::new(EchoModule::new())).unwrap();
    assert!(k.register_module(Box::new(EchoModule::new())).is_err());
}
