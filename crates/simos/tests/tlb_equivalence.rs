//! Property test: the software TLB is a pure accelerator.
//!
//! Two address spaces — one with the translation cache enabled, one with it
//! disabled — are driven through the same pseudo-random sequence of memory
//! operations (map/unmap/mprotect/brk, checked reads and writes, peek/poke,
//! track-mode toggles, tracked-fault resolution). Every observable — access
//! outcomes, returned addresses, bytes read, dirty sets, resident sets, and
//! `MemStats` (with the TLB counters themselves masked) — must be identical
//! at every step. Any stale-translation bug (missed flush, wrong slot after
//! reuse, stale protection) shows up as a divergence.

use simos::apps::mix64;
use simos::mem::{AccessOutcome, AddressSpace, MemStats, Prot, TrackMode, DATA_BASE, PAGE_SIZE};

/// One pseudo-random operation applied to both spaces; returns the
/// observation string the two runs are compared on.
fn apply(op: u64, rng: &mut u64, a: &mut AddressSpace, regions: &mut Vec<(u64, u64)>) -> String {
    let mut next = || {
        *rng = mix64(*rng);
        *rng
    };
    // Pick a target address biased toward mapped regions (data VMA, heap,
    // live mmaps) with occasional wild addresses to exercise fault paths.
    let pick_addr = |regions: &[(u64, u64)], r1: u64, r2: u64| -> u64 {
        match r1 % 8 {
            0..=2 => DATA_BASE + r2 % (16 * PAGE_SIZE),
            3 | 4 => {
                if let Some(&(start, len)) = regions.get((r1 / 8) as usize % regions.len().max(1)) {
                    start + r2 % len
                } else {
                    DATA_BASE + r2 % PAGE_SIZE
                }
            }
            5 => simos::mem::HEAP_BASE + r2 % (4 * PAGE_SIZE),
            6 => simos::mem::TEXT_BASE + r2 % PAGE_SIZE,
            _ => 0xdead_0000 + r2 % PAGE_SIZE, // usually unmapped
        }
    };
    match op % 12 {
        0 => {
            // mmap a small region.
            let len = (next() % 8 + 1) * PAGE_SIZE;
            let prot = if next() % 4 == 0 { Prot::R } else { Prot::RW };
            match a.mmap(len, prot, "prop") {
                Ok(addr) => {
                    regions.push((addr, len));
                    format!("mmap ok {addr:#x}")
                }
                Err(()) => "mmap err".into(),
            }
        }
        1 => {
            // munmap one of our regions (if any).
            if regions.is_empty() {
                return "munmap none".into();
            }
            let i = (next() as usize) % regions.len();
            let (start, _) = regions.remove(i);
            format!("munmap {start:#x} {:?}", a.munmap(start))
        }
        2 => {
            // mprotect a page range (ours or the data VMA).
            let (start, len) = if !regions.is_empty() && next() % 2 == 0 {
                regions[(next() as usize) % regions.len()]
            } else {
                (DATA_BASE, 16 * PAGE_SIZE)
            };
            let pages = (next() % 4 + 1) * PAGE_SIZE;
            let prot = match next() % 3 {
                0 => Prot::R,
                1 => Prot::RW,
                _ => Prot::NONE,
            };
            let r = a.mprotect(start, pages.min(len), prot);
            format!("mprotect {start:#x} {r:?}")
        }
        3 => {
            // brk dance.
            let delta = (next() % (4 * PAGE_SIZE)) as i64 - 2 * PAGE_SIZE as i64;
            format!("sbrk {:?}", a.sbrk(delta))
        }
        4..=6 => {
            // Checked write: check, resolve tracked faults like the kernel
            // does, then write on success.
            let (r1, r2) = (next(), next());
            let addr = pick_addr(regions, r1, r2);
            let len = (next() % 64 + 1) as usize;
            let val = (next() & 0xFF) as u8;
            let mut log = String::new();
            for _ in 0..3 {
                match a.check_write(addr, len as u64) {
                    AccessOutcome::Ok => {
                        a.write_unchecked(addr, &vec![val; len]);
                        log.push_str("w-ok ");
                        break;
                    }
                    AccessOutcome::Fault { addr: faddr, kind } => {
                        log.push_str(&format!("w-fault {faddr:#x} {kind:?} "));
                        if !a.resolve_tracked_fault(faddr / PAGE_SIZE) {
                            break;
                        }
                        log.push_str("resolved ");
                    }
                }
            }
            log
        }
        7 | 8 => {
            // Checked read.
            let (r1, r2) = (next(), next());
            let addr = pick_addr(regions, r1, r2);
            let len = (next() % 64 + 1) as usize;
            match a.check_read(addr, len as u64) {
                AccessOutcome::Ok => {
                    let mut buf = vec![0u8; len];
                    a.read_unchecked(addr, &mut buf);
                    format!("r-ok {:x}", buf.iter().fold(0u64, |h, &b| mix64(h ^ b as u64)))
                }
                AccessOutcome::Fault { addr: faddr, kind } => {
                    format!("r-fault {faddr:#x} {kind:?}")
                }
            }
        }
        9 => {
            // peek/poke (checkpointer paths, no protection interaction).
            let (r1, r2) = (next(), next());
            let addr = pick_addr(regions, r1, r2);
            let val = (next() & 0xFF) as u8;
            a.poke(addr, &[val; 16]);
            let mut buf = [0u8; 16];
            a.peek(addr, &mut buf);
            format!("pokepeek {:x}", buf.iter().fold(0u64, |h, &b| mix64(h ^ b as u64)))
        }
        10 => {
            // Toggle track mode.
            let mode = match next() % 4 {
                0 => TrackMode::KernelPage,
                1 => TrackMode::UserSigsegv,
                2 => TrackMode::HardwareLine,
                _ => TrackMode::Off,
            };
            if mode == TrackMode::Off {
                format!("disarm {}", a.disarm_tracking())
            } else {
                format!("arm {mode:?} {}", a.arm_tracking(mode))
            }
        }
        _ => {
            // Restore-style raw ops occasionally.
            a.restore_brk(a.brk());
            "restore-brk".into()
        }
    }
}

/// Full observable state of a space, TLB counters masked: resident pages
/// with content hashes, dirty pages, dirty lines, stats.
type Observation = (Vec<(u64, u64)>, Vec<u64>, Vec<u64>, MemStats);

fn observe(a: &AddressSpace) -> Observation {
    let pages: Vec<(u64, u64)> = a
        .resident_pages()
        .map(|pn| {
            let h = a
                .page_data(pn)
                .unwrap()
                .iter()
                .fold(0u64, |h, &b| mix64(h ^ b as u64));
            (pn, h)
        })
        .collect();
    let mut stats = a.stats.clone();
    stats.tlb_hits = 0;
    stats.tlb_misses = 0;
    stats.tlb_flushes = 0;
    (
        pages,
        a.dirty_pages.iter().copied().collect(),
        a.dirty_lines.iter().copied().collect(),
        stats,
    )
}

#[test]
fn tlb_enabled_is_observationally_identical_to_disabled() {
    for seed in 0..8u64 {
        let mut on = AddressSpace::new(4 * PAGE_SIZE, 16 * PAGE_SIZE);
        let mut off = AddressSpace::new(4 * PAGE_SIZE, 16 * PAGE_SIZE);
        off.set_tlb_enabled(false);
        let mut rng_on = mix64(seed ^ 0x7157);
        let mut rng_off = rng_on;
        let mut regions_on = Vec::new();
        let mut regions_off = Vec::new();
        for step in 0..2000u64 {
            let op = mix64(seed.wrapping_mul(0x9E37).wrapping_add(step));
            let obs_on = apply(op, &mut rng_on, &mut on, &mut regions_on);
            let obs_off = apply(op, &mut rng_off, &mut off, &mut regions_off);
            assert_eq!(
                obs_on, obs_off,
                "seed {seed} step {step}: per-op observation diverged"
            );
            assert_eq!(rng_on, rng_off, "rng streams must stay in lockstep");
        }
        let (pages_on, dp_on, dl_on, stats_on) = observe(&on);
        let (pages_off, dp_off, dl_off, stats_off) = observe(&off);
        assert_eq!(pages_on, pages_off, "seed {seed}: resident pages/bytes");
        assert_eq!(dp_on, dp_off, "seed {seed}: dirty pages");
        assert_eq!(dl_on, dl_off, "seed {seed}: dirty lines");
        assert_eq!(stats_on, stats_off, "seed {seed}: MemStats");
        // The enabled run must actually have exercised the cache.
        assert!(on.stats.tlb_hits > 0, "seed {seed}: TLB never hit");
        assert_eq!(off.stats.tlb_hits, 0);
    }
}
