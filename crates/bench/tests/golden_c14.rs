//! Structural golden pin for C14, the sharded control plane.
//!
//! C14 runs on the sweep engine and emits a canonical JSON artifact
//! (`goldens/SWEEP_c14.json`); this test diffs the regenerated artifact
//! against the golden *structurally* — a mismatch names the first
//! divergent path and both values
//! (`c14.nodes.jobs[3].metrics.round_ns: 1234 != 1250`) instead of
//! "hash mismatch". Everything in the artifact is deterministic by
//! construction: the cluster section's guests are seeded, the scale
//! model draws payloads from splitmix64, and only pure payload encodes
//! fan out on the pool behind an ordered merge — so the bytes pin at
//! any worker count.
//!
//! If an *intentional* change lands, regenerate:
//! `./target/release/report sweep --out crates/bench/goldens/` (then
//! drop the RUNBOOK/other artifacts) and commit the new golden with the
//! reason in the same commit.

use ckpt_bench::artifact::{canonical_document, first_divergence, fnv1a64, parse_document};
use ckpt_bench::sweep::sweep_artifact;
use std::process::Command;

const GOLDEN: &str = include_str!("../goldens/SWEEP_c14.json");

#[test]
fn c14_artifact_matches_structural_golden() {
    let golden = parse_document(GOLDEN).expect("golden parses");
    assert!(golden.keys_sorted, "golden must be canonical (sorted keys)");
    let actual_doc = canonical_document(&sweep_artifact(&ckpt_bench::swept::c14_sweeps()));
    let actual = parse_document(&actual_doc).expect("artifact parses");
    if let Some(d) = first_divergence("c14", &golden.value, &actual.value) {
        panic!("C14 sweep artifact diverged from golden: {d}");
    }
    assert_eq!(actual_doc, GOLDEN, "artifact bytes moved without a structural diff");
}

#[test]
fn report_c14_is_pool_width_invariant() {
    // The determinism discipline's observable contract: the rendered
    // report's bytes cannot depend on how many workers the pool runs.
    // Each width runs in its own process because the global pool latches
    // its size once. (The sweep-artifact counterpart of this test lives
    // in sweep_properties.rs.)
    let mut outputs = Vec::new();
    for width in ["1", "4", "8"] {
        let out = Command::new(env!("CARGO_BIN_EXE_report"))
            .env("CKPT_PAR_WORKERS", width)
            .arg("c14")
            .output()
            .expect("run report c14");
        assert!(out.status.success(), "report c14 failed at width {width}");
        outputs.push(out.stdout);
    }
    assert_eq!(outputs[0], outputs[1], "width 1 vs 4 outputs differ");
    assert_eq!(outputs[1], outputs[2], "width 4 vs 8 outputs differ");
}

#[test]
fn c14_shard_count_does_not_change_the_committed_images() {
    // Partitioning is an execution detail: the same job checkpointed
    // through 1, 2, or 8 shard coordinators must commit byte-identical
    // image sets (same keys, same guest state) to the striped pool. The
    // one field allowed to move is the header's capture instant —
    // earlier shards charge their commit latency before later shards
    // capture, exactly as the flat coordinator's sequential per-rank
    // path already does — so it is normalized to zero before digesting.
    use ckpt_cluster::{Cluster, FailureConfig, MpiJob, ShardedCoordinator};
    use ckpt_core::TrackerKind;
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;

    let run = |shards: usize| -> Vec<(String, u64)> {
        let mut c = Cluster::new_striped(
            4,
            CostModel::circa_2005(),
            FailureConfig::none(),
            4,
            3,
            2,
        );
        let mut job = MpiJob::launch(
            &mut c,
            "app",
            8,
            NativeKind::SparseRandom,
            AppParams::small(),
            6,
            32 * 1024,
        )
        .expect("launch");
        let mut coord = ShardedCoordinator::new("c14g", TrackerKind::KernelPage, shards);
        for _ in 0..2 {
            job.superstep(&mut c).expect("superstep");
        }
        coord.checkpoint(&mut c, &job).expect("checkpoint");
        let cost = CostModel::circa_2005();
        let storage = c.node(ckpt_cluster::NodeId(0)).remote.clone();
        let s = storage.lock();
        s.list()
            .into_iter()
            .map(|k| {
                let (bytes, _) = s.load(&k, &cost).expect("load committed image");
                let mut img = ckpt_image::decode(&bytes).expect("decode committed image");
                img.header.taken_at_ns = 0;
                (k, fnv1a64(&ckpt_image::encode(&img)))
            })
            .collect()
    };

    let one = run(1);
    assert!(!one.is_empty());
    assert_eq!(one, run(2), "2 shards committed a different image set");
    assert_eq!(one, run(8), "8 shards committed a different image set");
}

#[test]
fn c14_batched_acks_stay_an_order_of_magnitude_under_per_image() {
    // Acceptance: the batched quorum commit measurably reduces replica
    // ack cycles per round vs the per-image path at the 10k-node point.
    let out = ckpt_bench::c14_shard();
    let reduction: f64 = out
        .lines()
        .find(|l| l.starts_with("ack cycles per round at"))
        .and_then(|l| l.rsplit('(').next())
        .and_then(|v| v.trim_end_matches(')').trim_end_matches("x fewer").parse().ok())
        .expect("ack summary line present");
    assert!(
        reduction > 10.0,
        "batched commits must cut ack cycles by >10x at 10k nodes, got {reduction}"
    );
}
