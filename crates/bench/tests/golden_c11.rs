//! Golden regression pin for `report c11`, the crash-matrix experiment.
//!
//! The matrix is fully deterministic — the site list comes from a
//! recording pass, every scenario replays the same virtual schedule, and
//! the report renders in fixed matrix order — so its entire output can be
//! pinned byte-for-byte. Any change to fault classification, site
//! enumeration, or restart behavior moves the hash and fails loudly.
//!
//! If an *intentional* change lands (a new site, a new mechanism column),
//! regenerate: hash `./target/release/report c11`'s stdout with the
//! FNV-1a 64 below and update both constants in the same commit.

const GOLDEN_FNV1A64: u64 = 0x7a08_87e2_ece8_5d9c;
const GOLDEN_BYTES: usize = 4580;

use ckpt_bench::artifact::fnv1a64;

#[test]
fn report_c11_output_matches_pinned_baseline() {
    // Exactly what the report binary prints: c11_crash_matrix() + "\n".
    let out = format!("{}\n", ckpt_bench::c11_crash_matrix());
    assert_eq!(
        out.len(),
        GOLDEN_BYTES,
        "report c11 output length changed — crash matrix no longer baseline"
    );
    assert_eq!(
        fnv1a64(out.as_bytes()),
        GOLDEN_FNV1A64,
        "report c11 output bytes changed — crash matrix no longer baseline"
    );
}
