//! Property tests for the sweep engine itself — the hard pins the
//! structural goldens stand on.
//!
//! The engine's contract: same plan + same seed ⇒ byte-identical
//! canonical artifacts at any pool width and under any job submission
//! order; expansion is exhaustive and duplicate-free; per-job seeds
//! depend only on (plan name, base seed, sorted config), never on axis
//! declaration order or expansion position.

use ckpt_bench::artifact::{canonical_document, parse_document, Json};
use ckpt_bench::sweep::{run_jobs, JobSpec, SweepPlan};
use std::process::Command;

fn probe_plan() -> SweepPlan {
    SweepPlan::new("prop")
        .seed(41)
        .axis_ints("a", &[1, 2, 3])
        .axis_strs("b", &["x", "y"])
        .axis_ints("c", &[10, 20])
}

fn probe_job(s: &JobSpec) -> Json {
    Json::obj(vec![
        ("a2", Json::from((s.int("a") * 2) as u64)),
        ("b_echo", Json::from(s.str("b"))),
        ("seed_echo", Json::from(s.seed)),
    ])
}

#[test]
fn expansion_is_exhaustive_and_duplicate_free() {
    let plan = probe_plan();
    let jobs = plan.expand();
    // Cardinality = product of axis lengths (3 × 2 × 2).
    assert_eq!(plan.unfiltered_cardinality(), 12);
    assert_eq!(jobs.len(), 12);
    // Duplicate-free: every sorted config is unique.
    let mut configs: Vec<String> = jobs
        .iter()
        .map(|j| canonical_document(&j.config_json()))
        .collect();
    configs.sort();
    configs.dedup();
    assert_eq!(configs.len(), 12, "expansion produced duplicate cells");
    // Exhaustive: every combination appears.
    for a in [1i64, 2, 3] {
        for b in ["x", "y"] {
            for c in [10i64, 20] {
                assert!(
                    jobs.iter()
                        .any(|j| j.int("a") == a && j.str("b") == b && j.int("c") == c),
                    "cell (a={a}, b={b}, c={c}) missing from expansion"
                );
            }
        }
    }
}

#[test]
fn seeds_are_stable_under_axis_reordering() {
    let forward = probe_plan().expand();
    let reordered = SweepPlan::new("prop")
        .seed(41)
        .axis_ints("c", &[10, 20])
        .axis_strs("b", &["x", "y"])
        .axis_ints("a", &[1, 2, 3])
        .expand();
    let key = |j: &JobSpec| canonical_document(&j.config_json());
    let mut fwd: Vec<(String, u64)> = forward.iter().map(|j| (key(j), j.seed)).collect();
    let mut rev: Vec<(String, u64)> = reordered.iter().map(|j| (key(j), j.seed)).collect();
    fwd.sort();
    rev.sort();
    assert_eq!(fwd, rev, "axis declaration order leaked into job seeds");
    // A different base seed moves every job's seed.
    let moved = probe_plan().seed(42).expand();
    assert!(
        forward.iter().zip(&moved).all(|(x, y)| x.seed != y.seed),
        "base seed is not mixed into every job seed"
    );
}

#[test]
fn report_bytes_identical_under_shuffled_submission_order() {
    let plan = probe_plan();
    let baseline = run_jobs(&plan, plan.expand(), probe_job).canonical();
    // Several deterministic permutations: reversed, interleaved, and a
    // seeded Fisher-Yates shuffle.
    let mut reversed = plan.expand();
    reversed.reverse();
    let mut interleaved = Vec::new();
    let specs = plan.expand();
    let (evens, odds): (Vec<_>, Vec<_>) = specs.into_iter().partition(|j| j.index % 2 == 0);
    interleaved.extend(odds);
    interleaved.extend(evens);
    let mut shuffled = plan.expand();
    let mut state = 0x9e3779b97f4a7c15u64;
    for i in (1..shuffled.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        shuffled.swap(i, j);
    }
    for (label, specs) in [
        ("reversed", reversed),
        ("interleaved", interleaved),
        ("shuffled", shuffled),
    ] {
        let got = run_jobs(&plan, specs, probe_job).canonical();
        assert_eq!(got, baseline, "{label} submission order changed the report bytes");
    }
}

#[test]
fn artifacts_are_canonical_fixed_points() {
    // parse(artifact) rendered canonically must reproduce the exact
    // bytes — the property that makes structural diffs equivalent to
    // byte diffs.
    let plan = probe_plan();
    let doc = run_jobs(&plan, plan.expand(), probe_job).canonical();
    let parsed = parse_document(&doc).expect("artifact parses");
    assert!(parsed.keys_sorted, "artifact keys must be sorted");
    assert_eq!(
        canonical_document(&parsed.value),
        doc,
        "canonical document is not a parse/serialize fixed point"
    );
}

#[test]
fn sweep_artifacts_byte_identical_at_pool_widths_1_4_8() {
    // The real experiment artifacts, not a probe plan: `report sweep`
    // runs in its own process per width because the global pool latches
    // its size once.
    let files = ["SWEEP_c12.json", "SWEEP_c14.json", "SWEEP_c16.json", "RUNBOOK.json"];
    let mut per_width: Vec<Vec<Vec<u8>>> = Vec::new();
    for width in ["1", "4", "8"] {
        let dir = std::env::temp_dir().join(format!(
            "ckpt-sweep-width-{width}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("create artifact dir");
        let out = Command::new(env!("CARGO_BIN_EXE_report"))
            .env("CKPT_PAR_WORKERS", width)
            .args(["sweep", "--out"])
            .arg(&dir)
            .output()
            .expect("run report sweep");
        assert!(out.status.success(), "report sweep failed at width {width}");
        per_width.push(
            files
                .iter()
                .map(|f| std::fs::read(dir.join(f)).expect("read artifact"))
                .collect(),
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    for (i, f) in files.iter().enumerate() {
        assert_eq!(per_width[0][i], per_width[1][i], "{f}: width 1 vs 4 bytes differ");
        assert_eq!(per_width[1][i], per_width[2][i], "{f}: width 4 vs 8 bytes differ");
    }
}
