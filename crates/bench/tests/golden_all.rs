//! Golden regression test for the whole `report all` output.
//!
//! The software-TLB fast path promises *virtual-time neutrality*: wall-clock
//! drops, but every byte of the report — every table, every trace total —
//! stays what it was before the cache existed. Each experiment already
//! asserts its own determinism; this test pins the concatenated output of
//! the full report against the pre-fast-path baseline hash, so any change
//! to simulated behavior (not just formatting) fails loudly.
//!
//! If an *intentional* output change lands (new experiment, new column),
//! regenerate the constant: hash `./target/release/report all`'s stdout
//! with the FNV-1a 64 below and update `GOLDEN_FNV1A64` + `GOLDEN_BYTES` in
//! the same commit that changes the output.

/// FNV-1a 64 of the full `report all` stdout (including the trailing
/// newline `println!` appends), captured before the TLB fast path landed.
const GOLDEN_FNV1A64: u64 = 0x10b5_9ccb_4d6b_76f7;
const GOLDEN_BYTES: usize = 18554;

use ckpt_bench::artifact::fnv1a64;

#[test]
fn report_all_output_matches_pre_fast_path_baseline() {
    // Exactly what the report binary prints: run_all() + "\n".
    let out = format!("{}\n", ckpt_bench::run_all());
    assert_eq!(
        out.len(),
        GOLDEN_BYTES,
        "report all output length changed — virtual-time neutrality broken?"
    );
    assert_eq!(
        fnv1a64(out.as_bytes()),
        GOLDEN_FNV1A64,
        "report all output bytes changed — virtual-time neutrality broken?"
    );
}
