//! Schema-stability tests for the machine-readable artifacts:
//! `BENCH_report.json`, the `SWEEP_cXX.json` sweep reports, and
//! `RUNBOOK.json`.
//!
//! CI archives these files and diffs them across runs; the diffs are
//! only meaningful if the shape is stable. These tests pin the required
//! keys and types, the canonical form (sorted keys, fixed float
//! rounding), and the line-greppable layout of `BENCH_report.json` that
//! `ci.sh` extracts wall-clocks from with grep/awk.

use ckpt_bench::artifact::{canonical_document, parse_document, Json};
use ckpt_bench::runbook::{build_runbook, ArtifactEntry};
use ckpt_bench::sweep::{run_sweep, sweep_artifact, SweepPlan};
use ckpt_bench::timing::{timings_json, ExperimentTiming};

fn probe_runs() -> Vec<ckpt_bench::sweep::SweepRun> {
    let plan = SweepPlan::new("schema.probe").seed(9).axis_ints("x", &[1, 2]);
    vec![run_sweep(&plan, |j| {
        Json::obj(vec![
            ("pi", Json::from(std::f64::consts::PI)),
            ("x2", Json::from((j.int("x") * 2) as u64)),
        ])
    })]
}

#[test]
fn bench_report_json_is_line_greppable_and_canonical() {
    let timings = vec![
        ExperimentTiming { name: "c7a_cluster_mechanistic", wall_s: 1.25, output_bytes: 42 },
        ExperimentTiming { name: "trace", wall_s: 0.5, output_bytes: 7 },
    ];
    let doc = timings_json(&timings);
    // Parses as JSON with sorted keys throughout (name < output_bytes <
    // wall_s; experiments < total_wall_s).
    let parsed = parse_document(&doc).expect("BENCH_report.json parses");
    assert!(parsed.keys_sorted, "BENCH_report.json keys must be sorted");
    // Required keys and types.
    let exps = parsed
        .value
        .get("experiments")
        .and_then(Json::as_arr)
        .expect("experiments array");
    assert_eq!(exps.len(), 2);
    for e in exps {
        assert!(e.get("name").and_then(Json::as_str).is_some(), "name: string");
        assert!(e.get("output_bytes").and_then(Json::as_u64).is_some(), "output_bytes: u64");
        assert!(e.get("wall_s").and_then(Json::as_f64).is_some(), "wall_s: f64");
    }
    assert!(
        parsed.value.get("total_wall_s").and_then(Json::as_f64).is_some(),
        "total_wall_s: f64"
    );
    // One experiment per line, floats at fixed three decimals — what the
    // ci.sh grep/awk extraction depends on.
    let line = doc
        .lines()
        .find(|l| l.contains("\"c7a_cluster_mechanistic\""))
        .expect("c7a line present");
    assert!(line.contains("\"wall_s\": 1.250"), "wall_s fixed at 3 decimals");
    assert!(
        line.trim_start().starts_with('{') && line.trim_end().trim_end_matches(',').ends_with('}'),
        "one experiment object per line"
    );
    assert!(doc.contains("\"total_wall_s\": 1.750"));
}

#[test]
fn generated_bench_report_matches_the_schema() {
    // `report timings` writes BENCH_report.json into the repo root
    // (gitignored; CI archives it as a workflow artifact). When a local
    // run has left one behind, it must stay parseable and canonically
    // keyed or the archived diffs degrade to noise. A fresh checkout has
    // no file — nothing to check; the synthetic test above pins the
    // writer's format either way.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_report.json");
    let Ok(doc) = std::fs::read_to_string(path) else {
        return;
    };
    let parsed = parse_document(&doc).expect("generated BENCH_report.json parses");
    assert!(parsed.keys_sorted, "generated BENCH_report.json keys must be sorted");
    let exps = parsed
        .value
        .get("experiments")
        .and_then(Json::as_arr)
        .expect("experiments array");
    // The `report all` set plus the timed standalone experiments.
    assert_eq!(exps.len(), 20, "experiment count moved — update schema test and ci.sh");
    for e in exps {
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert!(e.get("output_bytes").and_then(Json::as_u64).is_some());
        assert!(e.get("wall_s").and_then(Json::as_f64).is_some());
    }
}

#[test]
fn sweep_report_schema_is_stable() {
    let runs = probe_runs();
    let report = &runs[0].report;
    // Required top-level keys and types.
    assert_eq!(report.get("engine").and_then(Json::as_str), Some("ckpt-sweep/1"));
    assert_eq!(report.get("n_jobs").and_then(Json::as_u64), Some(2));
    assert!(report.get("plan_hash").and_then(Json::as_str).is_some());
    let plan = report.get("plan").expect("plan echo");
    assert!(plan.get("name").and_then(Json::as_str).is_some());
    assert!(plan.get("seed").and_then(Json::as_u64).is_some());
    assert!(plan.get("axes").and_then(Json::as_obj).is_some());
    assert!(plan.get("axis_order").and_then(Json::as_arr).is_some());
    let jobs = report.get("jobs").and_then(Json::as_arr).expect("jobs array");
    assert_eq!(jobs.len(), 2);
    for j in jobs {
        assert!(j.get("config").and_then(Json::as_obj).is_some(), "config: object");
        assert!(j.get("config_hash").and_then(Json::as_str).is_some(), "config_hash: string");
        assert!(j.get("index").and_then(Json::as_u64).is_some(), "index: u64");
        assert!(j.get("metrics").and_then(Json::as_obj).is_some(), "metrics: object");
        assert!(j.get("seed").and_then(Json::as_u64).is_some(), "seed: u64");
    }
    // Canonical form: sorted keys, 9-decimal floats, parse/serialize
    // fixed point.
    let doc = canonical_document(&sweep_artifact(&runs));
    let parsed = parse_document(&doc).expect("artifact parses");
    assert!(parsed.keys_sorted);
    assert_eq!(canonical_document(&parsed.value), doc);
    assert!(doc.contains("\"pi\": 3.141592654"), "floats fixed at 9 decimals");
}

#[test]
fn runbook_schema_is_stable() {
    let runs = probe_runs();
    let rb = build_runbook(&[ArtifactEntry {
        experiment: "probe",
        file: "SWEEP_probe.json".into(),
        runs: &runs,
    }]);
    assert_eq!(rb.get("engine").and_then(Json::as_str), Some("ckpt-sweep/1"));
    assert_eq!(rb.get("total_jobs").and_then(Json::as_u64), Some(2));
    let arts = rb.get("artifacts").and_then(Json::as_arr).expect("artifacts array");
    assert_eq!(arts.len(), 1);
    for a in arts {
        assert!(a.get("content_hash").and_then(Json::as_str).is_some());
        assert_eq!(a.get("experiment").and_then(Json::as_str), Some("probe"));
        assert_eq!(a.get("file").and_then(Json::as_str), Some("SWEEP_probe.json"));
        let plans = a.get("plans").and_then(Json::as_arr).expect("plans array");
        for p in plans {
            assert!(p.get("jobs").and_then(Json::as_u64).is_some());
            assert!(p.get("name").and_then(Json::as_str).is_some());
            assert!(p.get("plan_hash").and_then(Json::as_str).is_some());
            let seeds = p.get("seeds").and_then(Json::as_arr).expect("seeds array");
            assert_eq!(seeds.len(), 2, "one seed per job");
        }
    }
    // The RunBook is itself canonical.
    let doc = canonical_document(&rb);
    let parsed = parse_document(&doc).expect("runbook parses");
    assert!(parsed.keys_sorted);
    assert_eq!(canonical_document(&parsed.value), doc);
}

#[test]
fn committed_goldens_are_canonical() {
    for (name, text) in [
        ("SWEEP_c12.json", include_str!("../goldens/SWEEP_c12.json")),
        ("SWEEP_c14.json", include_str!("../goldens/SWEEP_c14.json")),
        ("SWEEP_c16.json", include_str!("../goldens/SWEEP_c16.json")),
    ] {
        let parsed = parse_document(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(parsed.keys_sorted, "{name}: keys must be sorted");
        assert_eq!(
            canonical_document(&parsed.value),
            text,
            "{name}: golden is not in canonical form"
        );
    }
}
