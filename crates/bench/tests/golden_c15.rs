//! Golden regression pin for `report c15`, the live-migration report.
//!
//! Every number in the report comes off the deterministic simulator:
//! guests are seeded, wire/memcpy costs are the fixed circa-2005 model,
//! pre-copy rounds and the auto-converge throttle ladder are pure
//! functions of the dirty sets, and post-copy demand faults are served
//! in ascending page order — so the full output pins byte-for-byte at
//! any pool width. A moved hash means round accounting, the cutover
//! policy, the throttle ladder, or the demand/prefetch split changed
//! observable behavior and must be reviewed, not waved through.
//!
//! If an *intentional* change lands, regenerate: hash
//! `./target/release/report c15`'s stdout with the FNV-1a 64 below and
//! update both constants in the same commit.

use std::process::Command;

const GOLDEN_FNV1A64: u64 = 0xd5af_4dec_79d6_94ba;
const GOLDEN_BYTES: usize = 3257;

/// Worst tolerated post-copy downtime across the zoo: the minimal-image
/// window must stay an order of magnitude under the ~423 us freeze-copy
/// baseline (it measures 27.9 us today).
const POSTCOPY_DOWNTIME_CEILING_US: f64 = 100.0;

use ckpt_bench::artifact::fnv1a64;

#[test]
fn report_c15_output_matches_pinned_baseline() {
    // Exactly what the report binary prints: c15_livemig() + "\n".
    let out = format!("{}\n", ckpt_bench::c15_livemig());
    assert_eq!(
        out.len(),
        GOLDEN_BYTES,
        "report c15 output length changed — migration report no longer baseline"
    );
    assert_eq!(
        fnv1a64(out.as_bytes()),
        GOLDEN_FNV1A64,
        "report c15 output bytes changed — migration report no longer baseline"
    );
}

#[test]
fn report_c15_is_pool_width_invariant() {
    // The determinism discipline's observable contract: the report's
    // bytes cannot depend on how many workers the pool runs. Each width
    // runs in its own process because the global pool latches its size
    // once.
    let mut outputs = Vec::new();
    for width in ["1", "4", "8"] {
        let out = Command::new(env!("CARGO_BIN_EXE_report"))
            .env("CKPT_PAR_WORKERS", width)
            .arg("c15")
            .output()
            .expect("run report c15");
        assert!(out.status.success(), "report c15 failed at width {width}");
        outputs.push(out.stdout);
    }
    assert_eq!(outputs[0], outputs[1], "width 1 vs 4 outputs differ");
    assert_eq!(outputs[1], outputs[2], "width 4 vs 8 outputs differ");
    assert_eq!(fnv1a64(&outputs[0]), GOLDEN_FNV1A64, "subprocess output off baseline");
}

#[test]
fn c15_gates_hold_and_downtime_stays_under_ceiling() {
    // Acceptance: both live strategies beat freeze-copy on every guest at
    // every dirty rate, pre-copy's round count adapts to the dirty rate,
    // and the slowest guest's post-copy downtime stays under the ceiling
    // CI enforces.
    let out = ckpt_bench::c15_livemig();
    for gate in [
        "gate: pre-copy beats freeze-copy downtime on every guest at every dirty rate: true",
        "gate: post-copy beats freeze-copy downtime on every guest at every dirty rate: true",
        "gate: pre-copy rounds adapt to the dirty rate (monotone, growing): true",
    ] {
        assert!(out.contains(gate), "missing or failed gate: {gate}\n{out}");
    }
    let worst_us: f64 = out
        .lines()
        .find(|l| l.starts_with("worst-case post-copy downtime:"))
        .and_then(|l| l.strip_prefix("worst-case post-copy downtime:"))
        .map(|v| v.trim().trim_end_matches(" us"))
        .and_then(|v| v.parse().ok())
        .expect("post-copy downtime summary line present in us");
    assert!(
        worst_us < POSTCOPY_DOWNTIME_CEILING_US,
        "slowest-guest post-copy downtime {worst_us} us exceeds {POSTCOPY_DOWNTIME_CEILING_US} us"
    );
}
