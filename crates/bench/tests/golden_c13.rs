//! Golden regression pin for `report c13`, the content-addressed dedup
//! experiment.
//!
//! Everything in the report is deterministic by construction: the guest
//! apps are seeded, capture is byte-stable, chunk boundaries come from a
//! const gear table, and the pool's ordered merge keeps digests and
//! receipts byte-identical at any worker count — so the full output pins
//! byte-for-byte. A moved hash means the chunker, delta codec, manifest
//! format, or commit accounting changed observable behavior and must be
//! reviewed, not waved through.
//!
//! If an *intentional* change lands, regenerate: hash
//! `./target/release/report c13`'s stdout with the FNV-1a 64 below and
//! update both constants in the same commit.

const GOLDEN_FNV1A64: u64 = 0xcac3_ef95_d26f_3334;
const GOLDEN_BYTES: usize = 2154;

use ckpt_bench::artifact::fnv1a64;

#[test]
fn report_c13_output_matches_pinned_baseline() {
    // Exactly what the report binary prints: c13_dedup() + "\n".
    let out = format!("{}\n", ckpt_bench::c13_dedup());
    assert_eq!(
        out.len(),
        GOLDEN_BYTES,
        "report c13 output length changed — dedup report no longer baseline"
    );
    assert_eq!(
        fnv1a64(out.as_bytes()),
        GOLDEN_FNV1A64,
        "report c13 output bytes changed — dedup report no longer baseline"
    );
}

#[test]
fn c13_cross_process_dedup_clears_the_floor() {
    let out = ckpt_bench::c13_dedup();
    let ratio: f64 = out
        .lines()
        .find(|l| l.starts_with("cross-process dedup ratio at n=8:"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.trim_end_matches('x').parse().ok())
        .expect("summary ratio line present");
    assert!(
        ratio > 2.0,
        "co-scheduled identical guests must dedup beyond 2x, got {ratio}"
    );
}

#[test]
fn c13_replicated_commit_bytes_shrink_vs_raw() {
    // Acceptance: replicated commit traffic on the incremental workloads
    // is reduced vs the raw image path, and keeps shrinking relatively as
    // identical guests are added.
    let out = ckpt_bench::c13_dedup();
    let reduction: f64 = out
        .lines()
        .find(|l| l.starts_with("replication commit reduction at n=8:"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.trim_end_matches('x').parse().ok())
        .expect("summary reduction line present");
    assert!(
        reduction > 2.0,
        "dedup must cut replicated commit bytes by >2x at n=8, got {reduction}"
    );
}
