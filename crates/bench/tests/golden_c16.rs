//! Golden regression pin for `report c16`, the erasure-coded storage
//! engine.
//!
//! Everything in the report is deterministic by construction: the guest
//! lineages are seeded, GF(256) arithmetic is table-driven, fault
//! admission runs sequentially in shard-node order, and only pure work —
//! parity-row encodes and per-node frame copies — fans out on the pool
//! behind an ordered merge. So the full output pins byte-for-byte at any
//! worker count. A moved hash means the code matrix, shard frame format,
//! quorum arithmetic, or repair accounting changed observable behavior
//! and must be reviewed, not waved through.
//!
//! If an *intentional* change lands, regenerate: hash
//! `./target/release/report c16`'s stdout with the FNV-1a 64 below and
//! update both constants in the same commit.

use std::process::Command;

const GOLDEN_FNV1A64: u64 = 0xebe1_4b9e_ecc8_86c0;
const GOLDEN_BYTES: usize = 4326;

fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[test]
fn report_c16_output_matches_pinned_baseline() {
    // Exactly what the report binary prints: c16_erasure() + "\n".
    let out = format!("{}\n", ckpt_bench::c16_erasure());
    assert_eq!(
        out.len(),
        GOLDEN_BYTES,
        "report c16 output length changed — erasure report no longer baseline"
    );
    assert_eq!(
        fnv1a64(out.as_bytes()),
        GOLDEN_FNV1A64,
        "report c16 output bytes changed — erasure report no longer baseline"
    );
}

#[test]
fn report_c16_is_pool_width_invariant() {
    // The determinism discipline's observable contract: the report's
    // bytes cannot depend on how many workers encode parity rows. Each
    // width runs in its own process because the global pool latches its
    // size once.
    let mut outputs = Vec::new();
    for width in ["1", "4", "8"] {
        let out = Command::new(env!("CARGO_BIN_EXE_report"))
            .env("CKPT_PAR_WORKERS", width)
            .arg("c16")
            .output()
            .expect("run report c16");
        assert!(out.status.success(), "report c16 failed at width {width}");
        outputs.push(out.stdout);
    }
    assert_eq!(outputs[0], outputs[1], "width 1 vs 4 outputs differ");
    assert_eq!(outputs[1], outputs[2], "width 4 vs 8 outputs differ");
    assert_eq!(fnv1a64(&outputs[0]), GOLDEN_FNV1A64, "subprocess output off baseline");
}

#[test]
fn c16_coded_commit_bytes_stay_under_the_acceptance_floor() {
    // Acceptance: RS(4,2) commits at most 0.55x the replica-ingested
    // bytes of replication(3,2) on the same lineages — the bandwidth win
    // the engine exists for, measured, not assumed. CI greps the same
    // gate line; this test keeps the floor enforced even where the
    // report gate is skipped.
    let out = ckpt_bench::c16_erasure();
    let ratio = |needle: &str| -> f64 {
        out.lines()
            .find(|l| l.starts_with(needle))
            .and_then(|l| l.rsplit(':').next())
            .and_then(|v| v.trim().trim_end_matches('x').parse().ok())
            .unwrap_or_else(|| panic!("gate line '{needle}' missing from report c16"))
    };
    let r42 = ratio("gate: rs(4,2) commit bytes vs replicated(3,2):");
    assert!(
        r42 <= 0.55,
        "rs(4,2) must commit <= 0.55x replication(3,2) bytes, got {r42}"
    );
    let r83 = ratio("gate: rs(8,3) commit bytes vs replicated(5,3):");
    assert!(
        r83 <= 0.55,
        "rs(8,3) must commit <= 0.55x replication(5,3) bytes, got {r83}"
    );
    assert!(
        out.contains("gate: coded reads bit-exact within m losses and typed beyond: true"),
        "survivability gate must hold"
    );
}

#[test]
fn c16_reconstruction_repairs_persist_across_reads() {
    // The reconstruction table's second-read column is only honest if
    // read-repair actually persists: damage a shard group, read twice,
    // and require the second read to be decode- and repair-free.
    use ckpt_ec::ErasureStore;
    use ckpt_storage::StableStorage;
    use simos::cost::CostModel;

    let cost = CostModel::circa_2005();
    let payload: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 251) as u8).collect();
    let mut store = ErasureStore::fresh(4, 2);
    store.store("g/img", &payload, &cost).unwrap();
    store.replica_set().node(0).drop_key("g/img");
    store.replica_set().node(5).corrupt_key("g/img");
    let (first, t_first) = store.load("g/img", &cost).unwrap();
    assert_eq!(first, payload);
    assert_eq!(store.stats().repairs, 2);
    let (second, t_second) = store.load("g/img", &cost).unwrap();
    assert_eq!(second, payload);
    assert_eq!(store.stats().repairs, 2, "second read must not repair again");
    assert_eq!(store.stats().decodes, 1, "second read must not decode again");
    assert!(t_second < t_first, "repair traffic must not recur");
}
