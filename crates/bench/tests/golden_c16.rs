//! Structural golden pin for C16, the erasure-coded storage engine.
//!
//! C16 runs on the sweep engine and emits a canonical JSON artifact
//! (`goldens/SWEEP_c16.json`); this test diffs the regenerated artifact
//! against the golden *structurally* — a mismatch names the first
//! divergent path and both values
//! (`c16.traffic.jobs[1].metrics.coded_bytes_42: 4096 != 4160`) instead
//! of "hash mismatch". Everything in the artifact is deterministic by
//! construction: the guest lineages are seeded, GF(256) arithmetic is
//! table-driven, fault admission runs sequentially in shard-node order,
//! and only pure work fans out on the pool behind an ordered merge — so
//! the bytes pin at any worker count.
//!
//! If an *intentional* change lands, regenerate:
//! `./target/release/report sweep --out crates/bench/goldens/` (then
//! drop the RUNBOOK/other artifacts) and commit the new golden with the
//! reason in the same commit.

use ckpt_bench::artifact::{canonical_document, first_divergence, parse_document};
use ckpt_bench::sweep::sweep_artifact;
use std::process::Command;

const GOLDEN: &str = include_str!("../goldens/SWEEP_c16.json");

#[test]
fn c16_artifact_matches_structural_golden() {
    let golden = parse_document(GOLDEN).expect("golden parses");
    assert!(golden.keys_sorted, "golden must be canonical (sorted keys)");
    let actual_doc = canonical_document(&sweep_artifact(&ckpt_bench::swept::c16_sweeps()));
    let actual = parse_document(&actual_doc).expect("artifact parses");
    if let Some(d) = first_divergence("c16", &golden.value, &actual.value) {
        panic!("C16 sweep artifact diverged from golden: {d}");
    }
    assert_eq!(actual_doc, GOLDEN, "artifact bytes moved without a structural diff");
}

#[test]
fn report_c16_is_pool_width_invariant() {
    // The determinism discipline's observable contract: the rendered
    // report's bytes cannot depend on how many workers encode parity
    // rows. Each width runs in its own process because the global pool
    // latches its size once. (The sweep-artifact counterpart of this
    // test lives in sweep_properties.rs.)
    let mut outputs = Vec::new();
    for width in ["1", "4", "8"] {
        let out = Command::new(env!("CARGO_BIN_EXE_report"))
            .env("CKPT_PAR_WORKERS", width)
            .arg("c16")
            .output()
            .expect("run report c16");
        assert!(out.status.success(), "report c16 failed at width {width}");
        outputs.push(out.stdout);
    }
    assert_eq!(outputs[0], outputs[1], "width 1 vs 4 outputs differ");
    assert_eq!(outputs[1], outputs[2], "width 4 vs 8 outputs differ");
}

#[test]
fn c16_coded_commit_bytes_stay_under_the_acceptance_floor() {
    // Acceptance: RS(4,2) commits at most 0.55x the replica-ingested
    // bytes of replication(3,2) on the same lineages — the bandwidth win
    // the engine exists for, measured, not assumed. CI greps the same
    // gate line; this test keeps the floor enforced even where the
    // report gate is skipped.
    let out = ckpt_bench::c16_erasure();
    let ratio = |needle: &str| -> f64 {
        out.lines()
            .find(|l| l.starts_with(needle))
            .and_then(|l| l.rsplit(':').next())
            .and_then(|v| v.trim().trim_end_matches('x').parse().ok())
            .unwrap_or_else(|| panic!("gate line '{needle}' missing from report c16"))
    };
    let r42 = ratio("gate: rs(4,2) commit bytes vs replicated(3,2):");
    assert!(
        r42 <= 0.55,
        "rs(4,2) must commit <= 0.55x replication(3,2) bytes, got {r42}"
    );
    let r83 = ratio("gate: rs(8,3) commit bytes vs replicated(5,3):");
    assert!(
        r83 <= 0.55,
        "rs(8,3) must commit <= 0.55x replication(5,3) bytes, got {r83}"
    );
    assert!(
        out.contains("gate: coded reads bit-exact within m losses and typed beyond: true"),
        "survivability gate must hold"
    );
}

#[test]
fn c16_reconstruction_repairs_persist_across_reads() {
    // The reconstruction table's second-read column is only honest if
    // read-repair actually persists: damage a shard group, read twice,
    // and require the second read to be decode- and repair-free.
    use ckpt_ec::ErasureStore;
    use ckpt_storage::StableStorage;
    use simos::cost::CostModel;

    let cost = CostModel::circa_2005();
    let payload: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 251) as u8).collect();
    let mut store = ErasureStore::fresh(4, 2);
    store.store("g/img", &payload, &cost).unwrap();
    store.replica_set().node(0).drop_key("g/img");
    store.replica_set().node(5).corrupt_key("g/img");
    let (first, t_first) = store.load("g/img", &cost).unwrap();
    assert_eq!(first, payload);
    assert_eq!(store.stats().repairs, 2);
    let (second, t_second) = store.load("g/img", &cost).unwrap();
    assert_eq!(second, payload);
    assert_eq!(store.stats().repairs, 2, "second read must not repair again");
    assert_eq!(store.stats().decodes, 1, "second read must not decode again");
    assert!(t_second < t_first, "repair traffic must not recur");
}
