//! Structural golden pin for C12, the quorum-replication experiment.
//!
//! The pin is no longer an opaque stdout hash: C12 runs on the sweep
//! engine and emits a canonical JSON artifact (`goldens/SWEEP_c12.json`),
//! and this test diffs the regenerated artifact against the golden
//! *structurally* — a mismatch names the first divergent path and both
//! values (`c12.survivability.jobs[3].metrics.outcome: "bit-exact" !=
//! "quorum lost: …"`) instead of "hash mismatch". Everything in the
//! artifact is deterministic by construction (replica admission and
//! fault checks run sequentially in replica order, backoff jitter is
//! seeded per (key, replica), latencies are virtual time), so the bytes
//! pin exactly at any pool width.
//!
//! If an *intentional* change lands, regenerate:
//! `./target/release/report sweep --out crates/bench/goldens/` (then
//! drop the RUNBOOK/other artifacts) and commit the new golden with the
//! reason in the same commit.

use ckpt_bench::artifact::{canonical_document, first_divergence, parse_document};
use ckpt_bench::sweep::sweep_artifact;

const GOLDEN: &str = include_str!("../goldens/SWEEP_c12.json");

#[test]
fn c12_artifact_matches_structural_golden() {
    let golden = parse_document(GOLDEN).expect("golden parses");
    assert!(golden.keys_sorted, "golden must be canonical (sorted keys)");
    let actual_doc = canonical_document(&sweep_artifact(&ckpt_bench::swept::c12_sweeps()));
    let actual = parse_document(&actual_doc).expect("artifact parses");
    if let Some(d) = first_divergence("c12", &golden.value, &actual.value) {
        panic!("C12 sweep artifact diverged from golden: {d}");
    }
    // The structural diff is the reviewable failure mode; byte-equality
    // is the full pin (canonical form makes the two equivalent).
    assert_eq!(actual_doc, GOLDEN, "artifact bytes moved without a structural diff");
}

#[test]
fn c12_reports_zero_incorrect_cells() {
    let out = ckpt_bench::c12_replication();
    assert!(
        !out.contains("false") && !out.contains("WRONG BYTES"),
        "survivability table has an incorrect cell:\n{out}"
    );
}
