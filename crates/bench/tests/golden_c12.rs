//! Golden regression pin for `report c12`, the quorum-replication
//! experiment.
//!
//! Everything in the report is deterministic by construction: replica
//! admission and fault checks run sequentially in replica order, backoff
//! jitter is seeded per (key, replica), and all latencies are virtual
//! time from the cost model — so the full output pins byte-for-byte. A
//! moved hash means the replication protocol's observable behavior
//! changed (quorum arithmetic, read-repair, retry schedule, or cost
//! accounting) and must be reviewed, not waved through.
//!
//! If an *intentional* change lands, regenerate: hash
//! `./target/release/report c12`'s stdout with the FNV-1a 64 below and
//! update both constants in the same commit.

const GOLDEN_FNV1A64: u64 = 0xaebb_2047_dc93_7b2d;
const GOLDEN_BYTES: usize = 2294;

fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[test]
fn report_c12_output_matches_pinned_baseline() {
    // Exactly what the report binary prints: c12_replication() + "\n".
    let out = format!("{}\n", ckpt_bench::c12_replication());
    assert_eq!(
        out.len(),
        GOLDEN_BYTES,
        "report c12 output length changed — replication report no longer baseline"
    );
    assert_eq!(
        fnv1a64(out.as_bytes()),
        GOLDEN_FNV1A64,
        "report c12 output bytes changed — replication report no longer baseline"
    );
}

#[test]
fn c12_reports_zero_incorrect_cells() {
    let out = ckpt_bench::c12_replication();
    assert!(
        !out.contains("false") && !out.contains("WRONG BYTES"),
        "survivability table has an incorrect cell:\n{out}"
    );
}
