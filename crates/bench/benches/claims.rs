//! Simulator throughput benches: how fast the substrate itself executes —
//! native app steps and VM instructions per host second.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simos::apps::{AppParams, NativeKind};
use simos::cost::CostModel;
use simos::Kernel;

fn bench_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator-throughput");
    g.throughput(Throughput::Elements(1));
    g.bench_function("native-app-50ms-virtual", |b| {
        b.iter(|| {
            let mut k = Kernel::new(CostModel::circa_2005());
            let mut params = AppParams::small();
            params.total_steps = u64::MAX;
            let _ = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
            k.run_for(50_000_000).unwrap();
            k.now()
        })
    });
    g.bench_function("vm-counter-100k-instrs", |b| {
        b.iter(|| {
            let mut k = Kernel::new(CostModel::circa_2005());
            let pid = k
                .spawn_vm(simos::asm::programs::counter(30_000), "counter")
                .unwrap();
            k.run_until_exit(pid).unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_substrate
}
criterion_main!(benches);
