//! Host-performance benches of the image format: encode, decode, CRC, and
//! page compression — the per-byte machinery every checkpoint pays.

use ckpt_image::{crc32, decode, encode, encode_page, CheckpointImage, ImageHeader, ImageKind,
    PageRecord, PolicyRecord, ProgramRecord, RegsRecord, SigRecord};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn synthetic_image(pages: usize, fill: u8) -> CheckpointImage {
    CheckpointImage {
        header: ImageHeader {
            pid: 1,
            seq: 1,
            parent_seq: 0,
            kind: ImageKind::Full,
            taken_at_ns: 0,
            mechanism: "bench".into(),
            node: 0,
        },
        regs: RegsRecord::default(),
        brk: 0,
        work_done: 0,
        policy: PolicyRecord { tag: 0, value: 0 },
        vmas: vec![],
        pages: (0..pages)
            .map(|i| {
                let data: Vec<u8> = (0..4096u32)
                    .map(|j| (j as u8).wrapping_mul(fill).wrapping_add(i as u8))
                    .collect();
                PageRecord::capture(i as u64, &data)
            })
            .collect(),
        fds: vec![],
        files: vec![],
        sig: SigRecord::default(),
        timers: vec![],
        program: ProgramRecord::Vm {
            name: "bench".into(),
            text: vec![0; 64],
        },
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("image-codec");
    for pages in [16usize, 256] {
        let img = synthetic_image(pages, 7);
        let bytes = encode(&img);
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_with_input(BenchmarkId::new("encode", pages), &img, |b, img| {
            b.iter(|| encode(std::hint::black_box(img)))
        });
        g.bench_with_input(BenchmarkId::new("decode", pages), &bytes, |b, bytes| {
            b.iter(|| decode(std::hint::black_box(bytes)).unwrap())
        });
    }
    g.finish();
}

fn bench_crc(c: &mut Criterion) {
    let data = vec![0xA5u8; 1 << 20];
    let mut g = c.benchmark_group("crc32");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("1MiB", |b| b.iter(|| crc32(std::hint::black_box(&data))));
    g.finish();
}

fn bench_compress(c: &mut Criterion) {
    let zero = vec![0u8; 4096];
    let constant = vec![7u8; 4096];
    let random: Vec<u8> = (0..4096u32).map(|i| (i * 131 + 7) as u8).collect();
    let mut g = c.benchmark_group("page-compress");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("zero-page", |b| b.iter(|| encode_page(std::hint::black_box(&zero))));
    g.bench_function("constant-page", |b| {
        b.iter(|| encode_page(std::hint::black_box(&constant)))
    });
    g.bench_function("random-page", |b| {
        b.iter(|| encode_page(std::hint::black_box(&random)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_codec, bench_crc, bench_compress
}
criterion_main!(benches);
