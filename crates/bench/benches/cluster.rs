//! Cluster-scale benches: the stochastic Monte-Carlo model's throughput
//! (it must be cheap enough to sweep 65,536-node configurations, C7b).

use ckpt_cluster::stochastic_run;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const SEC: u64 = 1_000_000_000;

fn bench_stochastic(c: &mut Criterion) {
    let mut g = c.benchmark_group("stochastic-run");
    for n in [1_024u64, 65_536] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                stochastic_run(
                    n,
                    36_000 * SEC,
                    10 * SEC,
                    SEC / 2,
                    5 * SEC,
                    3_600 * SEC,
                    42,
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_stochastic
}
criterion_main!(benches);
