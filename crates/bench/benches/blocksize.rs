//! Block-hash scan throughput: the CPU side of probabilistic
//! checkpointing (C3) — hashing rate vs block size on the host.

use ckpt_core::tracker::fnv1a64;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_scan(c: &mut Criterion) {
    let data = vec![0x5Au8; 1 << 20];
    let mut g = c.benchmark_group("block-hash-scan");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for block in [64usize, 256, 1024, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(block), &block, |b, &block| {
            b.iter(|| {
                let mut acc = 0u64;
                for chunk in data.chunks(block) {
                    acc ^= fnv1a64(std::hint::black_box(chunk));
                }
                acc
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scan
}
criterion_main!(benches);
