//! One full checkpoint per mechanism family, measured in host time
//! (the virtual-time comparison is experiment C4 in the report binary).

use ckpt_bench::experiments;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_families(c: &mut Criterion) {
    // The heavy lifting (kernel construction, app run, checkpoint) is the
    // same path the report uses; bench a representative pair.
    let mut g = c.benchmark_group("mechanism-checkpoint");
    g.sample_size(10);
    g.bench_function("c1-gather-experiment", |b| {
        b.iter(experiments::c1_gather)
    });
    g.bench_function("c5-fork-vs-stw-experiment", |b| {
        b.iter(experiments::c5_fork)
    });
    g.finish();
}

criterion_group!(benches, bench_families);
criterion_main!(benches);
