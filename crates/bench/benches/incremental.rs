//! End-to-end checkpoint benches on the simulator (host time): full vs
//! incremental checkpoints of the same process — reproduction target C2's
//! machinery under a wall-clock lens.

use ckpt_core::mechanism::KernelCkptEngine;
use ckpt_core::{shared_storage, TrackerKind};
use ckpt_storage::LocalDisk;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simos::apps::{AppParams, NativeKind};
use simos::cost::CostModel;
use simos::Kernel;

fn checkpoint_once(tracker: TrackerKind) {
    let mut k = Kernel::new(CostModel::circa_2005());
    let mut params = AppParams::small();
    params.mem_bytes = 512 * 1024;
    params.total_steps = u64::MAX;
    let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
    k.run_for(2_000_000).unwrap();
    let mut e = KernelCkptEngine::new("bench", "b", shared_storage(LocalDisk::new(1 << 32)), tracker);
    k.freeze_process(pid).unwrap();
    e.checkpoint_in_kernel(&mut k, pid).unwrap();
    k.thaw_process(pid).unwrap();
    k.run_for(500_000).unwrap();
    k.freeze_process(pid).unwrap();
    e.checkpoint_in_kernel(&mut k, pid).unwrap();
}

fn bench_trackers(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint-pair");
    for (label, tk) in [
        ("full", TrackerKind::FullOnly),
        ("kernel-page", TrackerKind::KernelPage),
        ("prob-256", TrackerKind::ProbBlock { block: 256 }),
        ("hw-line", TrackerKind::HardwareLine),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &tk, |b, tk| {
            b.iter(|| checkpoint_once(*tk))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_trackers
}
criterion_main!(benches);
