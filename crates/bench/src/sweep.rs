//! The deterministic sweep engine: declarative plans expanded into seeded
//! jobs, fanned out on `ckpt-par`, rolled up into canonical JSON
//! artifacts.
//!
//! A [`SweepPlan`] is a named grid over typed axes (mechanism, backend,
//! geometry, node count, …) plus an optional cell filter for
//! non-rectangular grids (e.g. `lost <= n`). [`SweepPlan::expand`]
//! enumerates the grid row-major in axis-declaration order; every job gets
//! a seed derived from the plan name, the plan's base seed, and the job's
//! *sorted* canonical config — so seeds are stable under axis reordering
//! and independent of expansion position.
//!
//! [`run_sweep`] fans the jobs out on the global `ckpt-par` pool (ordered
//! merge, so results land in expansion order at any width) and rolls the
//! per-job metrics into a [`SweepRun`]: the canonical `SweepReport` JSON
//! document plus the in-order job list the text renderers consume. The
//! report's `jobs` array is sorted by canonical config, which makes the
//! artifact bytes invariant under *any* job submission order, not just the
//! pool's — the property tests shuffle submissions to prove it.
//!
//! Wall-clock is measured per cell but kept strictly out of the canonical
//! document (it would break byte-identity); it rides in
//! [`SweepRun::cell_walls`] for the CI per-cell perf printout.

use crate::artifact::{canonical_document, fnv1a64, fnv1a64_hex, Json};
use std::collections::BTreeMap;
use std::time::Instant;

/// Version tag embedded in every artifact so a schema change is visible
/// in the artifact itself, not just in the code that wrote it.
pub const ENGINE: &str = "ckpt-sweep/1";

/// One coordinate on one axis. Integers and strings cover every axis the
/// experiments sweep (counts, geometries, mechanism/backend/app labels).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum AxisValue {
    Int(i64),
    Str(String),
}

impl AxisValue {
    fn to_json(&self) -> Json {
        match self {
            AxisValue::Int(v) => Json::from(*v),
            AxisValue::Str(s) => Json::Str(s.clone()),
        }
    }

    /// Compact label for timing tables and diff messages.
    pub fn label(&self) -> String {
        match self {
            AxisValue::Int(v) => v.to_string(),
            AxisValue::Str(s) => s.clone(),
        }
    }
}

/// A named axis and its swept values, in sweep order.
#[derive(Debug, Clone)]
pub struct Axis {
    pub name: String,
    pub values: Vec<AxisValue>,
}

/// One job's coordinates: axis name → value, sorted by axis name (a
/// `BTreeMap`, so the canonical form is independent of axis declaration
/// order).
pub type Config = BTreeMap<String, AxisValue>;

type Filter = dyn Fn(&Config) -> bool + Sync;

/// A declarative sweep: name, seed, typed axes, optional cell filter.
pub struct SweepPlan {
    name: String,
    seed: u64,
    axes: Vec<Axis>,
    filter: Option<Box<Filter>>,
}

impl SweepPlan {
    pub fn new(name: impl Into<String>) -> Self {
        SweepPlan {
            name: name.into(),
            seed: 0,
            axes: Vec::new(),
            filter: None,
        }
    }

    /// Base seed mixed into every job seed (same plan + same seed ⇒ the
    /// same jobs, bit for bit).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    #[must_use]
    pub fn axis_ints(mut self, name: &str, values: &[i64]) -> Self {
        self.axes.push(Axis {
            name: name.into(),
            values: values.iter().map(|&v| AxisValue::Int(v)).collect(),
        });
        self
    }

    #[must_use]
    pub fn axis_strs(mut self, name: &str, values: &[&str]) -> Self {
        self.axes.push(Axis {
            name: name.into(),
            values: values
                .iter()
                .map(|&v| AxisValue::Str(v.to_string()))
                .collect(),
        });
        self
    }

    /// Keep only cells the predicate accepts (non-rectangular grids such
    /// as `lost <= n`). The filter sees the sorted config.
    #[must_use]
    pub fn filter(mut self, f: impl Fn(&Config) -> bool + Sync + 'static) -> Self {
        self.filter = Some(Box::new(f));
        self
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Full grid cardinality before filtering.
    pub fn unfiltered_cardinality(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Expand the grid row-major in axis-declaration order (first axis
    /// slowest), filtered. Every job's seed depends only on (plan name,
    /// plan seed, sorted config) — never on expansion position or axis
    /// order.
    pub fn expand(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::new();
        let total = self.unfiltered_cardinality();
        if self.axes.is_empty() || total == 0 {
            return jobs;
        }
        for cell in 0..total {
            let mut rem = cell;
            let mut config = Config::new();
            // Row-major: the last-declared axis spins fastest.
            for axis in self.axes.iter().rev() {
                let idx = rem % axis.values.len();
                rem /= axis.values.len();
                config.insert(axis.name.clone(), axis.values[idx].clone());
            }
            if let Some(f) = &self.filter {
                if !f(&config) {
                    continue;
                }
            }
            let seed = job_seed(&self.name, self.seed, &config);
            jobs.push(JobSpec {
                plan: self.name.clone(),
                index: jobs.len(),
                seed,
                config,
            });
        }
        jobs
    }

    /// The plan echoed as canonical JSON: axes (sorted by name), the
    /// declared sweep order, and the base seed.
    pub fn plan_json(&self) -> Json {
        Json::obj(vec![
            (
                "axes",
                Json::Obj(
                    self.axes
                        .iter()
                        .map(|a| {
                            (
                                a.name.clone(),
                                Json::Arr(a.values.iter().map(|v| v.to_json()).collect()),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "axis_order",
                Json::Arr(
                    self.axes
                        .iter()
                        .map(|a| Json::Str(a.name.clone()))
                        .collect(),
                ),
            ),
            ("name", Json::Str(self.name.clone())),
            ("seed", Json::from(self.seed)),
        ])
    }

    /// Hash of the canonical plan document.
    pub fn plan_hash(&self) -> String {
        fnv1a64_hex(canonical_document(&self.plan_json()).as_bytes())
    }
}

fn config_json(config: &Config) -> Json {
    Json::Obj(
        config
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json()))
            .collect(),
    )
}

fn job_seed(plan: &str, base_seed: u64, config: &Config) -> u64 {
    let mut material = format!("{plan}\u{0}{base_seed}\u{0}");
    material.push_str(&canonical_document(&config_json(config)));
    fnv1a64(material.as_bytes())
}

/// One expanded, seeded job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    pub plan: String,
    /// Position in the plan's expansion order (what the text renderers
    /// iterate in).
    pub index: usize,
    pub seed: u64,
    pub config: Config,
}

impl JobSpec {
    pub fn config_json(&self) -> Json {
        config_json(&self.config)
    }

    pub fn config_hash(&self) -> String {
        fnv1a64_hex(canonical_document(&self.config_json()).as_bytes())
    }

    /// Integer axis accessor; panics on a missing axis — a sweep job
    /// asking for an axis its plan doesn't declare is a bug, not an error.
    pub fn int(&self, axis: &str) -> i64 {
        match self.config.get(axis) {
            Some(AxisValue::Int(v)) => *v,
            other => panic!("job in plan '{}': int axis '{axis}' is {other:?}", self.plan),
        }
    }

    pub fn str(&self, axis: &str) -> &str {
        match self.config.get(axis) {
            Some(AxisValue::Str(s)) => s,
            other => panic!("job in plan '{}': str axis '{axis}' is {other:?}", self.plan),
        }
    }

    /// `axis=value,axis=value` in sorted-axis order — the cell label the
    /// perf printout attributes wall-clock to.
    pub fn label(&self) -> String {
        self.config
            .iter()
            .map(|(k, v)| format!("{k}={}", v.label()))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// One finished job: its spec and the metrics object its closure
/// returned.
#[derive(Debug, Clone)]
pub struct JobResult {
    pub spec: JobSpec,
    pub metrics: Json,
}

/// A finished sweep: the canonical report document plus everything the
/// renderers and the perf printout need.
pub struct SweepRun {
    pub plan_name: String,
    pub plan_hash: String,
    /// The canonical `SweepReport` document for this plan.
    pub report: Json,
    /// Jobs in expansion order (render order).
    pub jobs: Vec<JobResult>,
    /// Per-cell wall-clock, expansion order — deliberately *not* part of
    /// [`SweepRun::report`] (wall-clock is not deterministic).
    pub cell_walls: Vec<(String, f64)>,
}

impl SweepRun {
    /// Canonical artifact bytes for this plan's report.
    pub fn canonical(&self) -> String {
        canonical_document(&self.report)
    }
}

/// Run every job of `plan` on the global `ckpt-par` pool.
pub fn run_sweep(plan: &SweepPlan, job: impl Fn(&JobSpec) -> Json + Sync) -> SweepRun {
    run_jobs(plan, plan.expand(), job)
}

/// Run an explicit job list (the property tests pass shuffled
/// permutations). The rollup sorts by canonical config, so the report
/// bytes are identical for any permutation of the same jobs.
pub fn run_jobs(
    plan: &SweepPlan,
    specs: Vec<JobSpec>,
    job: impl Fn(&JobSpec) -> Json + Sync,
) -> SweepRun {
    let results: Vec<(JobSpec, Json, f64)> = ckpt_par::global().par_map_ordered(
        specs,
        || (),
        |_, _, spec| {
            let t0 = Instant::now();
            let metrics = job(&spec);
            let wall = t0.elapsed().as_secs_f64();
            (spec, metrics, wall)
        },
    );
    let mut jobs: Vec<JobResult> = results
        .iter()
        .map(|(spec, metrics, _)| JobResult {
            spec: spec.clone(),
            metrics: metrics.clone(),
        })
        .collect();
    jobs.sort_by_key(|j| j.spec.index);
    let cell_walls: Vec<(String, f64)> = {
        let mut walls: Vec<(usize, String, f64)> = results
            .iter()
            .map(|(spec, _, wall)| (spec.index, spec.label(), *wall))
            .collect();
        walls.sort_by_key(|(i, _, _)| *i);
        walls.into_iter().map(|(_, l, w)| (l, w)).collect()
    };

    // The artifact's jobs array sorts by canonical config — stable under
    // any submission order.
    let mut artifact_jobs: Vec<&JobResult> = jobs.iter().collect();
    artifact_jobs.sort_by_key(|j| canonical_document(&j.spec.config_json()));
    let report = Json::obj(vec![
        ("engine", Json::from(ENGINE)),
        (
            "jobs",
            Json::Arr(
                artifact_jobs
                    .iter()
                    .map(|j| {
                        Json::obj(vec![
                            ("config", j.spec.config_json()),
                            ("config_hash", Json::Str(j.spec.config_hash())),
                            ("index", Json::from(j.spec.index)),
                            ("metrics", j.metrics.clone()),
                            ("seed", Json::from(j.spec.seed)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("n_jobs", Json::from(jobs.len())),
        ("plan", plan.plan_json()),
        ("plan_hash", Json::Str(plan.plan_hash())),
    ]);
    SweepRun {
        plan_name: plan.name().to_string(),
        plan_hash: plan.plan_hash(),
        report,
        jobs,
        cell_walls,
    }
}

/// Combine one experiment's sweep runs into its artifact document:
/// an object keyed by plan name (`SWEEP_c16.json` holds every C16 plan).
pub fn sweep_artifact(runs: &[SweepRun]) -> Json {
    Json::Obj(
        runs.iter()
            .map(|r| (r.plan_name.clone(), r.report.clone()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> SweepPlan {
        SweepPlan::new("t")
            .seed(7)
            .axis_ints("n", &[3, 5])
            .axis_ints("lost", &[0, 1, 2, 3, 4, 5])
            .filter(|c| match (c.get("n"), c.get("lost")) {
                (Some(AxisValue::Int(n)), Some(AxisValue::Int(l))) => l <= n,
                _ => false,
            })
    }

    #[test]
    fn expansion_is_row_major_and_filtered() {
        let jobs = plan().expand();
        // n=3 keeps lost 0..=3, n=5 keeps lost 0..=5.
        assert_eq!(jobs.len(), 4 + 6);
        assert_eq!(jobs[0].int("n"), 3);
        assert_eq!(jobs[0].int("lost"), 0);
        assert_eq!(jobs[3].int("lost"), 3);
        assert_eq!(jobs[4].int("n"), 5);
        assert_eq!(jobs.last().unwrap().int("lost"), 5);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, i);
        }
    }

    #[test]
    fn seeds_depend_on_config_not_position() {
        let a = plan().expand();
        // Same axes declared in the opposite order: different expansion
        // order, same (config → seed) mapping.
        let b = SweepPlan::new("t")
            .seed(7)
            .axis_ints("lost", &[0, 1, 2, 3, 4, 5])
            .axis_ints("n", &[3, 5])
            .filter(|c| match (c.get("n"), c.get("lost")) {
                (Some(AxisValue::Int(n)), Some(AxisValue::Int(l))) => l <= n,
                _ => false,
            })
            .expand();
        let key = |j: &JobSpec| canonical_document(&j.config_json());
        let mut am: Vec<(String, u64)> = a.iter().map(|j| (key(j), j.seed)).collect();
        let mut bm: Vec<(String, u64)> = b.iter().map(|j| (key(j), j.seed)).collect();
        am.sort();
        bm.sort();
        assert_eq!(am, bm);
        // And a different base seed moves every job seed.
        let c = plan().seed(8).expand();
        assert!(a.iter().zip(&c).all(|(x, y)| x.seed != y.seed));
    }

    #[test]
    fn report_bytes_invariant_under_submission_order() {
        let p = plan();
        let job = |s: &JobSpec| {
            Json::obj(vec![
                ("sum", Json::from((s.int("n") + s.int("lost")) as u64)),
                ("seed_echo", Json::from(s.seed)),
            ])
        };
        let fwd = run_jobs(&p, p.expand(), job).canonical();
        let mut rev_specs = p.expand();
        rev_specs.reverse();
        let rev = run_jobs(&p, rev_specs, job).canonical();
        assert_eq!(fwd, rev);
    }
}
