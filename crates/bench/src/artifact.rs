//! Canonical JSON artifacts and structural golden verification.
//!
//! Every sweep artifact the bench suite emits goes through this module so
//! the bytes are a pure function of the data: object keys sort, floats
//! serialize at a fixed nine decimal places, indentation is fixed, and the
//! document ends in exactly one newline. Identical inputs therefore produce
//! byte-identical artifacts at any pool width and any job order — which is
//! what lets CI diff them meaningfully and lets goldens pin *structure*
//! instead of one opaque hash over stdout.
//!
//! The three pieces:
//!
//! * [`Json`] + [`canonical_document`] — the canonical writer;
//! * [`parse_document`] — a dependency-free parser (the vendored-shims
//!   policy forbids serde) that also reports whether the input's object
//!   keys were already sorted;
//! * [`first_divergence`] — the structural differ: on mismatch it names
//!   the first divergent path and both values
//!   (`c16.survivability.jobs[1].metrics.outcome: "bit-exact" != …`)
//!   instead of "hash mismatch".

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// FNV-1a 64 — the repo's standard cheap digest. The golden tests, the
/// sweep engine's plan/config hashes, and the RunBook artifact hashes all
/// share this one definition instead of re-deriving it per test file.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a 64 rendered the way artifacts embed it: 16 lowercase hex digits.
pub fn fnv1a64_hex(data: &[u8]) -> String {
    format!("{:016x}", fnv1a64(data))
}

/// A JSON value with canonical serialization. Objects are [`BTreeMap`]s,
/// so key order is sorted by construction and cannot drift.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Negative integers (serialized exactly).
    Int(i64),
    /// Non-negative integers (serialized exactly).
    UInt(u64),
    /// Finite floats; canonical form is fixed nine-decimal rounding.
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from `(key, value)` pairs (keys sort themselves).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Shorthand for the object this value is, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(v) => Some(*v),
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Fetch `path` below an object value (`"a.b.c"`, object keys only).
    pub fn get(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = cur.as_obj()?.get(seg)?;
        }
        Some(cur)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(u64::from(v))
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        if v >= 0 {
            Json::UInt(v as u64)
        } else {
            Json::Int(v)
        }
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// Canonical scalar rendering — also what the differ compares, so two
/// floats are "equal" exactly when their canonical bytes are.
fn write_scalar(out: &mut String, j: &Json) {
    match j {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Json::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Json::UInt(v) => {
            let _ = write!(out, "{v}");
        }
        Json::Float(v) => {
            debug_assert!(v.is_finite(), "canonical JSON forbids NaN/inf");
            let _ = write!(out, "{v:.9}");
        }
        Json::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Json::Arr(_) | Json::Obj(_) => unreachable!("write_scalar on container"),
    }
}

fn write_value(out: &mut String, j: &Json, indent: usize) {
    match j {
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&"  ".repeat(indent + 1));
                write_value(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Json::Obj(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                out.push_str(&"  ".repeat(indent + 1));
                write_scalar(&mut *out, &Json::Str(k.clone()));
                out.push_str(": ");
                write_value(out, v, indent + 1);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        scalar => write_scalar(out, scalar),
    }
}

/// One value rendered compactly (scalars verbatim, containers summarized)
/// for diff messages.
fn render_short(j: &Json) -> String {
    match j {
        Json::Arr(items) => format!("[…{} items]", items.len()),
        Json::Obj(map) => format!("{{…{} keys}}", map.len()),
        scalar => {
            let mut s = String::new();
            write_scalar(&mut s, scalar);
            s
        }
    }
}

/// Canonical document: pretty-printed with two-space indentation, sorted
/// keys, nine-decimal floats, and a trailing newline. This is the byte
/// form every artifact is written in and every golden pins.
pub fn canonical_document(j: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, j, 0);
    out.push('\n');
    out
}

/// What [`parse_document`] returns: the value plus whether every object in
/// the input already had its keys in sorted order (the canonical-form
/// check the schema tests assert).
pub struct Parsed {
    pub value: Json,
    pub keys_sorted: bool,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    keys_sorted: bool,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or("unterminated escape")? {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                let mut last_key: Option<String> = None;
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    if let Some(prev) = &last_key {
                        if *prev >= key {
                            self.keys_sorted = false;
                        }
                    }
                    last_key = Some(key.clone());
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(map));
                        }
                        other => return Err(format!("expected ',' or '}}', got {other:?}")),
                    }
                }
            }
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        other => return Err(format!("expected ',' or ']', got {other:?}")),
                    }
                }
            }
            b'"' => Ok(Json::Str(self.parse_string()?)),
            b't' => self.parse_lit("true", Json::Bool(true)),
            b'f' => self.parse_lit("false", Json::Bool(false)),
            b'n' => self.parse_lit("null", Json::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' => {
                    float = true;
                    self.pos += 1;
                }
                b'-' if float => self.pos += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if text.is_empty() || text == "-" {
            return Err(format!("bad number at byte {start}"));
        }
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|e| format!("bad float '{text}': {e}"))
        } else if let Some(neg) = text.strip_prefix('-') {
            neg.parse::<i64>()
                .map(|v| Json::Int(-v))
                .map_err(|e| format!("bad int '{text}': {e}"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|e| format!("bad int '{text}': {e}"))
        }
    }
}

/// Parse a JSON document (any whitespace style). Errors carry the byte
/// offset, which is all a deterministic artifact needs.
pub fn parse_document(text: &str) -> Result<Parsed, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        keys_sorted: true,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(Parsed {
        value,
        keys_sorted: p.keys_sorted,
    })
}

/// The first structural divergence between two documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Dotted path from the given root, array indices in brackets:
    /// `c16.survivability.jobs[1].metrics.outcome`.
    pub path: String,
    pub expected: String,
    pub actual: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {} != {}", self.path, self.expected, self.actual)
    }
}

/// Structural diff: walk both trees in canonical order and report the
/// first place they disagree — the named path and both values — or `None`
/// when the trees are canonically identical.
pub fn first_divergence(root: &str, expected: &Json, actual: &Json) -> Option<Divergence> {
    fn walk(path: &str, e: &Json, a: &Json) -> Option<Divergence> {
        match (e, a) {
            (Json::Obj(em), Json::Obj(am)) => {
                let keys: std::collections::BTreeSet<&String> =
                    em.keys().chain(am.keys()).collect();
                for k in keys {
                    let sub = format!("{path}.{k}");
                    match (em.get(k), am.get(k)) {
                        (Some(ev), Some(av)) => {
                            if let Some(d) = walk(&sub, ev, av) {
                                return Some(d);
                            }
                        }
                        (Some(ev), None) => {
                            return Some(Divergence {
                                path: sub,
                                expected: render_short(ev),
                                actual: "<absent>".into(),
                            })
                        }
                        (None, Some(av)) => {
                            return Some(Divergence {
                                path: sub,
                                expected: "<absent>".into(),
                                actual: render_short(av),
                            })
                        }
                        (None, None) => unreachable!(),
                    }
                }
                None
            }
            (Json::Arr(ea), Json::Arr(aa)) => {
                for (i, (ev, av)) in ea.iter().zip(aa.iter()).enumerate() {
                    if let Some(d) = walk(&format!("{path}[{i}]"), ev, av) {
                        return Some(d);
                    }
                }
                if ea.len() != aa.len() {
                    let i = ea.len().min(aa.len());
                    return Some(Divergence {
                        path: format!("{path}[{i}]"),
                        expected: ea.get(i).map(render_short).unwrap_or_else(|| "<absent>".into()),
                        actual: aa.get(i).map(render_short).unwrap_or_else(|| "<absent>".into()),
                    });
                }
                None
            }
            (e, a) => {
                // Scalars (or scalar-vs-container): equal iff the canonical
                // bytes are.
                let es = render_short(e);
                let as_ = render_short(a);
                if es != as_ {
                    return Some(Divergence {
                        path: path.to_string(),
                        expected: es,
                        actual: as_,
                    });
                }
                None
            }
        }
    }
    walk(root, expected, actual)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Json {
        Json::obj(vec![
            ("zeta", Json::from(1u64)),
            ("alpha", Json::from("x")),
            (
                "nested",
                Json::obj(vec![
                    ("pi", Json::from(std::f64::consts::PI)),
                    ("flag", Json::from(true)),
                ]),
            ),
            ("arr", Json::Arr(vec![Json::from(-4i64), Json::Null])),
        ])
    }

    #[test]
    fn canonical_keys_sort_and_floats_round() {
        let text = canonical_document(&doc());
        // Keys in sorted order regardless of construction order.
        let alpha = text.find("\"alpha\"").unwrap();
        let arr = text.find("\"arr\"").unwrap();
        let nested = text.find("\"nested\"").unwrap();
        let zeta = text.find("\"zeta\"").unwrap();
        assert!(alpha < arr && arr < nested && nested < zeta);
        // Nine-decimal float rounding.
        assert!(text.contains("\"pi\": 3.141592654"), "{text}");
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn parse_is_canonical_fixed_point() {
        let text = canonical_document(&doc());
        let parsed = parse_document(&text).expect("parse");
        assert!(parsed.keys_sorted);
        assert_eq!(canonical_document(&parsed.value), text);
    }

    #[test]
    fn parser_flags_unsorted_keys() {
        let parsed = parse_document("{\"b\": 1, \"a\": 2}").expect("parse");
        assert!(!parsed.keys_sorted);
    }

    #[test]
    fn diff_names_first_divergent_path_and_both_values() {
        let mut a = doc();
        let b = doc();
        if let Json::Obj(m) = &mut a {
            if let Some(Json::Obj(n)) = m.get_mut("nested") {
                n.insert("pi".into(), Json::from(2.5));
            }
        }
        let d = first_divergence("root", &b, &a).expect("divergence");
        assert_eq!(d.path, "root.nested.pi");
        assert_eq!(d.expected, "3.141592654");
        assert_eq!(d.actual, "2.500000000");
        assert!(first_divergence("root", &b, &b).is_none());
    }

    #[test]
    fn diff_reports_length_mismatch_and_missing_keys() {
        let short = Json::obj(vec![("a", Json::Arr(vec![Json::from(1u64)]))]);
        let long = Json::obj(vec![(
            "a",
            Json::Arr(vec![Json::from(1u64), Json::from(2u64)]),
        )]);
        let d = first_divergence("r", &short, &long).expect("divergence");
        assert_eq!(d.path, "r.a[1]");
        assert_eq!(d.expected, "<absent>");
        let gone = Json::obj(vec![]);
        let d = first_divergence("r", &short, &gone).expect("divergence");
        assert_eq!(d.path, "r.a");
        assert_eq!(d.actual, "<absent>");
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a 64 of the empty string is the offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64_hex(b"a"), format!("{:016x}", fnv1a64(b"a")));
    }
}
