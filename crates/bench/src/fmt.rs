//! Tiny text-table formatter for experiment output.

/// Format a table: header row + data rows, columns padded.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("| {:<w$} ", h, w = widths[i]));
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            out.push_str(&format!("| {:<w$} ", cell, w = widths[i]));
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Human-readable nanoseconds.
pub fn ns(v: u64) -> String {
    if v >= 1_000_000_000 {
        format!("{:.2} s", v as f64 / 1e9)
    } else if v >= 1_000_000 {
        format!("{:.2} ms", v as f64 / 1e6)
    } else if v >= 1_000 {
        format!("{:.1} us", v as f64 / 1e3)
    } else {
        format!("{v} ns")
    }
}

/// Human-readable bytes.
pub fn bytes(v: u64) -> String {
    if v >= 1 << 20 {
        format!("{:.2} MiB", v as f64 / (1u64 << 20) as f64)
    } else if v >= 1 << 10 {
        format!("{:.1} KiB", v as f64 / 1024.0)
    } else {
        format!("{v} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_pads_columns() {
        let t = table(
            &["a", "long-header"],
            &[vec!["xxxx".into(), "y".into()]],
        );
        assert!(t.contains("| xxxx | y           |"));
        assert!(t.lines().count() >= 5);
    }

    #[test]
    fn humanized_units() {
        assert_eq!(ns(50), "50 ns");
        assert_eq!(ns(1_500), "1.5 us");
        assert_eq!(ns(2_500_000), "2.50 ms");
        assert_eq!(ns(3_000_000_000), "3.00 s");
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(2048), "2.0 KiB");
        assert_eq!(bytes(3 << 20), "3.00 MiB");
    }
}
