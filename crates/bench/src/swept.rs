//! C12, C14 and C16 ported onto the sweep engine.
//!
//! Each experiment is a batch of [`SweepPlan`]s: the parameter grid the
//! old hand-rolled loops walked, now declared as typed axes (with filters
//! for the non-rectangular parts, e.g. `lost <= n`). The job closures
//! measure exactly what the old loop bodies measured and return the
//! numbers as canonical JSON metrics; the text renderers rebuild the
//! human tables from those metrics, byte-identical to the pre-port
//! output, so `report c12/c14/c16` never moved while the goldens became
//! structural.
//!
//! The split matters: the *artifact* (SWEEP_cXX.json) is the canonical,
//! diffable record CI compares structurally; the *text* is a projection
//! of it for humans. Anything the text shows is derived from metrics in
//! the artifact — never measured twice.

use crate::artifact::Json;
use crate::experiments::{fresh_kernel, run_steps};
use crate::fmt::{bytes, ns, table};
use crate::sweep::{run_sweep, AxisValue, JobResult, JobSpec, SweepPlan, SweepRun};
use ckpt_cluster::{
    scale_round, Cluster, FailureConfig, MpiJob, ScaleConfig, ScalePoint, ShardedCoordinator,
};
use ckpt_core::{capture_image, CaptureOptions, TrackerKind};
use ckpt_ec::ErasureStore;
use ckpt_replica::ReplicatedStore;
use ckpt_storage::{ImageKey, StableStorage, StorageError};
use simos::apps::{AppParams, NativeKind};
use simos::cost::CostModel;

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

/// The deterministic byte pattern every storage experiment commits (a
/// realistic image payload; 251 is prime so no page-aligned repetition).
fn pattern_payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

/// One guest's checkpoint lineage: one full + three incremental images,
/// captured uncompressed (same generator C13 uses — deterministic, so
/// identical guests produce byte-identical lineages).
fn lineage(kind: NativeKind) -> Vec<Vec<u8>> {
    let mut k = fresh_kernel();
    let mut p = AppParams::small();
    p.mem_bytes = 128 * 1024;
    p.total_steps = u64::MAX;
    let pid = k.spawn_native(kind, p).expect("spawn");
    (0..4u64)
        .map(|seq| {
            run_steps(&mut k, pid, 8);
            let mut opts = CaptureOptions::full("c16", seq);
            opts.compress = false;
            let img = capture_image(&mut k, pid, &opts).expect("capture");
            ckpt_image::encode(&img)
        })
        .collect()
}

/// Guest-app axis label → kind (the labels are the `Debug` names, which
/// is also what the tables print).
fn app_kind(label: &str) -> NativeKind {
    NativeKind::ALL
        .into_iter()
        .find(|k| format!("{k:?}") == label)
        .unwrap_or_else(|| panic!("unknown guest app label '{label}'"))
}

/// `rs(4,2)` / `repl(3,2)` → the two geometry numbers.
fn parse_geometry(label: &str) -> (usize, usize) {
    let inner = label
        .split('(')
        .nth(1)
        .map(|s| s.trim_end_matches(')'))
        .unwrap_or_else(|| panic!("geometry label '{label}' has no (k,m)"));
    let mut it = inner.split(',');
    let a = it.next().and_then(|v| v.parse().ok());
    let b = it.next().and_then(|v| v.parse().ok());
    match (a, b) {
        (Some(a), Some(b)) => (a, b),
        _ => panic!("geometry label '{label}' did not parse"),
    }
}

fn mu(j: &JobResult, key: &str) -> u64 {
    j.metrics
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("plan '{}': metric '{key}' missing or not u64", j.spec.plan))
}

fn mf(j: &JobResult, key: &str) -> f64 {
    j.metrics
        .get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("plan '{}': metric '{key}' missing or not f64", j.spec.plan))
}

fn ms<'a>(j: &'a JobResult, key: &str) -> &'a str {
    j.metrics
        .get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("plan '{}': metric '{key}' missing or not str", j.spec.plan))
}

fn mb(j: &JobResult, key: &str) -> bool {
    j.metrics
        .get(key)
        .and_then(Json::as_bool)
        .unwrap_or_else(|| panic!("plan '{}': metric '{key}' missing or not bool", j.spec.plan))
}

fn named<'a>(runs: &'a [SweepRun], name: &str) -> &'a SweepRun {
    runs.iter()
        .find(|r| r.plan_name == name)
        .unwrap_or_else(|| panic!("missing sweep run '{name}'"))
}

/// Every swept experiment in one batch: (experiment, artifact file,
/// runs). The `report sweep` subcommand writes these plus the RunBook;
/// the structural goldens pin each artifact.
pub fn sweep_batch() -> Vec<(&'static str, String, Vec<SweepRun>)> {
    vec![
        ("c12", "SWEEP_c12.json".to_string(), c12_sweeps()),
        ("c14", "SWEEP_c14.json".to_string(), c14_sweeps()),
        ("c16", "SWEEP_c16.json".to_string(), c16_sweeps()),
    ]
}

// ---------------------------------------------------------------------
// C12 — quorum-replicated stable storage, on the engine
// ---------------------------------------------------------------------

fn c12_survivability_plan() -> SweepPlan {
    SweepPlan::new("c12.survivability")
        .seed(0xc12)
        .axis_ints("n", &[3, 5])
        .axis_ints("lost", &[0, 1, 2, 3, 4, 5])
        .filter(|c| {
            matches!(
                (c.get("n"), c.get("lost")),
                (Some(AxisValue::Int(n)), Some(AxisValue::Int(l))) if l <= n
            )
        })
}

fn c12_survivability_job(spec: &JobSpec) -> Json {
    let cost = CostModel::circa_2005();
    let n = spec.int("n") as usize;
    let w = n / 2 + 1;
    let lost = spec.int("lost") as usize;
    let payload = pattern_payload(256 * 1024);
    let mut store = ReplicatedStore::fresh(n, w);
    store.store("c12/img", &payload, &cost).unwrap();
    let set = store.replica_set();
    for i in 0..lost {
        set.node(i).fail();
    }
    let outcome = match store.load("c12/img", &cost) {
        Ok((data, _)) if data == payload => "bit-exact".to_string(),
        Ok(_) => "WRONG BYTES".to_string(),
        Err(e @ StorageError::QuorumLost { .. }) => e.to_string(),
        Err(e) => format!("unexpected: {e}"),
    };
    let correct = if lost <= n - w {
        outcome == "bit-exact"
    } else {
        outcome.starts_with("quorum lost")
    };
    Json::obj(vec![
        ("correct", Json::from(correct)),
        ("outcome", Json::Str(outcome)),
        ("quorum_w", Json::from(w)),
        ("tolerated", Json::from(n - w)),
    ])
}

fn c12_latency_plan() -> SweepPlan {
    SweepPlan::new("c12.latency")
        .seed(0xc12)
        .axis_ints("n", &[1, 3, 5, 7])
}

fn c12_latency_job(spec: &JobSpec) -> Json {
    let cost = CostModel::circa_2005();
    let n = spec.int("n") as usize;
    let w = n / 2 + 1;
    let payload = pattern_payload(256 * 1024);
    let mut store = ReplicatedStore::fresh(n, w);
    let r = store.store("c12/img", &payload, &cost).unwrap();
    Json::obj(vec![
        ("commit_ns", Json::from(r.time_ns)),
        ("payload_bytes", Json::from(r.bytes)),
        ("quorum_w", Json::from(w)),
    ])
}

fn c12_transients_plan() -> SweepPlan {
    SweepPlan::new("c12.transients")
        .seed(0xc12)
        .axis_ints("burst", &[0, 1, 3])
}

fn c12_transients_job(spec: &JobSpec) -> Json {
    let cost = CostModel::circa_2005();
    let burst = spec.int("burst") as u32;
    let payload = pattern_payload(256 * 1024);
    let mut store = ReplicatedStore::fresh(3, 2);
    let set = store.replica_set();
    for node in set.nodes() {
        node.inject_transients(burst);
    }
    let r = store.store("c12/img", &payload, &cost).unwrap();
    let st = store.stats();
    Json::obj(vec![
        ("commit_ns", Json::from(r.time_ns)),
        ("commits", Json::from(st.commits)),
        ("retries", Json::from(st.retries)),
    ])
}

/// C12's three sweeps, run on the engine.
pub fn c12_sweeps() -> Vec<SweepRun> {
    vec![
        run_sweep(&c12_survivability_plan(), c12_survivability_job),
        run_sweep(&c12_latency_plan(), c12_latency_job),
        run_sweep(&c12_transients_plan(), c12_transients_job),
    ]
}

/// C12: survivability and cost of the quorum-replicated remote backend,
/// rendered from the sweep metrics (see the pre-port doc comment in git
/// history for the experiment's rationale; the measurements are
/// unchanged).
///
/// Standalone like C11 (`report replication`); not part of `report all`.
pub fn c12_replication() -> String {
    render_c12(&c12_sweeps())
}

fn render_c12(runs: &[SweepRun]) -> String {
    let srows: Vec<Vec<String>> = named(runs, "c12.survivability")
        .jobs
        .iter()
        .map(|j| {
            let n = j.spec.int("n");
            let w = n / 2 + 1;
            vec![
                format!("({n},{w})"),
                j.spec.int("lost").to_string(),
                (n - w).to_string(),
                ms(j, "outcome").to_string(),
                mb(j, "correct").to_string(),
            ]
        })
        .collect();
    let survivability = table(
        &["quorum (N,w)", "replicas lost", "tolerated", "read outcome", "correct"],
        &srows,
    );

    let lrows: Vec<Vec<String>> = named(runs, "c12.latency")
        .jobs
        .iter()
        .map(|j| {
            vec![
                j.spec.int("n").to_string(),
                mu(j, "quorum_w").to_string(),
                bytes(mu(j, "payload_bytes")),
                ns(mu(j, "commit_ns")),
            ]
        })
        .collect();
    let latency = table(&["N", "w", "payload", "commit latency"], &lrows);

    let trows: Vec<Vec<String>> = named(runs, "c12.transients")
        .jobs
        .iter()
        .map(|j| {
            vec![
                j.spec.int("burst").to_string(),
                mu(j, "retries").to_string(),
                mu(j, "commits").to_string(),
                ns(mu(j, "commit_ns")),
            ]
        })
        .collect();
    let retries = table(
        &["transients per replica", "retries", "commits", "commit latency"],
        &trows,
    );

    format!(
        "C12 — quorum replication: survivability within N−w, typed refusal beyond\n\
         {survivability}\n\
         commit latency vs replica count (majority write quorum)\n\
         {latency}\n\
         transient faults absorbed by the jittered retry schedule (N=3, w=2)\n\
         {retries}"
    )
}

// ---------------------------------------------------------------------
// C14 — the sharded control plane, on the engine
// ---------------------------------------------------------------------

fn c14_cluster_plan() -> SweepPlan {
    SweepPlan::new("c14.cluster")
        .seed(0xc14)
        .axis_ints("ranks", &[16])
}

/// The real protocol: one job runs the whole stateful two-round session
/// (rounds share the cluster and coordinator, so they cannot be separate
/// sweep cells) and reports both rounds as a metrics array.
fn c14_cluster_job(spec: &JobSpec) -> Json {
    let ranks = spec.int("ranks") as u32;
    let mut c = Cluster::new_striped(4, CostModel::circa_2005(), FailureConfig::none(), 4, 3, 2);
    let mut job = MpiJob::launch(
        &mut c,
        "app",
        ranks,
        NativeKind::SparseRandom,
        AppParams::small(),
        6,
        32 * 1024,
    )
    .expect("launch");
    let mut coord = ShardedCoordinator::new("c14", TrackerKind::KernelPage, 2);
    let mut rounds = Vec::new();
    for _ in 0..2 {
        for _ in 0..2 {
            job.superstep(&mut c).expect("superstep");
        }
        let o = coord.checkpoint(&mut c, &job).expect("checkpoint");
        rounds.push(Json::obj(vec![
            ("ack_cycles", Json::from(o.ack_cycles)),
            ("incremental", Json::from(o.incremental)),
            ("ranks", Json::from(o.ranks)),
            ("round_ns", Json::from(o.round_ns)),
            ("seq", Json::from(o.seq)),
            ("shards", Json::from(o.shards)),
            ("total_bytes", Json::from(o.total_bytes)),
        ]));
    }
    Json::obj(vec![("rounds", Json::Arr(rounds))])
}

/// The scale-model base point: 4,000 nodes over 16 shards and a 4-wide
/// stripe pool at the paper's 10 h per-node MTBF.
fn c14_base() -> ScaleConfig {
    ScaleConfig {
        nodes: 4000,
        shards: 16,
        stripes: 4,
        replicas: 3,
        write_quorum: 2,
        mean_image_bytes: 1024,
        mtbf_hours: 10.0,
        seed: 0xc14,
    }
}

fn scale_metrics(p: &ScalePoint) -> Json {
    Json::obj(vec![
        ("batched_ack_cycles", Json::from(p.batched_ack_cycles)),
        ("capture_ns", Json::from(p.capture_ns)),
        ("commit_ns", Json::from(p.commit_ns)),
        ("dirty_bytes", Json::from(p.dirty_bytes)),
        ("expected_redo_mono_ns", Json::from(p.expected_redo_mono_ns)),
        ("expected_redo_ns", Json::from(p.expected_redo_ns)),
        ("nodes", Json::from(p.nodes)),
        ("p_disturb", Json::from(p.p_disturb)),
        ("per_image_ack_cycles", Json::from(p.per_image_ack_cycles)),
        ("round_ns", Json::from(p.round_ns)),
        ("shards", Json::from(p.shards)),
        ("stripes", Json::from(p.stripes)),
    ])
}

fn c14_nodes_plan() -> SweepPlan {
    SweepPlan::new("c14.nodes")
        .seed(0xc14)
        .axis_ints("nodes", &[1000, 2000, 4000, 10000])
}

fn c14_nodes_job(spec: &JobSpec) -> Json {
    let cfg = ScaleConfig { nodes: spec.int("nodes") as usize, ..c14_base() };
    scale_metrics(&scale_round(&cfg, &CostModel::circa_2005()))
}

fn c14_shards_plan() -> SweepPlan {
    SweepPlan::new("c14.shards")
        .seed(0xc14)
        .axis_ints("shards", &[1, 4, 16, 64])
}

fn c14_shards_job(spec: &JobSpec) -> Json {
    let cfg = ScaleConfig { shards: spec.int("shards") as usize, ..c14_base() };
    scale_metrics(&scale_round(&cfg, &CostModel::circa_2005()))
}

fn c14_stripes_plan() -> SweepPlan {
    SweepPlan::new("c14.stripes")
        .seed(0xc14)
        .axis_ints("stripes", &[1, 2, 4, 8])
}

fn c14_stripes_job(spec: &JobSpec) -> Json {
    let cfg = ScaleConfig { stripes: spec.int("stripes") as usize, ..c14_base() };
    scale_metrics(&scale_round(&cfg, &CostModel::circa_2005()))
}

/// C14's four sweeps (one real-cluster protocol run + three scale-model
/// sweeps), run on the engine.
pub fn c14_sweeps() -> Vec<SweepRun> {
    vec![
        run_sweep(&c14_cluster_plan(), c14_cluster_job),
        run_sweep(&c14_nodes_plan(), c14_nodes_job),
        run_sweep(&c14_shards_plan(), c14_shards_job),
        run_sweep(&c14_stripes_plan(), c14_stripes_job),
    ]
}

/// C14: the two-level sharded control plane, rendered from the sweep
/// metrics. (a) grounds the protocol on a real striped cluster; (b)–(d)
/// sweep the deterministic scale model from 1,000 to 10,000 simulated
/// nodes under the paper's per-node MTBF regime.
///
/// Standalone like C12/C13 (`report c14`); not part of `report all`.
pub fn c14_shard() -> String {
    render_c14(&c14_sweeps())
}

fn render_c14(runs: &[SweepRun]) -> String {
    let cluster = named(runs, "c14.cluster");
    let mut arows = Vec::new();
    for j in &cluster.jobs {
        let rounds = j
            .metrics
            .get("rounds")
            .and_then(Json::as_arr)
            .expect("c14.cluster metrics carry a rounds array");
        for r in rounds {
            let g = |k: &str| -> u64 {
                r.get(k)
                    .and_then(Json::as_u64)
                    .unwrap_or_else(|| panic!("c14.cluster round metric '{k}' missing"))
            };
            let incremental = r
                .get("incremental")
                .and_then(Json::as_bool)
                .expect("incremental flag");
            arows.push(vec![
                g("seq").to_string(),
                if incremental { "incremental" } else { "full" }.to_string(),
                g("shards").to_string(),
                g("ranks").to_string(),
                bytes(g("total_bytes")),
                ns(g("round_ns")),
                g("ack_cycles").to_string(),
                g("ranks").to_string(),
            ]);
        }
    }
    let cluster_tbl = table(
        &[
            "seq",
            "kind",
            "shards",
            "ranks",
            "bytes",
            "round",
            "batched acks",
            "per-image acks",
        ],
        &arows,
    );

    let headers = [
        "nodes",
        "shards",
        "stripes",
        "dirty",
        "capture",
        "commit",
        "round",
        "batched acks",
        "per-image acks",
        "p(disturb)",
        "E[redo] sharded",
        "E[redo] monolithic",
    ];
    let row = |j: &JobResult| -> Vec<String> {
        vec![
            mu(j, "nodes").to_string(),
            mu(j, "shards").to_string(),
            mu(j, "stripes").to_string(),
            bytes(mu(j, "dirty_bytes")),
            ns(mu(j, "capture_ns")),
            ns(mu(j, "commit_ns")),
            ns(mu(j, "round_ns")),
            mu(j, "batched_ack_cycles").to_string(),
            mu(j, "per_image_ack_cycles").to_string(),
            format!("{:.6}", mf(j, "p_disturb")),
            ns(mu(j, "expected_redo_ns")),
            ns(mu(j, "expected_redo_mono_ns")),
        ]
    };

    let nodes_run = named(runs, "c14.nodes");
    let node_tbl = table(&headers, &nodes_run.jobs.iter().map(&row).collect::<Vec<_>>());
    let shard_tbl = table(
        &headers,
        &named(runs, "c14.shards").jobs.iter().map(&row).collect::<Vec<_>>(),
    );
    let stripe_tbl = table(
        &headers,
        &named(runs, "c14.stripes").jobs.iter().map(&row).collect::<Vec<_>>(),
    );

    let big = nodes_run.jobs.last().expect("10k point");
    let batched = mu(big, "batched_ack_cycles");
    let per_image = mu(big, "per_image_ack_cycles");
    let redo = mu(big, "expected_redo_ns");
    let mono = mu(big, "expected_redo_mono_ns");
    let ack_reduction = per_image as f64 / batched as f64;
    let redo_reduction = mono as f64 / redo.max(1) as f64;

    format!(
        "C14 — sharded control plane: hierarchical rounds, batched quorum commits, striped pool\n\
         hierarchical rounds on a real striped cluster (2 shards, 4x3 pool, w=2)\n\
         {cluster_tbl}\n\
         scale model: node sweep at 16 shards x 4 stripes (10 h per-node MTBF)\n\
         {node_tbl}\n\
         scale model: shard sweep at 4,000 nodes\n\
         {shard_tbl}\n\
         scale model: stripe sweep at 4,000 nodes\n\
         {stripe_tbl}\n\
         ack cycles per round at {} nodes: batched {} vs per-image {} ({ack_reduction:.1}x fewer)\n\
         expected redo per disturbed round at {} nodes: sharded {} vs monolithic {} ({redo_reduction:.1}x less rework)",
        mu(big, "nodes"),
        batched,
        per_image,
        mu(big, "nodes"),
        ns(redo),
        ns(mono),
    )
}

// ---------------------------------------------------------------------
// C16 — erasure-coded stable storage, on the engine
// ---------------------------------------------------------------------

fn c16_traffic_plan() -> SweepPlan {
    SweepPlan::new("c16.traffic").seed(0xc16).axis_strs(
        "app",
        &["DenseSweep", "SparseRandom", "Stencil2D", "AppendLog", "ReadMostly"],
    )
}

/// Commit traffic for one guest's lineage into both mirrored quorums and
/// both coded shard groups; the replica sets count the bytes their nodes
/// actually ingested (committed, not attempted).
fn c16_traffic_job(spec: &JobSpec) -> Json {
    let cost = CostModel::circa_2005();
    let versions = lineage(app_kind(spec.str("app")));
    let payload: u64 = versions.iter().map(|v| v.len() as u64).sum();
    let mut ingested = Vec::new();
    for ((n, w), (k, m)) in [((3, 2), (4, 2)), ((5, 3), (8, 3))] {
        let mut rep = ReplicatedStore::fresh(n, w);
        let mut ec = ErasureStore::fresh(k, m);
        for (seq, v) in versions.iter().enumerate() {
            let key = ImageKey::new("c16/app", 1, seq as u64).to_string();
            rep.store(&key, v, &cost).unwrap();
            ec.store(&key, v, &cost).unwrap();
        }
        ingested.push((rep.replica_set().bytes_ingested(), ec.replica_set().bytes_ingested()));
    }
    Json::obj(vec![
        ("coded_bytes_42", Json::from(ingested[0].1)),
        ("coded_bytes_83", Json::from(ingested[1].1)),
        ("mirrored_bytes_32", Json::from(ingested[0].0)),
        ("mirrored_bytes_53", Json::from(ingested[1].0)),
        ("payload_bytes", Json::from(payload)),
    ])
}

fn c16_latency_plan() -> SweepPlan {
    SweepPlan::new("c16.latency")
        .seed(0xc16)
        .axis_ints("payload_kib", &[64, 256, 1024])
        .axis_strs("backend", &["repl(3,2)", "repl(5,3)", "rs(4,2)", "rs(8,3)"])
}

fn c16_latency_job(spec: &JobSpec) -> Json {
    let cost = CostModel::circa_2005();
    let payload = pattern_payload(spec.int("payload_kib") as usize * 1024);
    let backend = spec.str("backend");
    let (a, b) = parse_geometry(backend);
    let r = if backend.starts_with("repl") {
        ReplicatedStore::fresh(a, b).store("c16/img", &payload, &cost).unwrap()
    } else {
        ErasureStore::fresh(a, b).store("c16/img", &payload, &cost).unwrap()
    };
    Json::obj(vec![
        ("commit_ns", Json::from(r.time_ns)),
        ("payload_bytes", Json::from(payload.len())),
    ])
}

fn c16_survivability_plan() -> SweepPlan {
    SweepPlan::new("c16.survivability")
        .seed(0xc16)
        .axis_strs("code", &["rs(4,2)", "rs(8,3)"])
        .axis_ints("lost", &[0, 1, 2, 3, 4])
        .filter(|c| {
            let m = match c.get("code") {
                Some(AxisValue::Str(s)) => parse_geometry(s).1 as i64,
                _ => return false,
            };
            matches!(c.get("lost"), Some(AxisValue::Int(l)) if *l <= m + 1)
        })
}

fn c16_survivability_job(spec: &JobSpec) -> Json {
    let cost = CostModel::circa_2005();
    let (k, m) = parse_geometry(spec.str("code"));
    let lost = spec.int("lost") as usize;
    let payload = pattern_payload(256 * 1024);
    let mut store = ErasureStore::fresh(k, m);
    store.store("c16/img", &payload, &cost).unwrap();
    let set = store.replica_set();
    for i in 0..lost {
        set.node(i).fail();
    }
    let outcome = match store.load("c16/img", &cost) {
        Ok((data, _)) if data == payload => "bit-exact".to_string(),
        Ok(_) => "WRONG BYTES".to_string(),
        Err(e @ StorageError::TooManyShardsLost { .. }) => e.to_string(),
        Err(e) => format!("unexpected: {e}"),
    };
    let correct = if lost <= m {
        outcome == "bit-exact"
    } else {
        outcome.starts_with("too many shards lost")
    };
    Json::obj(vec![
        ("correct", Json::from(correct)),
        ("outcome", Json::Str(outcome)),
        ("tolerated", Json::from(m)),
    ])
}

fn c16_reconstruction_plan() -> SweepPlan {
    SweepPlan::new("c16.reconstruction")
        .seed(0xc16)
        .axis_ints("lost", &[0, 1, 2])
}

fn c16_reconstruction_job(spec: &JobSpec) -> Json {
    let cost = CostModel::circa_2005();
    let lost = spec.int("lost") as usize;
    let payload = pattern_payload(256 * 1024);
    let mut store = ErasureStore::fresh(4, 2);
    store.store("c16/img", &payload, &cost).unwrap();
    let set = store.replica_set();
    for i in 0..lost {
        set.node(i).drop_key("c16/img");
    }
    let (data, first_ns) = store.load("c16/img", &cost).unwrap();
    assert_eq!(data, payload, "reconstruction must be bit-exact");
    let st = store.stats();
    let (_, second_ns) = store.load("c16/img", &cost).unwrap();
    Json::obj(vec![
        ("decodes", Json::from(st.decodes)),
        ("first_read_ns", Json::from(first_ns)),
        ("repairs", Json::from(st.repairs)),
        ("second_read_ns", Json::from(second_ns)),
    ])
}

fn c16_availability_plan() -> SweepPlan {
    SweepPlan::new("c16.availability").seed(0xc16).axis_strs(
        "scheme",
        &["replicated(3,2)", "replicated(5,3)", "rs(4,2)", "rs(8,3)"],
    )
}

/// Availability arithmetic at the paper's regime (10 h per-node MTBF,
/// 1 h repair): a node is down with p = repair / (MTBF + repair); an
/// object is unavailable when more nodes than the scheme tolerates are
/// down at once (binomial, nodes independent).
fn c16_availability_job(spec: &JobSpec) -> Json {
    let (n, tolerated, overhead) = match spec.str("scheme") {
        "replicated(3,2)" => (3usize, 1usize, 3.0f64),
        "replicated(5,3)" => (5, 2, 5.0),
        "rs(4,2)" => (6, 2, 1.5),
        "rs(8,3)" => (11, 3, 1.375),
        other => panic!("unknown availability scheme '{other}'"),
    };
    let p_down: f64 = 1.0 / 11.0;
    let choose = |n: usize, j: usize| -> f64 {
        (0..j).fold(1.0, |acc, i| acc * (n - i) as f64 / (i + 1) as f64)
    };
    let p_unavail: f64 = (tolerated + 1..=n)
        .map(|j| choose(n, j) * p_down.powi(j as i32) * (1.0 - p_down).powi((n - j) as i32))
        .sum();
    Json::obj(vec![
        ("nodes", Json::from(n)),
        ("overhead", Json::from(overhead)),
        ("p_unavailable", Json::from(p_unavail)),
        ("tolerated", Json::from(tolerated)),
    ])
}

/// C16's five sweeps, run on the engine.
pub fn c16_sweeps() -> Vec<SweepRun> {
    vec![
        run_sweep(&c16_traffic_plan(), c16_traffic_job),
        run_sweep(&c16_latency_plan(), c16_latency_job),
        run_sweep(&c16_survivability_plan(), c16_survivability_job),
        run_sweep(&c16_reconstruction_plan(), c16_reconstruction_job),
        run_sweep(&c16_availability_plan(), c16_availability_job),
    ]
}

/// C16: what Reed-Solomon coding buys over mirroring, rendered from the
/// sweep metrics. The `gate:` lines at the bottom are what CI greps.
///
/// Standalone like C12–C15 (`report c16` / `report erasure`); not part
/// of `report all`.
pub fn c16_erasure() -> String {
    render_c16(&c16_sweeps())
}

fn render_c16(runs: &[SweepRun]) -> String {
    let traffic_run = named(runs, "c16.traffic");
    let mut arows = Vec::new();
    let mut totals = [(0u64, 0u64), (0u64, 0u64)];
    for j in &traffic_run.jobs {
        let pairs = [
            (mu(j, "mirrored_bytes_32"), mu(j, "coded_bytes_42")),
            (mu(j, "mirrored_bytes_53"), mu(j, "coded_bytes_83")),
        ];
        let mut row = vec![j.spec.str("app").to_string(), bytes(mu(j, "payload_bytes"))];
        for (pi, (mirrored, coded)) in pairs.iter().enumerate() {
            totals[pi].0 += mirrored;
            totals[pi].1 += coded;
            row.push(bytes(*mirrored));
            row.push(bytes(*coded));
            row.push(format!("{:.2}x", *coded as f64 / *mirrored as f64));
        }
        arows.push(row);
    }
    let traffic = table(
        &[
            "app",
            "payload",
            "repl(3,2)",
            "rs(4,2)",
            "ratio",
            "repl(5,3)",
            "rs(8,3)",
            "ratio",
        ],
        &arows,
    );
    let ratio_42 = totals[0].1 as f64 / totals[0].0 as f64;
    let ratio_83 = totals[1].1 as f64 / totals[1].0 as f64;

    // Latency: the grid is payload-major, backend-minor — each chunk of
    // four jobs is one table row in the backend column order.
    let latency_run = named(runs, "c16.latency");
    let lrows: Vec<Vec<String>> = latency_run
        .jobs
        .chunks(4)
        .map(|chunk| {
            let mut row = vec![bytes(mu(&chunk[0], "payload_bytes"))];
            row.extend(chunk.iter().map(|j| ns(mu(j, "commit_ns"))));
            row
        })
        .collect();
    let latency = table(
        &["payload", "repl(3,2)", "repl(5,3)", "rs(4,2)", "rs(8,3)"],
        &lrows,
    );

    let surv_run = named(runs, "c16.survivability");
    let mut survivability_correct = true;
    let srows: Vec<Vec<String>> = surv_run
        .jobs
        .iter()
        .map(|j| {
            survivability_correct &= mb(j, "correct");
            vec![
                j.spec.str("code").to_string(),
                j.spec.int("lost").to_string(),
                mu(j, "tolerated").to_string(),
                ms(j, "outcome").to_string(),
                mb(j, "correct").to_string(),
            ]
        })
        .collect();
    let survivability = table(
        &["code", "shards lost", "tolerated", "read outcome", "correct"],
        &srows,
    );

    let rrows: Vec<Vec<String>> = named(runs, "c16.reconstruction")
        .jobs
        .iter()
        .map(|j| {
            vec![
                j.spec.int("lost").to_string(),
                mu(j, "decodes").to_string(),
                mu(j, "repairs").to_string(),
                ns(mu(j, "first_read_ns")),
                ns(mu(j, "second_read_ns")),
            ]
        })
        .collect();
    let reconstruction = table(
        &["shards dropped", "decodes", "repairs", "first read", "second read"],
        &rrows,
    );

    let vrows: Vec<Vec<String>> = named(runs, "c16.availability")
        .jobs
        .iter()
        .map(|j| {
            vec![
                j.spec.str("scheme").to_string(),
                mu(j, "nodes").to_string(),
                mu(j, "tolerated").to_string(),
                format!("{:.2}x", mf(j, "overhead")),
                format!("{:.2e}", mf(j, "p_unavailable")),
            ]
        })
        .collect();
    let availability = table(
        &[
            "backend",
            "nodes",
            "losses tolerated",
            "storage + traffic overhead",
            "P(object unavailable)",
        ],
        &vrows,
    );

    format!(
        "C16 — erasure-coded stable storage: (k+m)/k x commit bytes instead of N x\n\
         commit traffic per guest-app lineage (1 full + 3 incrementals, uncompressed)\n\
         {traffic}\n\
         commit latency vs payload size (one object, fresh store)\n\
         {latency}\n\
         survivability: bit-exact within m shard losses, typed refusal beyond\n\
         {survivability}\n\
         reconstruction latency on rs(4,2): decode + in-place repair on first read\n\
         {reconstruction}\n\
         availability at 10 h per-node MTBF, 1 h repair (independent nodes)\n\
         {availability}\n\
         gate: rs(4,2) commit bytes vs replicated(3,2): {ratio_42:.2}x\n\
         gate: rs(8,3) commit bytes vs replicated(5,3): {ratio_83:.2}x\n\
         gate: coded reads bit-exact within m losses and typed beyond: {survivability_correct}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_labels_parse() {
        assert_eq!(parse_geometry("rs(4,2)"), (4, 2));
        assert_eq!(parse_geometry("repl(5,3)"), (5, 3));
    }

    #[test]
    fn app_labels_round_trip() {
        for kind in NativeKind::ALL {
            assert_eq!(app_kind(&format!("{kind:?}")), kind);
        }
    }

    #[test]
    fn survivability_grids_are_non_rectangular() {
        // C12: n=3 keeps lost 0..=3, n=5 keeps lost 0..=5.
        assert_eq!(c12_survivability_plan().expand().len(), 10);
        // C16: rs(4,2) keeps lost 0..=3, rs(8,3) keeps lost 0..=4.
        assert_eq!(c16_survivability_plan().expand().len(), 9);
    }
}
