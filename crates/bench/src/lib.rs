//! # ckpt-bench — the experiment harness
//!
//! One function per reproduction target (see DESIGN.md §3): `T1`/`F1`
//! regenerate the paper's table and figure; `C1..C8` quantify the paper's
//! qualitative claims. Every function returns a formatted text block; the
//! `report` binary prints them, and the test/bench suites call the same
//! functions — the published numbers are the tested numbers.

pub mod artifact;
pub mod experiments;
pub mod fmt;
pub mod runbook;
pub mod sweep;
pub mod swept;
pub mod timing;

pub use experiments::*;
pub use timing::run_timings;
