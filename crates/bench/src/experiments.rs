//! The reproduction experiments: T1, F1 and the quantified claims C1..C8.
//!
//! Every experiment runs on the deterministic simulator, so the numbers
//! below are exactly reproducible (`cargo run --bin report -- all`).

use crate::fmt::{bytes, ns, table};
use ckpt_cluster::{
    interval_sweep, migrate, simulate_job, Cluster, FailureConfig, JobRunConfig, MigrationMode,
    NodeId,
};
use ckpt_core::agents::{UserAgentConfig, UserCkptAgent};
use ckpt_core::mechanism::fork_concurrent::ForkConcurrentMechanism;
use ckpt_core::mechanism::hardware::{HardwareMechanism, HwFlavor};
use ckpt_core::mechanism::ksignal::KernelSignalMechanism;
use ckpt_core::mechanism::kthread::{KernelThreadMechanism, KthreadIface, KthreadVariant};
use ckpt_core::mechanism::syscall::{SyscallMechanism, SyscallVariant};
use ckpt_core::mechanism::user_level::{Trigger, UserLevelMechanism};
use ckpt_core::mechanism::Mechanism;
use ckpt_core::policy::young_interval;
use ckpt_core::pod::Pod;
use ckpt_core::{shared_storage, SharedStorage, Tracker, TrackerKind};
use ckpt_storage::{
    LocalDisk, RamStore, RemoteServer, RemoteStore, StableStorage, StorageClass, SwapStore,
};
use simos::apps::{AppParams, NativeKind};
use simos::cost::CostModel;
use simos::fs::OpenFlags;
use simos::signal::Sig;
use simos::syscall::Syscall;
use simos::types::Pid;
use simos::Kernel;

const SEC: u64 = 1_000_000_000;

pub(crate) fn fresh_kernel() -> Kernel {
    Kernel::new(CostModel::circa_2005())
}

fn disk() -> SharedStorage {
    shared_storage(LocalDisk::new(1 << 34))
}

fn spawn(k: &mut Kernel, kind: NativeKind, mem: u64, writes: u64) -> Pid {
    let mut p = AppParams::small();
    p.mem_bytes = mem;
    p.writes_per_step = writes;
    p.total_steps = u64::MAX;
    k.spawn_native(kind, p).expect("spawn")
}

/// Run exactly ~n app steps (fine-grained so tracked sets stay precise).
pub(crate) fn run_steps(k: &mut Kernel, pid: Pid, n: u64) {
    let target = k.process(pid).unwrap().work_done + n;
    while k.process(pid).unwrap().work_done < target {
        k.run_for(2_000).unwrap();
    }
}

// ---------------------------------------------------------------------
// T1 / F1
// ---------------------------------------------------------------------

/// Table 1, regenerated from the implementations.
pub fn t1_table() -> String {
    let mut out = String::from("T1 — Table 1, regenerated from mechanism metadata\n");
    out.push_str(&ckpt_survey::render_table1(&ckpt_survey::table1_generated()));
    let matches = ckpt_survey::table1_generated() == ckpt_survey::table1_paper();
    out.push_str(&format!("matches the paper byte-for-byte: {matches}\n"));
    out
}

/// Figure 1, regenerated as a tree of implemented leaves.
pub fn f1_figure() -> String {
    let mut out = String::from("F1 — Figure 1 taxonomy (every leaf implemented)\n");
    out.push_str(&ckpt_survey::render_figure1(&ckpt_survey::taxonomy()));
    out
}

// ---------------------------------------------------------------------
// C1 — user- vs kernel-level state extraction
// ---------------------------------------------------------------------

/// C1: syscall crossings and time to gather process state, user level vs
/// kernel level, as the number of open descriptors grows.
pub fn c1_gather() -> String {
    // Each nfds config builds its own kernels, so the four run on the
    // pool; ordered merge keeps the table rows in nfds order.
    let rows = ckpt_par::global().par_map_ordered(
        vec![0u32, 4, 16, 64],
        || (),
        |_, _, nfds| {
        // User level: the modelled checkpoint library.
        let (user_calls, user_time) = {
            let mut k = fresh_kernel();
            let pid = spawn(&mut k, NativeKind::SparseRandom, 256 * 1024, 8);
            for i in 0..nfds {
                k.do_syscall(
                    pid,
                    Syscall::Open {
                        path: format!("/tmp/f{i}"),
                        flags: OpenFlags::RDWR_CREATE,
                    },
                )
                .unwrap();
            }
            k.run_for(5_000_000).unwrap();
            let agent = UserCkptAgent::new(
                UserAgentConfig::new("lib", "c1"),
                disk(),
            );
            k.register_agent(Box::new(agent)).unwrap();
            let s0 = k.stats.syscalls;
            let t0 = k.now();
            k.with_agent_mut::<UserCkptAgent, _>("lib", |a, k| {
                a.perform_checkpoint(k, pid).unwrap();
            });
            (k.stats.syscalls - s0, k.now() - t0)
        };
        // Kernel level: the EPCKPT-style syscall.
        let (sys_calls, sys_time) = {
            let mut k = fresh_kernel();
            let pid = spawn(&mut k, NativeKind::SparseRandom, 256 * 1024, 8);
            for i in 0..nfds {
                k.do_syscall(
                    pid,
                    Syscall::Open {
                        path: format!("/tmp/f{i}"),
                        flags: OpenFlags::RDWR_CREATE,
                    },
                )
                .unwrap();
            }
            k.run_for(5_000_000).unwrap();
            let mut m = SyscallMechanism::new(
                "epckpt",
                SyscallVariant::ByPid,
                "c1",
                disk(),
                TrackerKind::FullOnly,
            );
            m.prepare(&mut k, pid).unwrap();
            let s0 = k.stats.syscalls;
            let t0 = k.now();
            m.checkpoint(&mut k, pid).unwrap();
            (k.stats.syscalls - s0, k.now() - t0)
        };
        vec![
            nfds.to_string(),
            user_calls.to_string(),
            ns(user_time),
            sys_calls.to_string(),
            ns(sys_time),
            format!("{:.1}x", user_calls as f64 / sys_calls.max(1) as f64),
        ]
        },
    );
    format!(
        "C1 — state gather: user-level library vs kernel-level syscall\n{}",
        table(
            &[
                "open fds",
                "user syscalls",
                "user ckpt time",
                "kernel syscalls",
                "kernel ckpt time",
                "crossing ratio",
            ],
            &rows,
        )
    )
}

// ---------------------------------------------------------------------
// C2 — full vs incremental checkpoint size/time
// ---------------------------------------------------------------------

/// C2: second-checkpoint size and time across memory-update patterns and
/// trackers (the [31] result the paper builds on).
pub fn c2_incremental() -> String {
    let apps: [(&str, NativeKind, u64); 4] = [
        ("dense-sweep", NativeKind::DenseSweep, 0),
        ("sparse-8", NativeKind::SparseRandom, 8),
        ("append-log", NativeKind::AppendLog, 0),
        ("read-mostly", NativeKind::ReadMostly, 0),
    ];
    let trackers = [
        TrackerKind::FullOnly,
        TrackerKind::KernelPage,
        TrackerKind::UserPage,
    ];
    // 12 independent (workload, tracker) cells; rows merge in loop order.
    let combos: Vec<((&str, NativeKind, u64), TrackerKind)> = apps
        .iter()
        .flat_map(|a| trackers.iter().map(move |tk| (*a, *tk)))
        .collect();
    let rows = ckpt_par::global().par_map_ordered(
        combos,
        || (),
        |_, _, ((label, kind, writes), tk)| {
            let mut k = fresh_kernel();
            let pid = spawn(&mut k, kind, 1024 * 1024, writes.max(1));
            k.run_for(2_000_000).unwrap();
            let mut engine = ckpt_core::mechanism::KernelCkptEngine::new(
                "c2", "c2", disk(), tk,
            );
            k.freeze_process(pid).unwrap();
            let first = engine.checkpoint_in_kernel(&mut k, pid).unwrap();
            k.thaw_process(pid).unwrap();
            run_steps(&mut k, pid, 10);
            k.freeze_process(pid).unwrap();
            let second = engine.checkpoint_in_kernel(&mut k, pid).unwrap();
            k.thaw_process(pid).unwrap();
            vec![
                label.to_string(),
                tk.label(),
                first.pages_saved.to_string(),
                second.pages_saved.to_string(),
                bytes(second.encoded_bytes),
                ns(second.total_ns),
                second.events.page_faults.to_string(),
            ]
        },
    );
    format!(
        "C2 — full vs incremental checkpoints (1 MiB working set, 10 steps between checkpoints)\n{}",
        table(
            &[
                "workload",
                "tracker",
                "pages ckpt#1",
                "pages ckpt#2",
                "bytes ckpt#2",
                "time ckpt#2",
                "faults",
            ],
            &rows,
        )
    )
}

// ---------------------------------------------------------------------
// C3 — block-size sweep (probabilistic / adaptive / hardware)
// ---------------------------------------------------------------------

/// C3: tracking granularity vs delta size and scan cost.
pub fn c3_blocksize() -> String {
    let mut rows = Vec::new();
    let configs: Vec<(String, TrackerKind)> = vec![
        ("page-4096".into(), TrackerKind::KernelPage),
        ("prob-64".into(), TrackerKind::ProbBlock { block: 64 }),
        ("prob-256".into(), TrackerKind::ProbBlock { block: 256 }),
        ("prob-1024".into(), TrackerKind::ProbBlock { block: 1024 }),
        ("prob-4096".into(), TrackerKind::ProbBlock { block: 4096 }),
        (
            "adaptive-64-4096".into(),
            TrackerKind::AdaptiveBlock {
                min_block: 64,
                max_block: 4096,
            },
        ),
        ("hw-line-64".into(), TrackerKind::HardwareLine),
    ];
    for (label, tk) in configs {
        let mut k = fresh_kernel();
        let pid = spawn(&mut k, NativeKind::SparseRandom, 1024 * 1024, 8);
        k.run_for(2_000_000).unwrap();
        let mut tr = Tracker::new(tk);
        tr.arm(&mut k, pid).unwrap();
        run_steps(&mut k, pid, 10);
        k.freeze_process(pid).unwrap();
        let t0 = k.now();
        let c = tr.collect(&mut k, pid).unwrap();
        let collect_time = k.now() - t0;
        k.thaw_process(pid).unwrap();
        rows.push(vec![
            label,
            c.pages.len().to_string(),
            bytes(c.logical_dirty_bytes),
            ns(collect_time),
        ]);
    }
    format!(
        "C3 — tracking granularity (sparse writer, 1 MiB, 10 steps, 80 word writes)\n{}",
        table(
            &["tracker", "dirty pages", "logical dirty bytes", "collect time"],
            &rows,
        )
    )
}

// ---------------------------------------------------------------------
// C4 — mechanism comparison
// ---------------------------------------------------------------------

fn build_mech(which: &str, storage: SharedStorage) -> Box<dyn Mechanism> {
    match which {
        "user-signal" => Box::new(UserLevelMechanism::new(
            "libckpt",
            "c4",
            storage,
            TrackerKind::FullOnly,
            Trigger::Signal { sig: Sig::SIGUSR1 },
        )),
        "preload" => {
            let mut m = UserLevelMechanism::new(
                "preload",
                "c4",
                storage,
                TrackerKind::FullOnly,
                Trigger::Signal { sig: Sig::SIGUSR1 },
            );
            m.preload = true;
            Box::new(m)
        }
        "syscall-bypid" => Box::new(SyscallMechanism::new(
            "epckpt",
            SyscallVariant::ByPid,
            "c4",
            storage,
            TrackerKind::FullOnly,
        )),
        "kernel-signal" => Box::new(KernelSignalMechanism::new(
            "chpox",
            "c4",
            storage,
            TrackerKind::FullOnly,
        )),
        "kthread-ioctl" => Box::new(KernelThreadMechanism::new(
            "crak",
            "c4",
            storage,
            TrackerKind::FullOnly,
            KthreadIface::Ioctl,
            KthreadVariant::default(),
        )),
        "fork-concurrent" => Box::new(ForkConcurrentMechanism::new("forkckpt", "c4", storage)),
        "hw-revive" => Box::new(HardwareMechanism::new(HwFlavor::Revive, "c4", storage)),
        "hw-safetynet" => Box::new(HardwareMechanism::new(HwFlavor::Safetynet, "c4", storage)),
        other => panic!("unknown mechanism {other}"),
    }
}

/// C4: one checkpoint per mechanism family, idle and under load.
pub fn c4_mechanisms() -> String {
    let families = [
        "user-signal",
        "preload",
        "syscall-bypid",
        "kernel-signal",
        "kthread-ioctl",
        "fork-concurrent",
        "hw-revive",
        "hw-safetynet",
    ];
    // 16 independent (competitors, family) kernels, run on the pool.
    let combos: Vec<(usize, &str)> = [0usize, 3]
        .iter()
        .flat_map(|c| families.iter().map(move |f| (*c, *f)))
        .collect();
    let rows = ckpt_par::global().par_map_ordered(
        combos,
        || (),
        |_, _, (competitors, which)| {
            let mut k = fresh_kernel();
            let pid = spawn(&mut k, NativeKind::SparseRandom, 512 * 1024, 8);
            for _ in 0..competitors {
                spawn(&mut k, NativeKind::SparseRandom, 64 * 1024, 4);
            }
            let mut mech = build_mech(which, disk());
            mech.prepare(&mut k, pid).unwrap();
            k.run_for(20_000_000).unwrap();
            let mm0 = k.stats.mm_switches;
            let o = mech.checkpoint(&mut k, pid).unwrap();
            vec![
                which.to_string(),
                competitors.to_string(),
                ns(o.total_ns),
                ns(o.app_stall_ns),
                o.events.syscalls.to_string(),
                (k.stats.mm_switches - mm0).to_string(),
                bytes(o.encoded_bytes),
            ]
        },
    );
    format!(
        "C4 — mechanism families: one full checkpoint of a 512 KiB process\n{}",
        table(
            &[
                "mechanism",
                "competitors",
                "initiate→durable",
                "app stall",
                "syscalls",
                "mm switches",
                "image size",
            ],
            &rows,
        )
    )
}

// ---------------------------------------------------------------------
// C5 — fork-concurrent stall vs stop-the-world
// ---------------------------------------------------------------------

/// C5: application stall, forked-concurrent vs stop-the-world kthread.
pub fn c5_fork() -> String {
    let rows = ckpt_par::global().par_map_ordered(
        vec![256 * 1024u64, 1024 * 1024, 4 * 1024 * 1024],
        || (),
        |_, _, mem| {
        let fork = {
            let mut k = fresh_kernel();
            let pid = spawn(&mut k, NativeKind::DenseSweep, mem, 0);
            k.run_for(20_000_000).unwrap();
            let mut m = ForkConcurrentMechanism::new("forkckpt", "c5", disk());
            m.prepare(&mut k, pid).unwrap();
            let o = m.checkpoint(&mut k, pid).unwrap();
            let cow = o.events.cow_faults;
            (o.app_stall_ns, o.total_ns, cow)
        };
        let stw = {
            let mut k = fresh_kernel();
            let pid = spawn(&mut k, NativeKind::DenseSweep, mem, 0);
            k.run_for(20_000_000).unwrap();
            let mut m = KernelThreadMechanism::new(
                "crak",
                "c5",
                disk(),
                TrackerKind::FullOnly,
                KthreadIface::Ioctl,
                KthreadVariant::default(),
            );
            m.prepare(&mut k, pid).unwrap();
            let o = m.checkpoint(&mut k, pid).unwrap();
            o.app_stall_ns
        };
        vec![
            bytes(mem),
            ns(fork.0),
            ns(stw),
            format!("{:.0}x", stw as f64 / fork.0.max(1) as f64),
            ns(fork.1),
            fork.2.to_string(),
        ]
        },
    );
    format!(
        "C5 — fork-concurrent (Checkpoint [5]) vs stop-the-world kthread\n{}",
        table(
            &[
                "working set",
                "fork stall",
                "stop-world stall",
                "stall ratio",
                "fork total",
                "COW faults",
            ],
            &rows,
        )
    )
}

// ---------------------------------------------------------------------
// C6 — stable storage media
// ---------------------------------------------------------------------

/// C6: store/load cost per medium + what survives which failure.
pub fn c6_storage() -> String {
    let c = CostModel::circa_2005();
    let payload = vec![0xABu8; 16 << 20];
    let mut rows = Vec::new();
    let media: Vec<(&str, Box<dyn StableStorage>)> = vec![
        ("ram", Box::new(RamStore::new(1 << 34))),
        ("local-disk", Box::new(LocalDisk::new(1 << 34))),
        ("swap", Box::new(SwapStore::new(1 << 34))),
        (
            "remote",
            Box::new(RemoteStore::new(RemoteServer::new(1 << 34))),
        ),
    ];
    for (label, mut m) in media {
        let r = m.store("img", &payload, &c).unwrap();
        // Node failure: reachable? data intact after repair?
        m.on_node_failure();
        let reachable_down = m.load("img", &c).is_ok();
        m.on_node_repair();
        let after_failure = m.load("img", &c).is_ok();
        // Remote data additionally survives via *another* node's client —
        // covered by class semantics.
        let survives_loss = m.class().survives_node_loss();
        m.on_power_down();
        let after_power_down = m.load("img", &c).is_ok();
        rows.push(vec![
            label.to_string(),
            ns(r.time_ns),
            reachable_down.to_string(),
            after_failure.to_string(),
            survives_loss.to_string(),
            after_power_down.to_string(),
        ]);
    }
    format!(
        "C6 — stable storage: 16 MiB checkpoint image per medium (2005 cost model)\n{}",
        table(
            &[
                "medium",
                "store time",
                "reachable while node down",
                "data after node repair",
                "retrievable on node loss",
                "data after power-down",
            ],
            &rows,
        )
    )
}

// ---------------------------------------------------------------------
// C7 — cluster utilization
// ---------------------------------------------------------------------

/// C7a: mechanistic runs under failures, with and without checkpointing.
pub fn c7_cluster_mechanistic() -> String {
    let mut cfg = JobRunConfig::small();
    cfg.n_nodes = 4;
    cfg.n_ranks = 4;
    cfg.kind = NativeKind::DenseSweep;
    cfg.params.mem_bytes = 128 * 1024;
    cfg.steps_per_superstep = 20;
    cfg.target_supersteps = 10;
    cfg.checkpoint_every_supersteps = 2;
    cfg.failure = FailureConfig::with_mtbf(40_000_000, 2_000_000, 9);
    let mut cfg2 = cfg.clone();
    cfg2.checkpoint_every_supersteps = 0;
    // The two strategies are independent cluster simulations; run both at
    // once and read the results back in submission order.
    let mut results = ckpt_par::global().par_map_ordered(
        vec![cfg, cfg2],
        || (),
        |_, _, c| simulate_job(&c).unwrap(),
    );
    let without = results.pop().unwrap();
    let with = results.pop().unwrap();
    let rows = vec![
        vec![
            "coordinated ckpt every 2 supersteps".to_string(),
            ns(with.total_ns),
            with.failures.to_string(),
            with.recoveries.to_string(),
            with.checkpoints.to_string(),
            with.supersteps_reexecuted.to_string(),
        ],
        vec![
            "no checkpointing (restart from scratch)".to_string(),
            ns(without.total_ns),
            without.failures.to_string(),
            without.recoveries.to_string(),
            without.checkpoints.to_string(),
            without.supersteps_reexecuted.to_string(),
        ],
    ];
    format!(
        "C7a — mechanistic cluster runs (4 nodes, 4 ranks, node MTBF 40 ms, kernel-level sim)\n{}",
        table(
            &[
                "strategy",
                "completion",
                "failures",
                "recoveries",
                "checkpoints",
                "supersteps re-run",
            ],
            &rows,
        )
    )
}

/// C7b: large-scale stochastic sweep (the BlueGene/L argument).
pub fn c7_cluster_scale() -> String {
    let node_mtbf = 36_000 * SEC; // 10 h per node
    let c = SEC / 2;
    let r = 5 * SEC;
    let work = 3_600 * SEC; // one hour of useful work
    // Each cluster size is an independent stochastic sweep (fixed seeds);
    // the sweep itself also fans its trials out on the same pool.
    let row_groups = ckpt_par::global().par_map_ordered(
        vec![1_024u64, 16_384, 65_536],
        || (),
        |_, _, n| {
            let job_mtbf = (node_mtbf as f64 / n as f64) as u64;
            let ty = young_interval(c, job_mtbf).max(1);
            let intervals = [ty / 8, ty / 2, ty, ty * 2, ty * 8, 600 * SEC];
            let sweep = interval_sweep(n, node_mtbf, c, r, work, &intervals, 6);
            sweep
                .into_iter()
                .map(|(t, u)| {
                    let marker = if t == ty { " (Young)" } else { "" };
                    vec![
                        n.to_string(),
                        format!("{:.1} s", job_mtbf as f64 / 1e9),
                        format!("{}{}", ns(t), marker),
                        format!("{:.3}", u),
                    ]
                })
                .collect::<Vec<_>>()
        },
    );
    let rows: Vec<Vec<String>> = row_groups.into_iter().flatten().collect();
    format!(
        "C7b — utilization vs checkpoint interval at scale (node MTBF 10 h, ckpt 0.5 s, restart 5 s, 1 h job)\n{}",
        table(
            &["nodes", "job MTBF", "ckpt interval", "utilization"],
            &rows,
        )
    )
}

// ---------------------------------------------------------------------
// C8 — migration and pods
// ---------------------------------------------------------------------

/// C8: migration under resource conflicts, with and without pods.
pub fn c8_migration() -> String {
    let mut rows = Vec::new();
    // Build a cluster where the target node already has a colliding pid
    // and a colliding file path.
    let setup = || -> (Cluster, Pid) {
        let mut c = Cluster::new(2, CostModel::circa_2005(), FailureConfig::none());
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let pid = c
            .node(NodeId(0))
            .kernel()
            .unwrap()
            .spawn_native(NativeKind::SparseRandom, params.clone())
            .unwrap();
        c.node(NodeId(0))
            .kernel()
            .unwrap()
            .do_syscall(
                pid,
                Syscall::Open {
                    path: "/tmp/shared".into(),
                    flags: OpenFlags::RDWR_CREATE,
                },
            )
            .unwrap();
        // Squatter on the target with the same pid number and path.
        let sq = c
            .node(NodeId(1))
            .kernel()
            .unwrap()
            .spawn_native(NativeKind::SparseRandom, params)
            .unwrap();
        assert_eq!(sq.0, pid.0);
        c.node(NodeId(1))
            .kernel()
            .unwrap()
            .fs
            .create_file("/tmp/shared")
            .unwrap();
        c.advance(10_000_000);
        (c, pid)
    };
    for (label, mode) in [
        ("keep-identity (pre-ZAP)", MigrationMode::KeepIdentity),
        ("fresh-pid", MigrationMode::FreshPid),
        ("podded (ZAP)", MigrationMode::Podded),
    ] {
        let (mut c, pid) = setup();
        let mut pod = Pod::new("mig");
        let podref = if matches!(mode, MigrationMode::Podded) {
            Some(&mut pod)
        } else {
            None
        };
        let result = migrate(&mut c, NodeId(0), pid, NodeId(1), mode, podref);
        match result {
            Ok(rep) => {
                // Interposition tax after a podded restore.
                let tax = {
                    let k = c.node(NodeId(1)).kernel().unwrap();
                    k.process(rep.new_pid)
                        .map(|p| p.user_rt.interpose_active)
                        .unwrap_or(false)
                };
                rows.push(vec![
                    label.to_string(),
                    "ok".into(),
                    format!("pid{}", rep.new_pid.0),
                    bytes(rep.bytes_moved),
                    tax.to_string(),
                ]);
            }
            Err(e) => {
                rows.push(vec![
                    label.to_string(),
                    format!("FAILS ({})", short(&e.to_string())),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    format!(
        "C8 — migration onto a node with colliding pid + file path\n{}",
        table(
            &[
                "mode",
                "outcome",
                "restored pid",
                "bytes moved",
                "interpose tax",
            ],
            &rows,
        )
    )
}

fn short(s: &str) -> String {
    if s.len() > 40 {
        format!("{}…", &s[..40])
    } else {
        s.to_string()
    }
}


// ---------------------------------------------------------------------
// C3b — probabilistic checkpointing omission probability (Nam et al.)
// ---------------------------------------------------------------------

/// C3b: the "probabilistic" part of probabilistic checkpointing — the
/// analytic probability that a changed block escapes detection, by hash
/// width and delta size.
pub fn c3b_omission() -> String {
    use ckpt_core::Tracker;
    let mut rows = Vec::new();
    for bits in [8u32, 16, 32, 64] {
        for blocks in [16u64, 1_024, 65_536] {
            rows.push(vec![
                bits.to_string(),
                blocks.to_string(),
                format!("{:.3e}", Tracker::omission_probability(blocks, bits)),
            ]);
        }
    }
    format!(
        "C3b — probability a changed block goes undetected (hash collisions)\n{}",
        table(&["hash bits", "changed blocks", "P(omission ≥ 1)"], &rows)
    )
}

// ---------------------------------------------------------------------
// C9 — centralized batch management vs system-level autonomy
// ---------------------------------------------------------------------

/// C9: LSF-style manager-driven checkpoint rounds vs the per-node
/// autonomic daemon — round latency vs cluster size, and the single point
/// of failure.
pub fn c9_batch_vs_autonomic() -> String {
    use ckpt_cluster::BatchManager;
    use ckpt_core::autonomic::{self, AutonomicConfig, AutonomicDaemon};

    let setup = |n: usize| -> (ckpt_cluster::Cluster, BatchManager) {
        let mut cluster =
            ckpt_cluster::Cluster::new(n, CostModel::circa_2005(), FailureConfig::none());
        let mut mgr = BatchManager::new(NodeId(0), "lsfd");
        for i in 0..n {
            let node = NodeId(i as u32);
            let remote = cluster.nodes[i].remote.clone();
            let k = cluster.node(node).kernel().unwrap();
            let mut p = AppParams::small();
            p.total_steps = u64::MAX;
            let pid = k.spawn_native(NativeKind::SparseRandom, p).unwrap();
            let cfg = AutonomicConfig {
                module_name: "lsfd".into(),
                job: format!("c9-{i}"),
                adaptive: false,
                initial_interval_ns: u64::MAX / 4,
                ..Default::default()
            };
            let name = autonomic::install(k, cfg, remote).unwrap();
            autonomic::register(k, &name, pid).unwrap();
            mgr.manage(node, pid);
        }
        (cluster, mgr)
    };
    // The four cluster sizes are independent simulations; each closure
    // builds both the centralized and autonomic variants locally.
    let rows = ckpt_par::global().par_map_ordered(
        vec![2usize, 4, 8, 16],
        || (),
        |_, _, n| {
            // Centralized: one serialized round from the manager.
            let (mut cluster, mut mgr) = setup(n);
            cluster.advance(10_000_000);
            let central = mgr.checkpoint_round(&mut cluster).unwrap().round_latency_ns;
            // Autonomous: each node checkpoints locally; the "round" is as
            // slow as the slowest node (they run concurrently).
            let (mut cluster2, mgr2) = setup(n);
            cluster2.advance(10_000_000);
            let mut slowest = 0u64;
            for job in &mgr2.jobs {
                let k = cluster2.node(job.node).kernel().unwrap();
                let t0 = k.now();
                k.with_module_mut::<AutonomicDaemon, _>("lsfd", |d, k| {
                    d.checkpoint_now(k, job.pid).unwrap();
                });
                slowest = slowest.max(k.now() - t0);
            }
            vec![
                n.to_string(),
                ns(central),
                ns(slowest),
                format!("{:.1}x", central as f64 / slowest.max(1) as f64),
            ]
        },
    );
    // Single point of failure.
    let (mut cluster, mut mgr) = setup(4);
    cluster.advance(5_000_000);
    cluster.inject_failure(NodeId(0));
    let spof = mgr.checkpoint_round(&mut cluster).is_err();
    format!(
        "C9 — centralized (LSF-style) vs autonomic checkpoint rounds\n{}\nmanager node down ⇒ no checkpoints at all: {}\n",
        table(
            &["nodes", "centralized round", "autonomic round", "slowdown"],
            &rows,
        ),
        spof
    )
}

// ---------------------------------------------------------------------
// C10 — sensitivity: do the orderings survive modern hardware?
// ---------------------------------------------------------------------

/// C10: rerun headline comparisons under `CostModel::modern()` — the
/// paper's relative orderings must not depend on 2005 constants.
pub fn c10_sensitivity() -> String {
    let rows = ckpt_par::global().par_map_ordered(
        vec![
            ("circa-2005", CostModel::circa_2005()),
            ("modern", CostModel::modern()),
        ],
        || (),
        |_, _, (label, cost)| {
        // User vs kernel crossings (one checkpoint, 8 fds).
        let crossings = |user: bool, cost: &CostModel| -> u64 {
            let mut k = Kernel::new(cost.clone());
            let pid = spawn(&mut k, NativeKind::SparseRandom, 256 * 1024, 8);
            for i in 0..8 {
                k.do_syscall(
                    pid,
                    Syscall::Open {
                        path: format!("/tmp/f{i}"),
                        flags: OpenFlags::RDWR_CREATE,
                    },
                )
                .unwrap();
            }
            k.run_for(5_000_000).unwrap();
            if user {
                let agent =
                    UserCkptAgent::new(UserAgentConfig::new("lib", "c10"), disk());
                k.register_agent(Box::new(agent)).unwrap();
                let s0 = k.stats.syscalls;
                k.with_agent_mut::<UserCkptAgent, _>("lib", |a, k| {
                    a.perform_checkpoint(k, pid).unwrap();
                });
                k.stats.syscalls - s0
            } else {
                let mut m = SyscallMechanism::new(
                    "epckpt",
                    SyscallVariant::ByPid,
                    "c10",
                    disk(),
                    TrackerKind::FullOnly,
                );
                m.prepare(&mut k, pid).unwrap();
                let s0 = k.stats.syscalls;
                m.checkpoint(&mut k, pid).unwrap();
                k.stats.syscalls - s0
            }
        };
        let user = crossings(true, &cost);
        let kernel = crossings(false, &cost);
        // Fork stall vs stop-the-world stall (1 MiB dense writer).
        let stalls = |cost: &CostModel| -> (u64, u64) {
            let mut k = Kernel::new(cost.clone());
            let pid = spawn(&mut k, NativeKind::DenseSweep, 1024 * 1024, 0);
            k.run_for(10_000_000).unwrap();
            let mut fork = ForkConcurrentMechanism::new("forkckpt", "c10", disk());
            fork.prepare(&mut k, pid).unwrap();
            let f = fork.checkpoint(&mut k, pid).unwrap().app_stall_ns;
            let mut k2 = Kernel::new(cost.clone());
            let pid2 = spawn(&mut k2, NativeKind::DenseSweep, 1024 * 1024, 0);
            k2.run_for(10_000_000).unwrap();
            let mut stw = KernelThreadMechanism::new(
                "crak",
                "c10",
                disk(),
                TrackerKind::FullOnly,
                KthreadIface::Ioctl,
                KthreadVariant::default(),
            );
            stw.prepare(&mut k2, pid2).unwrap();
            let s = stw.checkpoint(&mut k2, pid2).unwrap().app_stall_ns;
            (f, s)
        };
        let (fork_stall, stw_stall) = stalls(&cost);
        vec![
            label.to_string(),
            format!("{user} vs {kernel}"),
            (user > kernel).to_string(),
            format!("{} vs {}", ns(fork_stall), ns(stw_stall)),
            (fork_stall < stw_stall).to_string(),
        ]
        },
    );
    format!(
        "C10 — sensitivity: headline orderings under both cost models\n{}",
        table(
            &[
                "cost model",
                "crossings user vs kernel",
                "user > kernel",
                "stall fork vs stop-world",
                "fork < stop-world",
            ],
            &rows,
        )
    )
}

// ---------------------------------------------------------------------
// TRACE — ckpt-trace per-phase cost breakdown
// ---------------------------------------------------------------------

/// `report trace`: one checkpoint per mechanism family under a recording
/// trace sink. Prints the per-phase cost breakdown per family plus the
/// kernel, storage and cluster event sections, and checks that each
/// family's traced cost reconciles with its outcome's end-to-end total.
/// Standalone invocations also show the software-TLB section.
pub fn trace_breakdown() -> String {
    trace_breakdown_impl(true)
}

/// `show_soft_tlb` gates the software-TLB section: `report all` passes
/// `false` so its output stays byte-identical to the pre-TLB report, while
/// standalone `report trace` passes `true`.
fn trace_breakdown_impl(show_soft_tlb: bool) -> String {
    use ckpt_core::mechanism::hibernate::{SoftwareSuspend, SuspendMode};
    use ckpt_cluster::Coordinator;
    use simos::trace::{Phase, TraceHandle};

    let trace = TraceHandle::recording();
    // (family, trace mechanism name, outcome end-to-end total).
    let mut totals: Vec<(&'static str, &'static str, u64)> = Vec::new();
    let families = [
        ("user-level", "user-signal", "libckpt"),
        ("syscall", "syscall-bypid", "epckpt"),
        ("kernel-signal", "kernel-signal", "chpox"),
        ("kernel-thread", "kthread-ioctl", "crak"),
        ("fork-concurrent", "fork-concurrent", "forkckpt"),
        ("hardware", "hw-revive", "revive"),
    ];
    // Aggregated software-TLB counters from the family kernels (only
    // rendered when `show_soft_tlb`).
    let mut tlb = simos::mem::MemStats::default();
    let mut note_tlb = |st: &simos::mem::MemStats| {
        tlb.tlb_hits += st.tlb_hits;
        tlb.tlb_misses += st.tlb_misses;
        tlb.tlb_flushes += st.tlb_flushes;
    };
    for (family, which, mech_name) in families {
        let mut k = fresh_kernel();
        k.set_trace(trace.clone());
        let pid = spawn(&mut k, NativeKind::SparseRandom, 512 * 1024, 8);
        let mut mech = build_mech(which, disk());
        mech.prepare(&mut k, pid).unwrap();
        k.run_for(20_000_000).unwrap();
        let o = mech.checkpoint(&mut k, pid).unwrap();
        totals.push((family, mech_name, o.total_ns));
        if let Some(p) = k.process(pid) {
            note_tlb(&p.mem.stats);
        }
    }
    // The seventh family: whole-machine hibernation.
    {
        let mut k = fresh_kernel();
        k.set_trace(trace.clone());
        let pid = spawn(&mut k, NativeKind::SparseRandom, 256 * 1024, 4);
        k.run_for(20_000_000).unwrap();
        let mut susp = SoftwareSuspend::new(shared_storage(SwapStore::new(1 << 30)));
        let r = susp.hibernate(&mut k, SuspendMode::ToDisk).unwrap();
        totals.push(("hibernate", "swsusp", r.total_ns));
        if let Some(p) = k.process(pid) {
            note_tlb(&p.mem.stats);
        }
    }
    // A small coordinated round + one migration so the cluster section has
    // something to show.
    {
        let mut c = Cluster::new(2, CostModel::circa_2005(), FailureConfig::none());
        c.set_trace(trace.clone());
        let job = ckpt_cluster::MpiJob::launch(
            &mut c,
            "app",
            2,
            NativeKind::SparseRandom,
            AppParams::small(),
            4,
            32 * 1024,
        )
        .unwrap();
        let mut coord = Coordinator::new("trace-demo", TrackerKind::KernelPage);
        coord.checkpoint(&mut c, &job).unwrap();
        let mut params = AppParams::small();
        params.total_steps = u64::MAX;
        let pid = c
            .node(NodeId(0))
            .kernel()
            .unwrap()
            .spawn_native(NativeKind::SparseRandom, params)
            .unwrap();
        c.advance(10_000_000);
        migrate(&mut c, NodeId(0), pid, NodeId(1), MigrationMode::FreshPid, None).unwrap();
    }
    // Quorum-replication counters (rendered only in the standalone trace):
    // a healthy commit, a commit through a transient, a read-repair of a
    // replica that missed a round, and a refused write past the quorum.
    // The counters ride outside `events_recorded`, so this cannot disturb
    // the pinned `report all` output even if it ran unconditionally.
    if show_soft_tlb {
        let cost = CostModel::circa_2005();
        let mut rs = ckpt_replica::ReplicatedStore::fresh(3, 2).with_trace(trace.clone());
        rs.store("trace/img", &[7u8; 4096], &cost).unwrap();
        rs.replica_set().node(0).inject_transients(1);
        rs.store("trace/img", &[8u8; 4096], &cost).unwrap();
        rs.replica_set().node(1).fail();
        rs.store("trace/img", &[9u8; 4096], &cost).unwrap();
        rs.replica_set().node(1).repair();
        let _ = rs.load("trace/img", &cost).unwrap();
        rs.replica_set().node(0).fail();
        rs.replica_set().node(2).fail();
        assert!(rs.store("trace/img", &[10u8; 4096], &cost).is_err());
    }
    let rep = trace.report();

    const COLS: [Phase; 10] = [
        Phase::Pending,
        Phase::Freeze,
        Phase::Walk,
        Phase::Capture,
        Phase::Compress,
        Phase::Store,
        Phase::Prune,
        Phase::Rearm,
        Phase::Resume,
        Phase::Other,
    ];
    let mut rows = Vec::new();
    let mut worst_pct = 0.0f64;
    for (family, name, total) in &totals {
        let traced = rep.mechanism_total(name);
        let pct = if *total > 0 {
            (traced.abs_diff(*total)) as f64 * 100.0 / *total as f64
        } else {
            0.0
        };
        worst_pct = worst_pct.max(pct);
        let mut row = vec![format!("{family} ({name})")];
        for ph in COLS {
            row.push(ns(rep.phase_cost(name, ph)));
        }
        row.push(ns(traced));
        row.push(ns(*total));
        row.push(format!("{pct:.2}%"));
        rows.push(row);
    }
    let mut out = format!(
        "TRACE — per-mechanism phase costs (one full checkpoint each)\n{}",
        table(
            &[
                "mechanism", "pending", "freeze", "walk", "capture", "compress", "store",
                "prune", "rearm", "resume", "other", "trace total", "outcome total", "diff",
            ],
            &rows,
        )
    );
    out.push_str(&format!(
        "worst trace-vs-outcome divergence: {worst_pct:.2}% (reconciles within 1%: {})\n",
        worst_pct < 1.0
    ));

    out.push_str("\nkernel events (count, attributed cost):\n");
    for (ev, ctr) in &rep.kernel {
        out.push_str(&format!(
            "  {:<16} {:>8}  {}\n",
            ev.label(),
            ctr.count,
            ns(ctr.cost_ns)
        ));
    }
    out.push_str("\nstorage operations (backend, op, count, bytes, stall):\n");
    for ((op, class), agg) in &rep.storage {
        out.push_str(&format!(
            "  {:<12} {:<7} {:>4}  {:>10}  {}\n",
            class,
            op.label(),
            agg.ops,
            bytes(agg.bytes),
            ns(agg.stall_ns)
        ));
    }
    out.push_str("\ncluster events:\n");
    for rec in &rep.cluster {
        out.push_str(&format!("  t={:<14} {:?}\n", rec.at_ns, rec.event));
    }
    out.push_str(&format!("\ntotal events recorded: {}\n", rep.events_recorded));

    if show_soft_tlb {
        out.push_str("\nsoftware TLB (host-side translation cache, family kernels):\n");
        let probes = tlb.tlb_hits + tlb.tlb_misses;
        let rate = if probes > 0 {
            tlb.tlb_hits as f64 * 100.0 / probes as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "  hits: {}  misses: {}  hit rate: {rate:.2}%  flushes: {}\n",
            tlb.tlb_hits, tlb.tlb_misses, tlb.tlb_flushes
        ));
        out.push_str("  flushes by invalidation site (the paper's flush events):\n");
        for (site, n) in &rep.soft_tlb_flushes {
            out.push_str(&format!("    {:<16} {:>8}\n", site.label(), n));
        }
        // Pool activity for the traced checkpoints. Steals and merge
        // stalls are scheduling artifacts (zero on a width-1 pool), so
        // like the TLB section this only appears in the standalone
        // `report trace`, never in the pinned `report all` output.
        let pe = &rep.par_encode;
        out.push_str(&format!(
            "\nparallel encode pool ({} workers):\n  tasks: {}  steals: {}  merge stalls: {}\n",
            ckpt_par::global().workers(),
            pe.tasks,
            pe.steals,
            pe.merge_stalls
        ));
        let ra = &rep.replication;
        out.push_str(&format!(
            "\nquorum replication (replicated(3,2) demo ops):\n  \
             commits: {}  retries: {}  read repairs: {}  quorum losses: {}\n",
            ra.commits, ra.retries, ra.repairs, ra.quorum_losses
        ));
    }
    out
}

/// Every experiment `report all` runs, in order, with the short names the
/// timing harness and CI gate key on. The trace entry uses the
/// soft-TLB-suppressed variant so the concatenated output is stable.
#[allow(clippy::type_complexity)]
pub const EXPERIMENTS: &[(&str, fn() -> String)] = &[
    ("table1", t1_table),
    ("figure1", f1_figure),
    ("c1_gather", c1_gather),
    ("c2_incremental", c2_incremental),
    ("c3_blocksize", c3_blocksize),
    ("c3b_omission", c3b_omission),
    ("c4_mechanisms", c4_mechanisms),
    ("c5_fork", c5_fork),
    ("c6_storage", c6_storage),
    ("c7a_cluster_mechanistic", c7_cluster_mechanistic),
    ("c7b_cluster_scale", c7_cluster_scale),
    ("c8_migration", c8_migration),
    ("c9_batch_vs_autonomic", c9_batch_vs_autonomic),
    ("c10_sensitivity", c10_sensitivity),
    ("trace", trace_breakdown_for_all),
];

fn trace_breakdown_for_all() -> String {
    trace_breakdown_impl(false)
}

/// Standalone experiments that are *not* part of `report all` (so the
/// pinned `all` output never moves) but whose wall-clock still belongs in
/// the `report timings` budget. C11 stays out: the full crash matrix runs
/// for tens of seconds and has its own CI gate.
#[allow(clippy::type_complexity)]
pub const TIMED_STANDALONE: &[(&str, fn() -> String)] = &[
    ("c12_replication", c12_replication),
    ("c13_dedup", c13_dedup),
    ("c14_shard", c14_shard),
    ("c15_livemig", c15_livemig),
    ("c16_erasure", c16_erasure),
];

// ---------------------------------------------------------------------
// C11 — the crash matrix
// ---------------------------------------------------------------------

/// C11: the exhaustive fault-injection matrix — every mechanism family ×
/// every instrumented crash site × every storage backend × every fault
/// kind, each cell ending in bit-exact restart or typed detection.
///
/// Deliberately **not** part of `report all`: it runs thousands of
/// crash/restart scenarios (`report c11` takes a few seconds in release).
pub fn c11_crash_matrix() -> String {
    use ckpt_core::crashpoint::{run_crash_matrix, CellOutcome};

    let mut report = run_crash_matrix();
    // The live-migration tier lives in ckpt-cluster (it crashes wire
    // frames mid-migration, not checkpoint stores); its cells join the
    // same report so the totals line counts every proven cell.
    report.cells.extend(ckpt_cluster::run_migration_tier());
    let mut rows = Vec::new();
    for (cfg, [restarted, detected, skipped, violations]) in report.by_config() {
        rows.push(vec![
            cfg.mechanism.to_string(),
            cfg.backend.to_string(),
            (restarted + detected + skipped + violations).to_string(),
            restarted.to_string(),
            detected.to_string(),
            skipped.to_string(),
            violations.to_string(),
        ]);
    }
    let per_config = table(
        &[
            "mechanism",
            "backend",
            "cells",
            "restarted",
            "detected",
            "skipped",
            "violations",
        ],
        &rows,
    );

    // Survivability: the media-class contract vs what the matrix measured.
    // Trait-mechanism columns crash with node failure + repair; the
    // hibernate columns power the node down.
    let class_of = |backend: &str| match backend {
        "local-disk" => StorageClass::LocalDisk,
        "remote" => StorageClass::Remote,
        "nvram" => StorageClass::Nvram,
        "swap" => StorageClass::Swap,
        "ram" => StorageClass::Ram,
        other => unreachable!("unknown backend {other}"),
    };
    let mut srows = Vec::new();
    for backend in ["local-disk", "remote", "nvram", "swap", "ram"] {
        let class = class_of(backend);
        let cells: Vec<_> = report
            .cells
            .iter()
            .filter(|c| c.backend == backend)
            .collect();
        let concrete = cells
            .iter()
            .filter(|c| !matches!(c.outcome, CellOutcome::Skipped { .. }))
            .count();
        let measured_restart = cells
            .iter()
            .any(|c| matches!(c.outcome, CellOutcome::Restarted { .. }));
        srows.push(vec![
            backend.to_string(),
            class.survives_node_loss().to_string(),
            class.survives_power_down().to_string(),
            concrete.to_string(),
            measured_restart.to_string(),
        ]);
    }
    let survivability = table(
        &[
            "medium",
            "class: survives node loss",
            "class: survives power-down",
            "concrete cells",
            "measured bit-exact restart",
        ],
        &srows,
    );

    format!(
        "C11 — crash matrix: every cell ends in bit-exact restart or typed detection\n\
         {per_config}\n\
         survivability — declared media class vs measured outcome\n\
         {survivability}\n\
         totals: {} cells — {} restarted, {} detected, {} skipped, {} violations",
        report.cells.len(),
        report.restarted(),
        report.detected(),
        report.skipped(),
        report.violations().len()
    )
}

// ---------------------------------------------------------------------
// C12 / C14 / C16 — ported onto the sweep engine (crate::swept)
// ---------------------------------------------------------------------

// The quorum-replication, sharded-control-plane and erasure-storage
// experiments now run as declarative sweep plans; their text renderers
// live next to the plans and stay byte-identical to the pre-port
// output. Re-exported here so `EXPERIMENTS`-style tables and callers
// keep their flat `ckpt_bench::c12_replication()` paths.
pub use crate::swept::{c12_replication, c14_shard, c16_erasure};

// ---------------------------------------------------------------------
// C13 — content-addressed dedup + delta storage
// ---------------------------------------------------------------------

/// C13: what the content-addressed store buys. Three sweeps over
/// [`ckpt_cas::DedupStore`]: (a) dedup ratio per guest app as a lineage of
/// one full plus incremental checkpoints lands in one store — the
/// XOR-delta path makes successive versions nearly free; (b) co-scheduled
/// identical guests sharing one chunk store — cross-process dedup makes
/// the n-th copy of an image cost almost nothing; (c) commit bytes pushed
/// to a (3,2) replica quorum as the guest count grows, raw image path vs
/// dedup path — replicated commit traffic scales with novelty, not image
/// size.
///
/// Standalone like C11/C12 (`report c13` / `report dedup`); not part of
/// `report all`.
pub fn c13_dedup() -> String {
    use ckpt_cas::DedupStore;
    use ckpt_core::{capture_image, CaptureOptions};
    use ckpt_replica::{ReplicaConfig, ReplicaSet, ReplicatedStore};
    use ckpt_storage::ImageKey;

    let cost = CostModel::circa_2005();

    // A lineage of encoded checkpoint images: one guest captured after
    // each burst of steps. Fully deterministic, so two identical guests
    // produce byte-identical lineages. Captured uncompressed: the chunk
    // store replaces generic page compression, and stable page offsets
    // are what let the XOR delta line up successive versions.
    let lineage = |kind: NativeKind, count: u64| -> Vec<Vec<u8>> {
        let mut k = fresh_kernel();
        let mut p = AppParams::small();
        p.mem_bytes = 128 * 1024;
        p.total_steps = u64::MAX;
        let pid = k.spawn_native(kind, p).expect("spawn");
        (0..count)
            .map(|seq| {
                run_steps(&mut k, pid, 8);
                let mut opts = CaptureOptions::full("c13", seq);
                opts.compress = false;
                let img = capture_image(&mut k, pid, &opts).expect("capture");
                ckpt_image::encode(&img)
            })
            .collect()
    };

    // (a) Dedup ratio across the guest app zoo: each app's lineage (one
    // full + three incrementals) lands in its own store.
    let mut arows = Vec::new();
    for kind in NativeKind::ALL {
        let versions = lineage(kind, 4);
        let mut store =
            DedupStore::new(Box::new(LocalDisk::new(1 << 30))).with_pool(ckpt_par::global().clone());
        let stats = store.stats_handle();
        for (seq, v) in versions.iter().enumerate() {
            let key = ImageKey::new("c13/app", 1, seq as u64).to_string();
            store.store(&key, v, &cost).unwrap();
        }
        let s = stats.snapshot();
        arows.push(vec![
            format!("{kind:?}"),
            versions.len().to_string(),
            bytes(s.logical_bytes),
            bytes(s.physical_bytes),
            format!("{:.2}x", s.dedup_ratio()),
            s.delta_objects.to_string(),
        ]);
    }
    let zoo = table(
        &["app", "versions", "logical", "physical", "dedup ratio", "delta commits"],
        &arows,
    );

    // (b) Co-scheduled identical guests: n guests, one shared chunk store,
    // each guest checkpointing under its own job key. Determinism makes
    // the images byte-identical, so the chunk store holds one physical
    // copy no matter how many guests commit.
    let mut brows = Vec::new();
    let mut cross_ratio_at_8 = 0.0;
    for n in [1usize, 2, 4, 8] {
        let mut store =
            DedupStore::new(Box::new(LocalDisk::new(1 << 30))).with_pool(ckpt_par::global().clone());
        let stats = store.stats_handle();
        let mut identical = true;
        let mut first: Option<Vec<u8>> = None;
        for g in 0..n {
            // Each guest runs in its own kernel (its own node) — the
            // store is the only shared component.
            let img = lineage(NativeKind::SparseRandom, 1).remove(0);
            match &first {
                None => first = Some(img.clone()),
                Some(f) => identical &= *f == img,
            }
            let key = ImageKey::new(format!("c13/g{g}"), 1, 0).to_string();
            store.store(&key, &img, &cost).unwrap();
        }
        let s = stats.snapshot();
        if n == 8 {
            cross_ratio_at_8 = s.dedup_ratio();
        }
        brows.push(vec![
            n.to_string(),
            identical.to_string(),
            bytes(s.logical_bytes),
            bytes(s.physical_bytes),
            format!("{:.2}x", s.dedup_ratio()),
        ]);
    }
    let coscheduled = table(
        &["guests", "images identical", "logical", "physical", "dedup ratio"],
        &brows,
    );

    // (c) Replicated commit bytes vs guest count: every guest commits a
    // three-version lineage to a (3,2) quorum. The raw path ships every
    // byte of every image to every replica; the dedup path ships only
    // chunks the quorum has not already acked.
    let versions = lineage(NativeKind::SparseRandom, 3);
    let mut crows = Vec::new();
    let mut reduction_at_8 = 0.0;
    for n in [1usize, 2, 4, 8] {
        let raw_set = ReplicaSet::new(3);
        let mut raw = ReplicatedStore::new(raw_set.clone(), ReplicaConfig::new(3, 2));
        let dedup_set = ReplicaSet::new(3);
        let mut dedup = DedupStore::new(Box::new(ReplicatedStore::new(
            dedup_set.clone(),
            ReplicaConfig::new(3, 2),
        )))
        .with_pool(ckpt_par::global().clone());
        for g in 0..n {
            for (seq, v) in versions.iter().enumerate() {
                let key = ImageKey::new(format!("c13/g{g}"), 1, seq as u64).to_string();
                raw.store(&key, v, &cost).unwrap();
                dedup.store(&key, v, &cost).unwrap();
            }
        }
        let raw_bytes = raw_set.bytes_ingested();
        let dedup_bytes = dedup_set.bytes_ingested();
        let reduction = raw_bytes as f64 / dedup_bytes.max(1) as f64;
        if n == 8 {
            reduction_at_8 = reduction;
        }
        crows.push(vec![
            n.to_string(),
            bytes(raw_bytes),
            bytes(dedup_bytes),
            format!("{reduction:.2}x"),
        ]);
    }
    let replication = table(
        &["guests", "raw commit bytes", "dedup commit bytes", "reduction"],
        &crows,
    );

    format!(
        "C13 — content-addressed dedup: commit bytes scale with novelty, not image size\n\
         dedup ratio per guest app (1 full + 3 incremental checkpoints, one store each)\n\
         {zoo}\n\
         co-scheduled identical guests sharing one chunk store\n\
         {coscheduled}\n\
         commit bytes pushed to a (3,2) replica quorum, raw images vs dedup\n\
         {replication}\n\
         cross-process dedup ratio at n=8: {cross_ratio_at_8:.2}x\n\
         replication commit reduction at n=8: {reduction_at_8:.2}x"
    )
}


// ---------------------------------------------------------------------
// C15 — live migration: downtime vs dirty rate
// ---------------------------------------------------------------------

/// C15: freeze-copy vs iterative pre-copy vs post-copy live migration
/// across the guest app zoo at three dirty-rate levels (writes per guest
/// step).
///
/// Freeze-copy stops the guest for the whole capture + transfer +
/// restore; pre-copy ships dirty rounds while the guest runs and freezes
/// only the residual (auto-converge throttling when the dirty rate
/// outruns the wire); post-copy resumes on the target immediately and
/// pulls pages on demand. The table shows downtime shrinking by orders
/// of magnitude for both live strategies on every guest, and the
/// pre-copy round count growing with the dirty rate — the adaptive
/// cutover working for its living. The gate lines at the bottom are what
/// CI greps.
///
/// Standalone like C12/C13/C14 (`report c15`); not part of `report all`.
pub fn c15_livemig() -> String {
    use ckpt_cluster::{migrate_postcopy, migrate_precopy, LiveMigConfig};
    use simos::cost::PAGE_SIZE;

    // A 2-node cluster with one endless guest on node 0, warmed up so the
    // resident set is fully built before migration starts.
    let setup = |kind: NativeKind, writes: u64| -> (Cluster, Pid) {
        let mut c = Cluster::new(2, CostModel::circa_2005(), FailureConfig::none());
        let mut p = AppParams::small();
        p.total_steps = u64::MAX;
        p.writes_per_step = writes;
        let pid = c
            .node(NodeId(0))
            .kernel()
            .unwrap()
            .spawn_native(kind, p)
            .expect("spawn");
        c.advance(5_000_000);
        (c, pid)
    };

    let cfg = LiveMigConfig::default();
    let mut rows = Vec::new();
    let mut pre_beats_freeze = true;
    let mut post_beats_freeze = true;
    let mut rounds_never_shrink = true;
    let mut rounds_grow_somewhere = false;
    let mut max_pre_downtime = 0u64;
    let mut max_post_downtime = 0u64;
    for kind in NativeKind::ALL {
        let mut rounds_by_level = Vec::new();
        for (level, writes) in [("low", 2u64), ("moderate", 8), ("high", 32)] {
            // Freeze-copy baseline: downtime is the whole migration, read
            // off the two kernel clocks (capture + wire on the source,
            // receive + restore on the target).
            let (mut c, pid) = setup(kind, writes);
            let s0 = c.node(NodeId(0)).now();
            let t0 = c.node(NodeId(1)).now();
            migrate(&mut c, NodeId(0), pid, NodeId(1), MigrationMode::FreshPid, None)
                .expect("freeze-copy");
            let freeze_dt = (c.node(NodeId(0)).now() - s0) + (c.node(NodeId(1)).now() - t0);

            let (mut c, pid) = setup(kind, writes);
            let pre = migrate_precopy(&mut c, NodeId(0), pid, NodeId(1), &cfg)
                .expect("pre-copy converges");

            let (mut c, pid) = setup(kind, writes);
            let post = migrate_postcopy(&mut c, NodeId(0), pid, NodeId(1), &cfg)
                .expect("post-copy");
            let post_bytes = post.bytes_minimal + post.residual_moved() * PAGE_SIZE;

            pre_beats_freeze &= pre.downtime_ns < freeze_dt;
            post_beats_freeze &= post.downtime_ns < freeze_dt;
            max_pre_downtime = max_pre_downtime.max(pre.downtime_ns);
            max_post_downtime = max_post_downtime.max(post.downtime_ns);
            rounds_by_level.push(pre.rounds);

            rows.push(vec![
                format!("{kind:?}"),
                format!("{level} ({writes}/step)"),
                ns(freeze_dt),
                ns(pre.downtime_ns),
                pre.rounds.to_string(),
                format!("{}%", pre.final_duty_pct),
                bytes(pre.bytes_total()),
                ns(post.downtime_ns),
                post.demand_pages.to_string(),
                post.prefetch_pages.to_string(),
                bytes(post_bytes),
            ]);
        }
        // Adaptation: the round count must never drop as the dirty rate
        // rises, and must strictly rise for at least one guest overall.
        rounds_never_shrink &= rounds_by_level.windows(2).all(|w| w[0] <= w[1]);
        rounds_grow_somewhere |= rounds_by_level.last() > rounds_by_level.first();
    }
    let tbl = table(
        &[
            "guest",
            "dirty rate",
            "freeze downtime",
            "pre downtime",
            "rounds",
            "duty",
            "pre bytes",
            "post downtime",
            "demand",
            "prefetch",
            "post bytes",
        ],
        &rows,
    );

    let adapts = rounds_never_shrink && rounds_grow_somewhere;
    format!(
        "C15 — live migration: iterative pre-copy / post-copy vs freeze-copy\n\
         {tbl}\n\
         gate: pre-copy beats freeze-copy downtime on every guest at every dirty rate: {pre_beats_freeze}\n\
         gate: post-copy beats freeze-copy downtime on every guest at every dirty rate: {post_beats_freeze}\n\
         gate: pre-copy rounds adapt to the dirty rate (monotone, growing): {adapts}\n\
         worst-case pre-copy downtime: {} (cutover transfer budget {}; downtime adds the capture/restore floor)\n\
         worst-case post-copy downtime: {}",
        ns(max_pre_downtime),
        ns(cfg.downtime_budget_ns),
        ns(max_post_downtime),
    )
}


/// Run every experiment and concatenate (the `report all` output).
///
/// Experiments are fully isolated (each builds its own kernels, storage
/// and trace sinks), so they run concurrently on the pool; the ordered
/// merge concatenates in `EXPERIMENTS` order, keeping the output
/// byte-identical to the serial run.
pub fn run_all() -> String {
    let parts: Vec<String> = ckpt_par::global().par_map_ordered(
        EXPERIMENTS.to_vec(),
        || (),
        |_, _, (_, f)| f(),
    );
    parts.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_matches_paper() {
        assert!(t1_table().contains("matches the paper byte-for-byte: true"));
    }

    #[test]
    fn f1_has_all_leaves() {
        let f = f1_figure();
        assert!(f.contains("Kernel thread"));
        assert!(f.contains("SafetyNet"));
    }

    #[test]
    fn c1_user_level_needs_more_crossings() {
        let out = c1_gather();
        // The last column is the ratio; just sanity-check the table shape.
        assert!(out.contains("crossing ratio"));
        assert!(out.lines().count() > 6);
    }

    #[test]
    fn c3_has_seven_rows() {
        let out = c3_blocksize();
        assert!(out.contains("prob-64"));
        assert!(out.contains("hw-line-64"));
        assert!(out.contains("adaptive-64-4096"));
    }

    #[test]
    fn c6_storage_semantics_table() {
        let out = c6_storage();
        assert!(out.contains("remote"));
        // Remote must be the only medium retrievable on node loss.
        let remote_line = out.lines().find(|l| l.contains("| remote")).unwrap();
        assert!(remote_line.contains("true"));
    }

}
