//! The RunBook: a reproducibility manifest over one batch of sweep
//! artifacts.
//!
//! The RunBook is the one document a reviewer needs to re-run and verify a
//! sweep batch: which plans ran (name + plan hash), which artifact holds
//! each plan's report (name + content hash of the canonical bytes), every
//! job seed, and the engine version that produced it all. It is itself a
//! canonical artifact — no timestamps, no hostnames, nothing
//! non-deterministic — so two honest runs of the same tree produce
//! byte-identical RunBooks, and CI can diff them like any other artifact.

use crate::artifact::{canonical_document, fnv1a64_hex, Json};
use crate::sweep::{sweep_artifact, SweepRun, ENGINE};

/// One experiment's artifact entry: the experiment name (`c16`), the
/// artifact file it is written to, and the sweep runs inside it.
pub struct ArtifactEntry<'a> {
    pub experiment: &'a str,
    pub file: String,
    pub runs: &'a [SweepRun],
}

/// Assemble the RunBook over a batch of sweep artifacts.
pub fn build_runbook(entries: &[ArtifactEntry<'_>]) -> Json {
    let mut artifacts = Vec::new();
    let mut total_jobs = 0u64;
    for e in entries {
        let bytes = canonical_document(&sweep_artifact(e.runs));
        let plans: Vec<Json> = e
            .runs
            .iter()
            .map(|r| {
                total_jobs += r.jobs.len() as u64;
                Json::obj(vec![
                    ("jobs", Json::from(r.jobs.len())),
                    ("name", Json::Str(r.plan_name.clone())),
                    ("plan_hash", Json::Str(r.plan_hash.clone())),
                    (
                        "seeds",
                        Json::Arr(r.jobs.iter().map(|j| Json::from(j.spec.seed)).collect()),
                    ),
                ])
            })
            .collect();
        artifacts.push(Json::obj(vec![
            ("content_hash", Json::Str(fnv1a64_hex(bytes.as_bytes()))),
            ("experiment", Json::from(e.experiment)),
            ("file", Json::Str(e.file.clone())),
            ("plans", Json::Arr(plans)),
        ]));
    }
    Json::obj(vec![
        ("artifacts", Json::Arr(artifacts)),
        ("engine", Json::from(ENGINE)),
        ("total_jobs", Json::from(total_jobs)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_sweep, SweepPlan};

    #[test]
    fn runbook_pins_plan_and_artifact_hashes() {
        let plan = SweepPlan::new("rb-test").seed(3).axis_ints("x", &[1, 2, 3]);
        let run = run_sweep(&plan, |j| Json::obj(vec![("x2", Json::from((j.int("x") * 2) as u64))]));
        let runs = [run];
        let rb = build_runbook(&[ArtifactEntry {
            experiment: "demo",
            file: "SWEEP_demo.json".into(),
            runs: &runs,
        }]);
        let text = canonical_document(&rb);
        let parsed = crate::artifact::parse_document(&text).expect("parse");
        assert!(parsed.keys_sorted);
        let arts = rb.get("artifacts").and_then(Json::as_arr).expect("artifacts");
        assert_eq!(arts.len(), 1);
        let entry = arts[0].as_obj().expect("entry");
        // The content hash is the hash of the artifact's canonical bytes.
        let bytes = canonical_document(&sweep_artifact(&runs));
        assert_eq!(
            entry.get("content_hash").and_then(Json::as_str),
            Some(fnv1a64_hex(bytes.as_bytes()).as_str())
        );
        assert_eq!(rb.get("total_jobs").and_then(|j| j.as_u64()), Some(3));
        // Seeds are echoed per plan, one per job.
        let seeds = arts[0]
            .get("plans")
            .and_then(Json::as_arr)
            .and_then(|p| p[0].get("seeds"))
            .and_then(Json::as_arr)
            .expect("seeds");
        assert_eq!(seeds.len(), 3);
    }
}
