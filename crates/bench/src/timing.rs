//! Wall-clock timing of the experiment suite (`report timings`).
//!
//! Virtual time is what the experiments are *about*; wall-clock is what
//! they *cost*. This module measures the latter per experiment and writes
//! `BENCH_report.json`, the repo's perf trajectory — CI archives the file
//! and gates on the headline experiment (C7a) so a translation-cache
//! regression shows up as a red build, not a slowly rotting report.

use crate::experiments::{EXPERIMENTS, TIMED_STANDALONE};
use std::time::Instant;

/// One experiment's measurement.
pub struct ExperimentTiming {
    pub name: &'static str,
    pub wall_s: f64,
    /// Bytes of report output produced (a cheap sanity signal that the
    /// experiment actually ran).
    pub output_bytes: usize,
}

/// Run every experiment, timing each — the `report all` set plus the
/// timed standalone experiments (C12), so new report surfaces land in the
/// `total_wall_s` budget the CI gate enforces. Output text is discarded;
/// only wall-clock and output size are kept.
pub fn measure_all() -> Vec<ExperimentTiming> {
    EXPERIMENTS
        .iter()
        .chain(TIMED_STANDALONE.iter())
        .map(|(name, f)| {
            let start = Instant::now();
            let out = f();
            ExperimentTiming {
                name,
                wall_s: start.elapsed().as_secs_f64(),
                output_bytes: out.len(),
            }
        })
        .collect()
}

/// Render timings as JSON. One `{"name": ..., "output_bytes": ...,
/// "wall_s": ...}` object per line inside the array so line tools (the CI
/// gate uses grep/awk) can pull a single experiment without a JSON
/// parser. Keys are sorted and floats fixed at three decimals — the same
/// canonical-form rules the sweep artifacts follow (see DESIGN.md), so
/// CI diffs of the file are stable.
pub fn timings_json(timings: &[ExperimentTiming]) -> String {
    let total: f64 = timings.iter().map(|t| t.wall_s).sum();
    let mut s = String::from("{\n  \"experiments\": [\n");
    for (i, t) in timings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"output_bytes\": {}, \"wall_s\": {:.3}}}{}\n",
            t.name,
            t.output_bytes,
            t.wall_s,
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"total_wall_s\": {total:.3}\n}}\n"
    ));
    s
}

/// Render timings as an aligned human-readable table.
pub fn timings_table(timings: &[ExperimentTiming]) -> String {
    let total: f64 = timings.iter().map(|t| t.wall_s).sum();
    let mut s = String::from("experiment                 wall_s\n");
    for t in timings {
        s.push_str(&format!("{:<26} {:>7.3}\n", t.name, t.wall_s));
    }
    s.push_str(&format!("{:<26} {total:>7.3}\n", "total"));
    s
}

/// `report timings`: measure, print the table, write `BENCH_report.json`
/// into the current directory. Returns the table.
pub fn run_timings() -> std::io::Result<String> {
    let timings = measure_all();
    std::fs::write("BENCH_report.json", timings_json(&timings))?;
    Ok(timings_table(&timings))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_line_greppable() {
        let timings = vec![
            ExperimentTiming {
                name: "c7a_cluster_mechanistic",
                wall_s: 1.25,
                output_bytes: 42,
            },
            ExperimentTiming {
                name: "trace",
                wall_s: 0.5,
                output_bytes: 7,
            },
        ];
        let json = timings_json(&timings);
        // The CI gate greps the c7a line and awks the wall_s field out.
        let line = json
            .lines()
            .find(|l| l.contains("\"c7a_cluster_mechanistic\""))
            .expect("c7a line present");
        assert!(line.contains("\"wall_s\": 1.250"));
        assert!(json.contains("\"total_wall_s\": 1.750"));
    }

    #[test]
    fn experiment_list_covers_the_full_report() {
        let names: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"c7a_cluster_mechanistic"));
        assert!(names.contains(&"trace"));
        assert_eq!(names.len(), 15);
        // The timed set additionally budgets the standalone experiments.
        let timed: Vec<&str> = TIMED_STANDALONE.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            timed,
            ["c12_replication", "c13_dedup", "c14_shard", "c15_livemig", "c16_erasure"]
        );
    }
}
