//! The experiment reporter: regenerates every table and figure of the
//! reproduction on the deterministic simulator.
//!
//! ```text
//! cargo run --release --bin report -- all            # everything
//! cargo run --release --bin report -- all --timings  # + wall-clock to stderr
//! cargo run --release --bin report -- table1         # one experiment
//! cargo run --release --bin report -- timings        # wall-clock only
//! cargo run --release --bin report -- list           # what exists
//! ```

use ckpt_bench as bench;

/// `report all --timings`: identical stdout to plain `all` (the output is
/// golden-hashed), with per-experiment wall-clock on stderr and
/// `BENCH_report.json` written alongside.
fn run_all_timed() -> String {
    let mut timings = Vec::new();
    let mut parts = Vec::new();
    for (name, f) in bench::EXPERIMENTS {
        let start = std::time::Instant::now();
        let out = f();
        timings.push(bench::timing::ExperimentTiming {
            name,
            wall_s: start.elapsed().as_secs_f64(),
            output_bytes: out.len(),
        });
        parts.push(out);
    }
    if let Err(e) = std::fs::write("BENCH_report.json", bench::timing::timings_json(&timings)) {
        eprintln!("warning: could not write BENCH_report.json: {e}");
    }
    eprint!("{}", bench::timing::timings_table(&timings));
    parts.join("\n")
}

/// `report sweep [--out DIR]`: run every swept experiment, write the
/// canonical `SWEEP_cXX.json` artifacts plus the `RUNBOOK.json`
/// manifest, and print the per-cell wall-clock so CI can attribute a
/// perf regression to the specific sweep cell that moved.
fn run_sweep_cmd(out_dir: &std::path::Path) -> std::io::Result<String> {
    use bench::artifact::canonical_document;
    use bench::runbook::{build_runbook, ArtifactEntry};
    use bench::sweep::sweep_artifact;

    std::fs::create_dir_all(out_dir)?;
    let batch = bench::swept::sweep_batch();
    let mut out = String::new();
    for (exp, file, runs) in &batch {
        let doc = canonical_document(&sweep_artifact(runs));
        std::fs::write(out_dir.join(file), &doc)?;
        out.push_str(&format!("{exp} -> {file} ({} bytes)\n", doc.len()));
        for run in runs {
            let wall: f64 = run.cell_walls.iter().map(|(_, w)| w).sum();
            out.push_str(&format!(
                "  plan {} ({} jobs, plan_hash {}, wall_s={wall:.3})\n",
                run.plan_name,
                run.jobs.len(),
                run.plan_hash,
            ));
            for (label, w) in &run.cell_walls {
                out.push_str(&format!("    cell {} {label} wall_s={w:.3}\n", run.plan_name));
            }
        }
    }
    let entries: Vec<ArtifactEntry<'_>> = batch
        .iter()
        .map(|(exp, file, runs)| ArtifactEntry {
            experiment: exp,
            file: file.clone(),
            runs,
        })
        .collect();
    let rb = build_runbook(&entries);
    let rb_doc = canonical_document(&rb);
    std::fs::write(out_dir.join("RUNBOOK.json"), &rb_doc)?;
    let total = rb.get("total_jobs").and_then(|j| j.as_u64()).unwrap_or(0);
    out.push_str(&format!("RUNBOOK.json ({total} jobs total)"));
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(|s| s.as_str()).unwrap_or("all");
    let timed = args.iter().any(|a| a == "--timings");
    let out = match which {
        "list" => {
            println!("experiments: table1 figure1 c1 c2 c3 c3b c4 c5 c6 c7a c7b c8 c9 c10 c11 c12 c13 c14 c15 c16 trace timings sweep all");
            println!("(c11 crash matrix, c12 replication, c13 dedup, c14 shard, c15 livemig, c16 erasure are standalone — not part of `all`)");
            println!("(sweep writes the canonical SWEEP_cXX.json artifacts and the RUNBOOK.json manifest; --out DIR picks the directory)");
            return;
        }
        "table1" | "t1" => bench::t1_table(),
        "figure1" | "f1" => bench::f1_figure(),
        "c1" | "claims" => bench::c1_gather(),
        "c2" | "incremental" => bench::c2_incremental(),
        "c3" | "blocksize" => bench::c3_blocksize(),
        "c3b" | "omission" => bench::c3b_omission(),
        "c4" | "mechanisms" => bench::c4_mechanisms(),
        "c5" | "fork" => bench::c5_fork(),
        "c6" | "storage" => bench::c6_storage(),
        "c7a" => bench::c7_cluster_mechanistic(),
        "c7b" | "cluster" => bench::c7_cluster_scale(),
        "c8" | "migration" => bench::c8_migration(),
        "c9" | "batch" => bench::c9_batch_vs_autonomic(),
        "c10" | "sensitivity" => bench::c10_sensitivity(),
        "c11" | "crashmatrix" => bench::c11_crash_matrix(),
        "c12" | "replication" => bench::c12_replication(),
        "c13" | "dedup" => bench::c13_dedup(),
        "c14" | "shard" => bench::c14_shard(),
        "c15" | "livemig" => bench::c15_livemig(),
        "c16" | "erasure" => bench::c16_erasure(),
        "trace" => bench::trace_breakdown(),
        "timings" => match bench::run_timings() {
            Ok(table) => table,
            Err(e) => {
                eprintln!("could not write BENCH_report.json: {e}");
                std::process::exit(1);
            }
        },
        "sweep" => {
            let out_dir = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| std::path::PathBuf::from("."));
            match run_sweep_cmd(&out_dir) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("could not write sweep artifacts: {e}");
                    std::process::exit(1);
                }
            }
        }
        "all" if timed => run_all_timed(),
        "all" => bench::run_all(),
        other => {
            eprintln!("unknown experiment '{other}' — try: report list");
            std::process::exit(2);
        }
    };
    println!("{out}");
}
