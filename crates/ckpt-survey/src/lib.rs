//! # ckpt-survey — the twelve surveyed systems, executable
//!
//! This crate closes the loop on the reproduction: the paper's two
//! artifacts are **regenerated from the implementations**, not
//! transcribed.
//!
//! * [`systems`] — each surveyed system (VMADump … Checkpoint) as a
//!   configuration of the `ckpt-core` mechanism framework, buildable
//!   against a live kernel;
//! * [`table1`] — the feature matrix derived from mechanism metadata, with
//!   a diff test against the table as printed in the paper;
//! * [`figure1`] — the taxonomy tree, every leaf of which names the
//!   workspace module that implements it.

pub mod figure1;
pub mod systems;
pub mod table1;

pub use figure1::{render as render_figure1, taxonomy, TaxonomyNode};
pub use systems::{StorageSupport, SurveyedSystem, SystemId, TableRow};
pub use table1::{generated as table1_generated, paper as table1_paper, render as render_table1};
