//! Figure 1 of the paper: the classification of checkpoint/restart
//! implementations, regenerated as a tree whose every leaf names the
//! module in this workspace that implements it.

/// A node of the taxonomy tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaxonomyNode {
    pub label: &'static str,
    /// Example systems from the survey at this node.
    pub systems: &'static [&'static str],
    /// Workspace path implementing this leaf (empty for interior nodes).
    pub implemented_by: &'static str,
    pub children: Vec<TaxonomyNode>,
}

impl TaxonomyNode {
    fn leaf(
        label: &'static str,
        systems: &'static [&'static str],
        implemented_by: &'static str,
    ) -> Self {
        TaxonomyNode {
            label,
            systems,
            implemented_by,
            children: Vec::new(),
        }
    }

    fn interior(label: &'static str, children: Vec<TaxonomyNode>) -> Self {
        TaxonomyNode {
            label,
            systems: &[],
            implemented_by: "",
            children,
        }
    }

    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// All leaves, depth-first.
    pub fn leaves(&self) -> Vec<&TaxonomyNode> {
        if self.is_leaf() {
            return vec![self];
        }
        self.children.iter().flat_map(|c| c.leaves()).collect()
    }
}

/// Build the Figure 1 taxonomy.
pub fn taxonomy() -> TaxonomyNode {
    TaxonomyNode::interior(
        "Checkpoint/restart implementations",
        vec![
            TaxonomyNode::interior(
                "User-level",
                vec![
                    TaxonomyNode::leaf(
                        "Library calls in source code / pre-compiler",
                        &["libckpt", "libckp", "Thckpt", "Condor", "CLIP", "CCIFT"],
                        "ckpt_core::mechanism::user_level (Trigger::SelfCall)",
                    ),
                    TaxonomyNode::leaf(
                        "Signal handlers (SIGALRM / SIGUSR*)",
                        &["libckpt", "Esky", "Condor"],
                        "ckpt_core::mechanism::user_level (Trigger::Signal/Timer)",
                    ),
                    TaxonomyNode::leaf(
                        "LD_PRELOAD interposition",
                        &["ZAP's shim", "Dynamite"],
                        "ckpt_core::mechanism::user_level (preload = true)",
                    ),
                ],
            ),
            TaxonomyNode::interior(
                "System-level",
                vec![
                    TaxonomyNode::interior(
                        "Operating system",
                        vec![
                            TaxonomyNode::leaf(
                                "System call",
                                &["VMADump", "BPROC", "EPCKPT", "Checkpoint"],
                                "ckpt_core::mechanism::syscall / fork_concurrent",
                            ),
                            TaxonomyNode::leaf(
                                "Kernel-mode signal handler",
                                &["CHPOX", "Software Suspend"],
                                "ckpt_core::mechanism::ksignal / hibernate",
                            ),
                            TaxonomyNode::leaf(
                                "Kernel thread",
                                &["CRAK", "ZAP", "UCLiK", "BLCR", "LAM/MPI", "PsncR/C"],
                                "ckpt_core::mechanism::kthread",
                            ),
                        ],
                    ),
                    TaxonomyNode::interior(
                        "Hardware",
                        vec![
                            TaxonomyNode::leaf(
                                "Directory controller",
                                &["ReVive"],
                                "ckpt_core::mechanism::hardware (HwFlavor::Revive)",
                            ),
                            TaxonomyNode::leaf(
                                "Cache log buffers",
                                &["SafetyNet"],
                                "ckpt_core::mechanism::hardware (HwFlavor::Safetynet)",
                            ),
                        ],
                    ),
                ],
            ),
        ],
    )
}

/// Render the taxonomy as an ASCII tree.
pub fn render(node: &TaxonomyNode) -> String {
    let mut out = String::new();
    fn walk(node: &TaxonomyNode, prefix: &str, last: bool, root: bool, out: &mut String) {
        if root {
            out.push_str(node.label);
            out.push('\n');
        } else {
            out.push_str(prefix);
            out.push_str(if last { "└── " } else { "├── " });
            out.push_str(node.label);
            if !node.systems.is_empty() {
                out.push_str(&format!("  [{}]", node.systems.join(", ")));
            }
            if !node.implemented_by.is_empty() {
                out.push_str(&format!("  → {}", node.implemented_by));
            }
            out.push('\n');
        }
        let child_prefix = if root {
            String::new()
        } else {
            format!("{prefix}{}", if last { "    " } else { "│   " })
        };
        for (i, c) in node.children.iter().enumerate() {
            walk(c, &child_prefix, i + 1 == node.children.len(), false, out);
        }
    }
    walk(node, "", true, true, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_has_the_papers_eight_leaves() {
        let t = taxonomy();
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 8);
    }

    #[test]
    fn every_leaf_is_implemented() {
        for leaf in taxonomy().leaves() {
            assert!(
                !leaf.implemented_by.is_empty(),
                "leaf '{}' names no implementation",
                leaf.label
            );
            assert!(
                !leaf.systems.is_empty(),
                "leaf '{}' cites no surveyed systems",
                leaf.label
            );
        }
    }

    #[test]
    fn top_level_split_is_user_vs_system() {
        let t = taxonomy();
        let labels: Vec<&str> = t.children.iter().map(|c| c.label).collect();
        assert_eq!(labels, vec!["User-level", "System-level"]);
    }

    #[test]
    fn render_is_a_readable_tree() {
        let s = render(&taxonomy());
        assert!(s.contains("├──"));
        assert!(s.contains("└──"));
        assert!(s.contains("Kernel thread"));
        assert!(s.contains("ReVive"));
        assert!(s.contains("ckpt_core::mechanism::kthread"));
    }

    #[test]
    fn every_table1_system_appears_somewhere_in_figure1() {
        // The taxonomy and the feature table cover the same world (user-
        // level examples aside).
        let s = render(&taxonomy());
        for name in [
            "VMADump", "BPROC", "EPCKPT", "CRAK", "UCLiK", "CHPOX", "ZAP", "BLCR", "LAM/MPI",
            "PsncR/C", "Software Suspend", "Checkpoint",
        ] {
            assert!(s.contains(name), "{name} missing from Figure 1");
        }
    }
}
