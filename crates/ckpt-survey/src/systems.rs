//! The twelve surveyed systems as executable configurations of the
//! mechanism framework.
//!
//! Each [`SurveyedSystem`] knows how to *build a live instance* of itself
//! against a kernel; the Table 1 feature row is then derived from the
//! built mechanism's [`MechanismInfo`] plus the system's storage options —
//! i.e. the table is regenerated from code, not transcribed.

use ckpt_core::mechanism::fork_concurrent::ForkConcurrentMechanism;
use ckpt_core::mechanism::ksignal::KernelSignalMechanism;
use ckpt_core::mechanism::kthread::{KernelThreadMechanism, KthreadIface, KthreadVariant};
use ckpt_core::mechanism::syscall::{SyscallMechanism, SyscallVariant};
use ckpt_core::mechanism::user_level::{Trigger, UserLevelMechanism};
use ckpt_core::mechanism::{Initiation, Mechanism};
use ckpt_core::tracker::TrackerKind;
use ckpt_core::SharedStorage;
use ckpt_storage::StorageClass;

/// Storage options a system supports (the "stable storage" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageSupport {
    None,
    Local,
    LocalRemote,
}

impl StorageSupport {
    pub fn label(self) -> &'static str {
        match self {
            StorageSupport::None => "none",
            StorageSupport::Local => "local",
            StorageSupport::LocalRemote => "local,remote",
        }
    }

    pub fn classes(self) -> &'static [StorageClass] {
        match self {
            StorageSupport::None => &[],
            StorageSupport::Local => &[StorageClass::LocalDisk],
            StorageSupport::LocalRemote => &[StorageClass::LocalDisk, StorageClass::Remote],
        }
    }
}

/// One system of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemId {
    VmaDump,
    Bproc,
    Epckpt,
    Crak,
    Uclik,
    Chpox,
    Zap,
    Blcr,
    LamMpi,
    PsncRc,
    SoftwareSuspend,
    Checkpoint,
}

impl SystemId {
    pub const ALL: [SystemId; 12] = [
        SystemId::VmaDump,
        SystemId::Bproc,
        SystemId::Epckpt,
        SystemId::Crak,
        SystemId::Uclik,
        SystemId::Chpox,
        SystemId::Zap,
        SystemId::Blcr,
        SystemId::LamMpi,
        SystemId::PsncRc,
        SystemId::SoftwareSuspend,
        SystemId::Checkpoint,
    ];

    /// Table 1's display name.
    pub fn display_name(self) -> &'static str {
        match self {
            SystemId::VmaDump => "VMADump",
            SystemId::Bproc => "BPROC",
            SystemId::Epckpt => "EPCKPT",
            SystemId::Crak => "CRAK",
            SystemId::Uclik => "UCLik",
            SystemId::Chpox => "CHPOX",
            SystemId::Zap => "ZAP",
            SystemId::Blcr => "BLCR",
            SystemId::LamMpi => "LAM/MPI",
            SystemId::PsncRc => "PsncR/C",
            SystemId::SoftwareSuspend => "Software Suspend",
            SystemId::Checkpoint => "Checkpoint",
        }
    }
}

/// A surveyed system: identity + storage support + mechanism factory.
pub struct SurveyedSystem {
    pub id: SystemId,
    pub storage_support: StorageSupport,
    /// One-line provenance note (paper section the config encodes).
    pub notes: &'static str,
}

impl SurveyedSystem {
    pub fn get(id: SystemId) -> Self {
        use SystemId::*;
        let (storage_support, notes) = match id {
            VmaDump => (
                StorageSupport::LocalRemote,
                "self-checkpoint via new syscall; `current` macro; BProc's dumper",
            ),
            Bproc => (
                StorageSupport::None,
                "single-system-image process migration; VMADump underneath",
            ),
            Epckpt => (
                StorageSupport::LocalRemote,
                "checkpoint-by-pid syscall + launch tool; new kernel signal",
            ),
            Crak => (
                StorageSupport::LocalRemote,
                "kernel thread, /dev device + ioctl, loadable module",
            ),
            Uclik => (
                StorageSupport::Local,
                "CRAK lineage; restores original pid and file contents",
            ),
            Chpox => (
                StorageSupport::Local,
                "new kernel signal (SIGSYS-style) + /proc registration; MOSIX-tested",
            ),
            Zap => (
                StorageSupport::None,
                "CRAK successor; pod virtualization for migration",
            ),
            Blcr => (
                StorageSupport::LocalRemote,
                "kernel thread + ioctl; registration phase (handler + shared lib)",
            ),
            LamMpi => (
                StorageSupport::LocalRemote,
                "BLCR under an MPI library with modified functions (coordinated)",
            ),
            PsncRc => (
                StorageSupport::Local,
                "SUN platform kernel thread via /proc+ioctl; no data optimization",
            ),
            SoftwareSuspend => (
                StorageSupport::Local,
                "hibernate all processes to the swap partition; in mainline",
            ),
            Checkpoint => (
                StorageSupport::Local,
                "fork-based concurrent checkpointing via static syscalls",
            ),
        };
        SurveyedSystem {
            id,
            storage_support,
            notes,
        }
    }

    /// Build a live mechanism configured like this system. Software
    /// Suspend is whole-machine (see `ckpt_core::mechanism::hibernate`)
    /// and returns `None` here.
    pub fn build(&self, job: &str, storage: SharedStorage) -> Option<Box<dyn Mechanism>> {
        use SystemId::*;
        let name = self.module_name();
        Some(match self.id {
            VmaDump => Box::new(SyscallMechanism::new(
                name,
                SyscallVariant::SelfCkpt { every: 50 },
                job,
                storage,
                TrackerKind::FullOnly,
            )),
            Bproc => Box::new(SyscallMechanism::new(
                name,
                SyscallVariant::SelfCkpt { every: 50 },
                job,
                storage,
                TrackerKind::FullOnly,
            )),
            Epckpt => Box::new(SyscallMechanism::new(
                name,
                SyscallVariant::ByPid,
                job,
                storage,
                TrackerKind::FullOnly,
            )),
            Crak => Box::new(KernelThreadMechanism::new(
                name,
                job,
                storage,
                TrackerKind::FullOnly,
                KthreadIface::Ioctl,
                KthreadVariant::default(),
            )),
            Uclik => Box::new(KernelThreadMechanism::new(
                name,
                job,
                storage,
                TrackerKind::FullOnly,
                KthreadIface::Ioctl,
                KthreadVariant {
                    restore_original_pid: true,
                    save_file_contents: true,
                    ..Default::default()
                },
            )),
            Chpox => Box::new(KernelSignalMechanism::new(
                name,
                job,
                storage,
                TrackerKind::FullOnly,
            )),
            Zap => Box::new(KernelThreadMechanism::new(
                name,
                job,
                storage,
                TrackerKind::FullOnly,
                KthreadIface::Ioctl,
                KthreadVariant::default(),
            )),
            Blcr => Box::new(KernelThreadMechanism::new(
                name,
                job,
                storage,
                TrackerKind::FullOnly,
                KthreadIface::Ioctl,
                KthreadVariant {
                    needs_registration: true,
                    ..Default::default()
                },
            )),
            LamMpi => Box::new(KernelThreadMechanism::new(
                name,
                job,
                storage,
                TrackerKind::FullOnly,
                KthreadIface::Ioctl,
                KthreadVariant {
                    needs_registration: true, // BLCR underneath
                    ..Default::default()
                },
            )),
            PsncRc => Box::new(KernelThreadMechanism::new(
                name,
                job,
                storage,
                TrackerKind::FullOnly,
                KthreadIface::ProcWrite,
                KthreadVariant {
                    compress: false,
                    ..Default::default()
                },
            )),
            SoftwareSuspend => return None,
            Checkpoint => {
                let mut m = ForkConcurrentMechanism::new(name, job, storage);
                m.invoked_by_app = true;
                m.self_every = 50;
                Box::new(m)
            }
        })
    }

    /// The kernel-module / static-extension name the built mechanism uses.
    pub fn module_name(&self) -> &'static str {
        use SystemId::*;
        match self.id {
            VmaDump => "vmadump",
            Bproc => "bproc",
            Epckpt => "epckpt",
            Crak => "crak",
            Uclik => "uclik",
            Chpox => "chpox",
            Zap => "zap",
            Blcr => "blcr",
            LamMpi => "lam_mpi",
            PsncRc => "psnc_rc",
            SoftwareSuspend => "swsusp",
            Checkpoint => "checkpoint5",
        }
    }

    /// A sensible user-level comparison point is not in Table 1 — the
    /// table only surveys system-level implementations plus the hybrid
    /// Software Suspend; user-level libraries are discussed in Section 3.
    /// This helper builds the canonical user-level baseline used by the
    /// experiments.
    pub fn user_level_baseline(job: &str, storage: SharedStorage) -> UserLevelMechanism {
        UserLevelMechanism::new(
            "libckpt",
            job,
            storage,
            TrackerKind::UserPage,
            Trigger::Signal {
                sig: simos::signal::Sig::SIGUSR1,
            },
        )
    }
}

/// Derived Table 1 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRow {
    pub name: &'static str,
    pub incremental: &'static str,
    pub transparency: &'static str,
    pub stable_storage: &'static str,
    pub initiation: &'static str,
    pub kernel_module: &'static str,
}

impl SurveyedSystem {
    /// Derive the Table 1 row from the *built* mechanism's metadata.
    pub fn table_row(&self) -> TableRow {
        let yn = |b: bool| if b { "yes" } else { "no" };
        // Software Suspend has no Mechanism impl (whole-machine); its
        // properties come from the hibernate module's nature: static
        // kernel, user-initiated script, full images, transparent.
        let (incremental, transparent, initiation, module) = match self.id {
            SystemId::SoftwareSuspend => (false, true, Initiation::UserInitiated, false),
            _ => {
                let storage = ckpt_core::shared_storage(ckpt_storage::RamStore::new(1));
                let m = self
                    .build("probe", storage)
                    .expect("non-swsusp systems build");
                let info = m.info();
                (
                    info.supports_incremental,
                    info.transparent,
                    info.initiation,
                    info.is_kernel_module,
                )
            }
        };
        TableRow {
            name: self.id.display_name(),
            incremental: yn(incremental),
            transparency: yn(transparent),
            stable_storage: self.storage_support.label(),
            initiation: match initiation {
                Initiation::Automatic => "automatic",
                Initiation::UserInitiated => "user",
            },
            kernel_module: yn(module),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_core::shared_storage;
    use ckpt_storage::LocalDisk;
    use simos::apps::{AppParams, NativeKind};
    use simos::cost::CostModel;
    use simos::Kernel;

    #[test]
    fn all_twelve_systems_have_descriptors() {
        for id in SystemId::ALL {
            let s = SurveyedSystem::get(id);
            assert_eq!(s.id, id);
            assert!(!s.notes.is_empty());
        }
    }

    #[test]
    fn every_buildable_system_checkpoints_or_is_automatic() {
        for id in SystemId::ALL {
            if id == SystemId::SoftwareSuspend {
                continue;
            }
            let s = SurveyedSystem::get(id);
            let storage = shared_storage(LocalDisk::new(1 << 30));
            let mut mech = s.build("job", storage).unwrap();
            let mut k = Kernel::new(CostModel::circa_2005());
            let mut params = AppParams::small();
            params.total_steps = u64::MAX;
            let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
            mech.prepare(&mut k, pid)
                .unwrap_or_else(|e| panic!("{id:?} prepare failed: {e}"));
            k.run_for(20_000_000).unwrap();
            match mech.info().initiation {
                Initiation::UserInitiated => {
                    let o = mech
                        .checkpoint(&mut k, pid)
                        .unwrap_or_else(|e| panic!("{id:?} checkpoint failed: {e}"));
                    assert!(o.pages_saved > 0, "{id:?} saved nothing");
                }
                Initiation::Automatic => {
                    // Must refuse external initiation...
                    assert!(mech.checkpoint(&mut k, pid).is_err(), "{id:?}");
                    // ...but produce checkpoints on its own.
                    k.run_for(1_000_000_000).unwrap();
                    assert!(
                        !mech.outcomes(&k).is_empty(),
                        "{id:?} never self-checkpointed"
                    );
                }
            }
        }
    }

    #[test]
    fn storage_support_labels() {
        assert_eq!(StorageSupport::None.label(), "none");
        assert_eq!(StorageSupport::Local.classes().len(), 1);
        assert_eq!(StorageSupport::LocalRemote.classes().len(), 2);
    }
}
