//! Table 1 of the paper, regenerated from the implemented systems.
//!
//! [`generated`] derives every row from live mechanism metadata
//! ([`crate::systems`]); [`paper`] transcribes the table as printed in the
//! paper. The test suite asserts they are identical — i.e. the twelve
//! implementations really have the properties the survey reports.

use crate::systems::{SurveyedSystem, SystemId, TableRow};

/// Column headers, in the paper's order.
pub const HEADERS: [&str; 6] = [
    "Name",
    "Incremental checkpointing",
    "Transparency",
    "Stable storage",
    "Initiation",
    "kernel module",
];

/// The table as generated from the implementations.
pub fn generated() -> Vec<TableRow> {
    SystemId::ALL
        .iter()
        .map(|id| SurveyedSystem::get(*id).table_row())
        .collect()
}

/// The table as printed in the paper (ground truth for the diff test).
pub fn paper() -> Vec<TableRow> {
    let row = |name, incremental, transparency, stable_storage, initiation, kernel_module| {
        TableRow {
            name,
            incremental,
            transparency,
            stable_storage,
            initiation,
            kernel_module,
        }
    };
    vec![
        row("VMADump", "no", "no", "local,remote", "automatic", "no"),
        row("BPROC", "no", "no", "none", "automatic", "no"),
        row("EPCKPT", "no", "yes", "local,remote", "user", "no"),
        row("CRAK", "no", "yes", "local,remote", "user", "yes"),
        row("UCLik", "no", "yes", "local", "user", "yes"),
        row("CHPOX", "no", "yes", "local", "user", "yes"),
        row("ZAP", "no", "yes", "none", "user", "yes"),
        row("BLCR", "no", "no", "local,remote", "user", "yes"),
        row("LAM/MPI", "no", "no", "local,remote", "user", "yes"),
        row("PsncR/C", "no", "yes", "local", "user", "yes"),
        row("Software Suspend", "no", "yes", "local", "user", "no"),
        row("Checkpoint", "no", "no", "local", "automatic", "no"),
    ]
}

/// Render rows as a fixed-width ASCII table.
pub fn render(rows: &[TableRow]) -> String {
    let cols: Vec<Vec<String>> = {
        let mut c = vec![Vec::new(); 6];
        for (i, h) in HEADERS.iter().enumerate() {
            c[i].push(h.to_string());
        }
        for r in rows {
            c[0].push(r.name.to_string());
            c[1].push(r.incremental.to_string());
            c[2].push(r.transparency.to_string());
            c[3].push(r.stable_storage.to_string());
            c[4].push(r.initiation.to_string());
            c[5].push(r.kernel_module.to_string());
        }
        c
    };
    let widths: Vec<usize> = cols
        .iter()
        .map(|c| c.iter().map(|s| s.len()).max().unwrap_or(0))
        .collect();
    let mut out = String::new();
    let line = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    line(&mut out);
    for row_idx in 0..cols[0].len() {
        for (ci, c) in cols.iter().enumerate() {
            out.push_str(&format!("| {:<width$} ", c[row_idx], width = widths[ci]));
        }
        out.push_str("|\n");
        if row_idx == 0 {
            line(&mut out);
        }
    }
    line(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_table_matches_the_paper_exactly() {
        let gen = generated();
        let expect = paper();
        assert_eq!(gen.len(), expect.len());
        for (g, e) in gen.iter().zip(&expect) {
            assert_eq!(g, e, "row for {} diverges from the paper", e.name);
        }
    }

    #[test]
    fn render_contains_all_systems_and_headers() {
        let s = render(&generated());
        for h in HEADERS {
            assert!(s.contains(h));
        }
        for id in SystemId::ALL {
            assert!(s.contains(id.display_name()), "{id:?} missing");
        }
    }

    #[test]
    fn no_surveyed_system_implements_incremental_checkpointing() {
        // The paper's headline observation: "incremental checkpointing has
        // not yet been implemented in any of the packages."
        for row in generated() {
            assert_eq!(row.incremental, "no", "{}", row.name);
        }
    }

    #[test]
    fn most_systems_are_user_initiated_with_local_storage() {
        let rows = generated();
        let user = rows.iter().filter(|r| r.initiation == "user").count();
        assert!(user >= 9, "the paper: most provide user-initiation");
        let local_only = rows
            .iter()
            .filter(|r| r.stable_storage == "local")
            .count();
        assert!(local_only >= 5, "most store locally — the FT weakness");
    }
}
