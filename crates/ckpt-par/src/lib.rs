//! # ckpt-par — a scoped work-stealing pool with deterministic ordered merge
//!
//! The checkpoint pipeline wants thread-level parallelism (per-page
//! encoding, per-rank image encoding, independent Monte-Carlo trials) but
//! the repo's outputs are pinned byte-for-byte, so parallel stages must be
//! **observationally serial**: results are merged in submission order no
//! matter which worker finished first. This crate provides exactly that —
//! and nothing else — on plain `std::thread`, matching the vendored-shims
//! policy (no external dependencies).
//!
//! Two entry points:
//!
//! * [`Pool::par_map_ordered`] — map a known list of items; items are
//!   pre-partitioned across workers and idle workers steal half of a
//!   victim's remaining run (classic work stealing, coarsened to ranges).
//! * [`Pool::pipeline_ordered`] — a producer/consumer pipeline: the caller
//!   thread *feeds* items (e.g. gathering pages out of a guest address
//!   space) while workers consume and encode, overlapping the two stages;
//!   when feeding ends the caller drains the queue alongside the workers.
//!
//! A pool of size 1 (the default on single-CPU hosts) executes the exact
//! serial path inline — no threads are spawned, no locks are taken beyond
//! counter bookkeeping — so `workers = 1` reproduces the pre-parallel
//! behavior precisely.
//!
//! Determinism rules (also spelled out in `DESIGN.md`):
//!
//! 1. worker closures must be pure functions of their item (worker-local
//!    scratch state is re-initialized per worker and must not leak between
//!    items in an order-observable way);
//! 2. results are merged in submission order ([`MergeBoard`] semantics);
//! 3. anything that charges virtual time or appends to a shared log stays
//!    on the caller thread, outside the pool.
//!
//! Observability: every pool call accumulates [`PoolStats`] — tasks run,
//! successful steals, and merge stalls (results that completed before an
//! earlier-submitted item and had to be parked). These feed the
//! `TraceReport` parallel-encode counters.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Cumulative counters for one [`Pool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Items executed (parallel or serial path).
    pub tasks: u64,
    /// Successful steal operations (an idle worker took half of a
    /// victim's remaining items).
    pub steals: u64,
    /// Results that completed out of submission order and were parked
    /// until every earlier result landed.
    pub merge_stalls: u64,
}

impl PoolStats {
    /// Counter delta (`self` taken after `earlier`).
    pub fn since(self, earlier: PoolStats) -> PoolStats {
        PoolStats {
            tasks: self.tasks.saturating_sub(earlier.tasks),
            steals: self.steals.saturating_sub(earlier.steals),
            merge_stalls: self.merge_stalls.saturating_sub(earlier.merge_stalls),
        }
    }
}

#[derive(Default)]
struct Counters {
    tasks: AtomicU64,
    steals: AtomicU64,
    merge_stalls: AtomicU64,
}

/// A fixed-width pool. Threads are scoped per call (`std::thread::scope`),
/// so the pool itself is just a width plus counters — cheap to share via
/// [`Arc`], safe to use from multiple threads at once (each call carries
/// its own queues and merge board).
pub struct Pool {
    workers: usize,
    counters: Counters,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl Pool {
    /// A pool that runs `workers` tasks concurrently. `0` is clamped to 1;
    /// 1 means "the exact serial path, inline on the caller".
    pub fn new(workers: usize) -> Self {
        Pool {
            workers: workers.max(1),
            counters: Counters::default(),
        }
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cumulative counters since the pool was created.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            tasks: self.counters.tasks.load(Ordering::Relaxed),
            steals: self.counters.steals.load(Ordering::Relaxed),
            merge_stalls: self.counters.merge_stalls.load(Ordering::Relaxed),
        }
    }

    fn flush(&self, tasks: u64, steals: u64, stalls: u64) {
        if tasks > 0 {
            self.counters.tasks.fetch_add(tasks, Ordering::Relaxed);
        }
        if steals > 0 {
            self.counters.steals.fetch_add(steals, Ordering::Relaxed);
        }
        if stalls > 0 {
            self.counters.merge_stalls.fetch_add(stalls, Ordering::Relaxed);
        }
    }

    /// Map `items` through `f`, returning results in submission order.
    ///
    /// `init` builds one worker-local scratch value per worker (e.g. a
    /// reusable RLE buffer); `f` receives `(scratch, index, item)`.
    /// Items are pre-partitioned into contiguous runs, one per worker;
    /// an idle worker steals the back half of the fullest victim's run.
    pub fn par_map_ordered<T, S, R, I, F>(&self, items: Vec<T>, init: I, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, T) -> R + Sync,
    {
        let n = items.len();
        if self.workers <= 1 || n <= 1 {
            let mut scratch = init();
            let out: Vec<R> = items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(&mut scratch, i, t))
                .collect();
            self.flush(n as u64, 0, 0);
            return out;
        }
        let w = self.workers.min(n);
        // Contiguous partitions: worker k owns indices [k*n/w, (k+1)*n/w).
        let mut queues: Vec<Mutex<VecDeque<(usize, T)>>> = Vec::with_capacity(w);
        {
            let mut items = items.into_iter().enumerate();
            for k in 0..w {
                let lo = k * n / w;
                let hi = (k + 1) * n / w;
                let q: VecDeque<(usize, T)> = items.by_ref().take(hi - lo).collect();
                queues.push(Mutex::new(q));
            }
        }
        let board = Mutex::new(MergeBoard::with_capacity(n));
        let (tasks, steals, stalls) = run_stealing_workers(w, &queues, &board, &init, &f);
        self.flush(tasks, steals, stalls);
        board.into_inner().unwrap().into_ordered()
    }

    /// Producer/consumer pipeline with ordered merge: `feeder` runs on the
    /// caller thread and pushes items (gather stage) while workers consume
    /// them through `f` (encode stage) — the two stages overlap, which is
    /// the double-buffering the capture path wants. Once the feeder
    /// returns, the caller thread joins the drain. Results come back in
    /// submission order.
    pub fn pipeline_ordered<T, S, R, G, I, F>(&self, mut feeder: G, init: I, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        G: FnMut(&mut dyn FnMut(T)),
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, T) -> R + Sync,
    {
        if self.workers <= 1 {
            // Exact serial path: gather everything, then encode in order.
            let mut staged: Vec<T> = Vec::new();
            feeder(&mut |t| staged.push(t));
            let n = staged.len() as u64;
            let mut scratch = init();
            let out: Vec<R> = staged
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(&mut scratch, i, t))
                .collect();
            self.flush(n, 0, 0);
            return out;
        }
        let inject = Injector::<T>::new();
        let board = Mutex::new(MergeBoard::new());
        let helpers = self.workers - 1;
        let (tasks, stalls) = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(helpers);
            for _ in 0..helpers {
                handles.push(scope.spawn(|| {
                    let mut scratch = init();
                    let mut tasks = 0u64;
                    let mut stalls = 0u64;
                    while let Some((idx, item)) = inject.pop_wait() {
                        let r = f(&mut scratch, idx, item);
                        tasks += 1;
                        stalls += board.lock().unwrap().place(idx, r);
                    }
                    (tasks, stalls)
                }));
            }
            // Feed on the caller thread, overlapping the workers.
            let mut next = 0usize;
            feeder(&mut |t| {
                inject.push((next, t));
                next += 1;
            });
            inject.close();
            // Then help drain what's left.
            let mut scratch = init();
            let mut tasks = 0u64;
            let mut stalls = 0u64;
            while let Some((idx, item)) = inject.pop_wait() {
                let r = f(&mut scratch, idx, item);
                tasks += 1;
                stalls += board.lock().unwrap().place(idx, r);
            }
            for h in handles {
                let (t, s) = h.join().expect("ckpt-par worker panicked");
                tasks += t;
                stalls += s;
            }
            (tasks, stalls)
        });
        self.flush(tasks, 0, stalls);
        board.into_inner().unwrap().into_ordered()
    }
}

/// Run `w` stealing workers over pre-partitioned queues. Worker 0 is the
/// caller thread. Returns (tasks, steals, merge stalls).
fn run_stealing_workers<T, S, R, I, F>(
    w: usize,
    queues: &[Mutex<VecDeque<(usize, T)>>],
    board: &Mutex<MergeBoard<R>>,
    init: &I,
    f: &F,
) -> (u64, u64, u64)
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, T) -> R + Sync,
{
    let worker = |me: usize| -> (u64, u64, u64) {
        let mut scratch = init();
        let (mut tasks, mut steals, mut stalls) = (0u64, 0u64, 0u64);
        loop {
            // Own queue first (front: submission order, cache-warm).
            let item = queues[me].lock().unwrap().pop_front();
            let (idx, item) = match item {
                Some(it) => it,
                None => {
                    // Steal the back half of the fullest victim.
                    let mut best: Option<(usize, usize)> = None;
                    for (v, q) in queues.iter().enumerate() {
                        if v == me {
                            continue;
                        }
                        let len = q.lock().unwrap().len();
                        if len > 0 && best.map(|(_, l)| len > l).unwrap_or(true) {
                            best = Some((v, len));
                        }
                    }
                    let Some((victim, _)) = best else { break };
                    let stolen = {
                        let mut vq = queues[victim].lock().unwrap();
                        let len = vq.len();
                        if len == 0 {
                            continue; // raced; rescan
                        }
                        vq.split_off(len - len.div_ceil(2))
                    };
                    steals += 1;
                    let mut own = queues[me].lock().unwrap();
                    own.extend(stolen);
                    continue;
                }
            };
            let r = f(&mut scratch, idx, item);
            tasks += 1;
            stalls += board.lock().unwrap().place(idx, r);
        }
        (tasks, steals, stalls)
    };
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(w - 1);
        for me in 1..w {
            handles.push(scope.spawn(move || worker(me)));
        }
        let (mut tasks, mut steals, mut stalls) = worker(0);
        for h in handles {
            let (t, s, m) = h.join().expect("ckpt-par worker panicked");
            tasks += t;
            steals += s;
            stalls += m;
        }
        (tasks, steals, stalls)
    })
}

/// Ordered-merge state: completed results parked by index, plus the
/// cursor of the next index an in-order consumer would emit. A result
/// arriving ahead of the cursor is a **merge stall** (it waited on an
/// earlier item), which is what the trace counter reports.
struct MergeBoard<R> {
    slots: Vec<Option<R>>,
    next: usize,
}

impl<R> MergeBoard<R> {
    fn new() -> Self {
        MergeBoard {
            slots: Vec::new(),
            next: 0,
        }
    }

    fn with_capacity(n: usize) -> Self {
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        MergeBoard { slots, next: 0 }
    }

    /// Place a completed result; returns 1 if it stalled (arrived out of
    /// submission order), 0 otherwise.
    fn place(&mut self, idx: usize, r: R) -> u64 {
        if self.slots.len() <= idx {
            self.slots.resize_with(idx + 1, || None);
        }
        debug_assert!(self.slots[idx].is_none(), "duplicate index {idx}");
        self.slots[idx] = Some(r);
        if idx == self.next {
            while self.next < self.slots.len() && self.slots[self.next].is_some() {
                self.next += 1;
            }
            0
        } else {
            1
        }
    }

    fn into_ordered(self) -> Vec<R> {
        self.slots
            .into_iter()
            .map(|s| s.expect("ckpt-par: missing result slot"))
            .collect()
    }
}

/// A closable MPMC injector: producers push, consumers block-pop until
/// the queue is both closed and empty.
struct Injector<T> {
    q: Mutex<(VecDeque<(usize, T)>, bool)>,
    cv: Condvar,
}

impl<T> Injector<T> {
    fn new() -> Self {
        Injector {
            q: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    fn push(&self, it: (usize, T)) {
        self.q.lock().unwrap().0.push_back(it);
        self.cv.notify_one();
    }

    fn close(&self) {
        self.q.lock().unwrap().1 = true;
        self.cv.notify_all();
    }

    fn pop_wait(&self) -> Option<(usize, T)> {
        let mut g = self.q.lock().unwrap();
        loop {
            if let Some(it) = g.0.pop_front() {
                return Some(it);
            }
            if g.1 {
                return None;
            }
            g = self.cv.wait(g).unwrap();
        }
    }
}

static GLOBAL: OnceLock<Arc<Pool>> = OnceLock::new();

/// The process-wide default pool. Width = `CKPT_PAR_WORKERS` if set, else
/// the host's available parallelism (1 on a single-CPU host, which makes
/// every default-configured pipeline take the exact serial path).
pub fn global() -> &'static Arc<Pool> {
    GLOBAL.get_or_init(|| {
        let w = std::env::var("CKPT_PAR_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Arc::new(Pool::new(w))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial_ref(n: usize) -> Vec<u64> {
        (0..n).map(|i| (i as u64).wrapping_mul(0x9E37_79B9) ^ 17).collect()
    }

    #[test]
    fn ordered_merge_matches_serial_for_all_widths() {
        for w in [1usize, 2, 3, 4, 8] {
            let pool = Pool::new(w);
            let items: Vec<u64> = (0..257).map(|i| i as u64).collect();
            let got = pool.par_map_ordered(
                items,
                || (),
                |_, i, x| {
                    // Skew the work so completion order differs from
                    // submission order under real parallelism.
                    let mut acc = x.wrapping_mul(0x9E37_79B9) ^ 17;
                    for _ in 0..((257 - i) % 97) * 50 {
                        acc = std::hint::black_box(acc);
                    }
                    acc
                },
            );
            assert_eq!(got, serial_ref(257), "width {w}");
        }
    }

    #[test]
    fn pipeline_matches_serial_for_all_widths() {
        for w in [1usize, 2, 4, 8] {
            let pool = Pool::new(w);
            let got = pool.pipeline_ordered(
                |push| {
                    for i in 0..100u64 {
                        push(i);
                    }
                },
                || 0u64,
                |scratch, _, x| {
                    *scratch += 1; // worker-local state is allowed
                    x * 3 + 1
                },
            );
            let want: Vec<u64> = (0..100).map(|x| x * 3 + 1).collect();
            assert_eq!(got, want, "width {w}");
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let pool = Pool::new(4);
        let empty: Vec<u32> = pool.par_map_ordered(Vec::<u32>::new(), || (), |_, _, x| x);
        assert!(empty.is_empty());
        let one = pool.par_map_ordered(vec![7u32], || (), |_, _, x| x + 1);
        assert_eq!(one, vec![8]);
        let none: Vec<u32> = pool.pipeline_ordered(|_push| {}, || (), |_, _, x: u32| x);
        assert!(none.is_empty());
    }

    #[test]
    fn task_counter_counts_every_item() {
        let pool = Pool::new(3);
        let before = pool.stats();
        pool.par_map_ordered((0..500u32).collect(), || (), |_, _, x| x);
        pool.pipeline_ordered(
            |push| (0..250u32).for_each(push),
            || (),
            |_, _, x| x,
        );
        let d = pool.stats().since(before);
        assert_eq!(d.tasks, 750);
    }

    #[test]
    fn serial_pool_spawns_no_overhead_counters() {
        let pool = Pool::new(1);
        pool.par_map_ordered((0..10u32).collect(), || (), |_, _, x| x);
        let s = pool.stats();
        assert_eq!(s.tasks, 10);
        assert_eq!(s.steals, 0);
        assert_eq!(s.merge_stalls, 0);
    }

    #[test]
    fn worker_local_scratch_is_isolated_per_worker() {
        // The scratch closure must not observe cross-worker state; verify
        // results depend only on the item, not on scheduling.
        let pool = Pool::new(4);
        let a = pool.par_map_ordered(
            (0..100u64).collect(),
            Vec::<u8>::new,
            |scratch, _, x| {
                scratch.clear();
                scratch.extend_from_slice(&x.to_le_bytes());
                u64::from_le_bytes(scratch[..8].try_into().unwrap())
            },
        );
        assert_eq!(a, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = Arc::as_ptr(global());
        let b = Arc::as_ptr(global());
        assert_eq!(a, b);
        assert!(global().workers() >= 1);
    }

    #[test]
    fn stats_since_saturates() {
        let newer = PoolStats {
            tasks: 5,
            steals: 1,
            merge_stalls: 0,
        };
        let older = PoolStats {
            tasks: 9,
            steals: 0,
            merge_stalls: 0,
        };
        let d = newer.since(older);
        assert_eq!(d.tasks, 0);
        assert_eq!(d.steals, 1);
    }
}
