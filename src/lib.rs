//! # ckpt-restart — checkpoint/restart for fault tolerance
//!
//! A Rust reproduction of *Current Practice and a Direction Forward in
//! Checkpoint/Restart Implementations for Fault Tolerance* (Sancho, Petrini,
//! Davis, Gioiosa, Jiang — LANL, 2005): the full taxonomy of
//! checkpoint/restart mechanisms implemented and measurable over a
//! deterministic operating-system simulator.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`simos`] — the OS substrate (processes, VM, signals, scheduler,
//!   kernel threads, syscalls, cost model, and the [`trace`] subsystem);
//! * [`ckpt_image`] — the checkpoint image format;
//! * [`ckpt_par`] — the scoped work-stealing pool with deterministic
//!   ordered merge behind the parallel checkpoint pipeline;
//! * [`ckpt_storage`] — stable-storage backends with availability
//!   semantics and the typed [`ckpt_storage::ObjectKey`] namespace;
//! * [`ckpt_cas`] — content-defined chunking, the content-addressed
//!   dedup store with refcounted GC, and the XOR+RLE delta codec;
//! * [`ckpt_replica`] — N-way quorum-replicated stable storage with
//!   retry/backoff, read-repair, and typed `QuorumLost` degradation;
//! * [`ckpt_ec`] — erasure-coded stable storage: GF(256) Reed-Solomon
//!   shards over replica nodes, any `m` losses survivable at
//!   `(k + m) / k ×` commit bytes instead of `N ×`;
//! * [`ckpt_core`] — trackers, the seven mechanism families, pod
//!   virtualization, policies, restart, and the autonomic daemon;
//! * [`ckpt_cluster`] — the cluster/fault-injection simulator and
//!   coordinated checkpointing;
//! * [`ckpt_survey`] — the twelve surveyed systems; regenerates the
//!   paper's Table 1 and Figure 1.
//!
//! Most applications only need the [`prelude`]:
//!
//! ```
//! use ckpt_restart::prelude::*;
//! ```
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the
//! reproduction results.

pub use ckpt_cas as cas;
pub use ckpt_cluster as cluster;
pub use ckpt_core as ckpt;
pub use ckpt_ec as ec;
pub use ckpt_image as image;
pub use ckpt_par as par;
pub use ckpt_replica as replica;
pub use ckpt_storage as storage;
pub use ckpt_survey as survey;
pub use simos;

/// The structured event/metrics subsystem (`simos::trace`), re-exported at
/// the workspace facade so instrumentation consumers need only one path.
pub use simos::trace;

#[deprecated(
    since = "0.2.0",
    note = "renamed to `ckpt_restart::ckpt` — `core` shadows the built-in core crate in downstream paths"
)]
pub use ckpt_core as core;

/// One-stop imports for the common checkpoint/restart workflow.
///
/// Re-exports the mechanism trait and metadata, the kernel-context engine
/// and its builder, trackers, storage handles, outcome types, the kernel
/// itself, and the trace subsystem's entry points.
pub mod prelude {
    pub use ckpt_cas::{CasStats, CasStatsHandle, ChunkParams, DedupStore};
    pub use ckpt_core::capture::{CaptureOptions, RestoreOptions, RestorePid};
    pub use ckpt_core::mechanism::{
        KernelCkptEngine, KernelCkptEngineBuilder, Mechanism, MechanismInfo,
    };
    pub use ckpt_core::report::{CkptOutcome, RestartOutcome};
    pub use ckpt_core::tracker::{Tracker, TrackerKind};
    pub use ckpt_core::{shared_storage, SharedStorage};
    pub use ckpt_storage::{ImageKey, ObjectKey};
    pub use simos::trace::{Phase, TraceHandle, TraceReport};
    pub use simos::Kernel;
}
