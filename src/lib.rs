//! # ckpt-restart — checkpoint/restart for fault tolerance
//!
//! A Rust reproduction of *Current Practice and a Direction Forward in
//! Checkpoint/Restart Implementations for Fault Tolerance* (Sancho, Petrini,
//! Davis, Gioiosa, Jiang — LANL, 2005): the full taxonomy of
//! checkpoint/restart mechanisms implemented and measurable over a
//! deterministic operating-system simulator.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`simos`] — the OS substrate (processes, VM, signals, scheduler,
//!   kernel threads, syscalls, cost model);
//! * [`ckpt_image`] — the checkpoint image format;
//! * [`ckpt_storage`] — stable-storage backends with availability
//!   semantics;
//! * [`ckpt_core`] — trackers, the seven mechanism families, pod
//!   virtualization, policies, restart, and the autonomic daemon;
//! * [`ckpt_cluster`] — the cluster/fault-injection simulator and
//!   coordinated checkpointing;
//! * [`ckpt_survey`] — the twelve surveyed systems; regenerates the
//!   paper's Table 1 and Figure 1.
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the
//! reproduction results.

pub use ckpt_cluster as cluster;
pub use ckpt_core as core;
pub use ckpt_image as image;
pub use ckpt_storage as storage;
pub use ckpt_survey as survey;
pub use simos;
