//! The paper's "direction forward", running: a self-managing system-level
//! checkpoint daemon — automatic initiation from a kernel timer, a
//! SCHED_FIFO kernel thread, kernel-page incremental tracking, remote
//! storage, and an interval that adapts to the observed failure rate
//! (Young's formula).
//!
//! ```text
//! cargo run --release --example autonomic_daemon
//! ```

use ckpt_restart::ckpt::autonomic::{self, AutonomicConfig, AutonomicDaemon};
use ckpt_restart::ckpt::shared_storage;
use ckpt_restart::simos::apps::{AppParams, NativeKind};
use ckpt_restart::simos::cost::CostModel;
use ckpt_restart::simos::Kernel;
use ckpt_restart::storage::{RemoteServer, RemoteStore};

fn main() {
    let mut kernel = Kernel::new(CostModel::circa_2005());
    let mut params = AppParams::small();
    params.mem_bytes = 512 * 1024;
    params.total_steps = u64::MAX;
    let pid = kernel
        .spawn_native(NativeKind::SparseRandom, params)
        .expect("spawn");

    // Install the daemon with remote storage (survives node loss).
    let server = RemoteServer::new(1 << 34);
    let storage = shared_storage(RemoteStore::new(server));
    let cfg = AutonomicConfig {
        initial_interval_ns: 50_000_000, // start at 50 ms
        ..Default::default()
    };
    let daemon = autonomic::install(&mut kernel, cfg, storage).expect("install");
    autonomic::register(&mut kernel, &daemon, pid).expect("register");
    println!("autonomic daemon installed; {pid} registered — no app changes, no tools");

    // Phase 1: quiet system.
    kernel.run_for(400_000_000).expect("run");
    let (n1, interval1) = kernel
        .with_module_mut::<AutonomicDaemon, _>(&daemon, |d, _| {
            (d.outcomes.len(), d.intervals_used.last().copied().unwrap_or(0))
        })
        .unwrap();
    println!(
        "after 400 ms quiet: {n1} autonomous checkpoints, current interval {:.1} ms",
        interval1 as f64 / 1e6
    );

    // Phase 2: the failure detector reports a burst of node failures.
    let now = kernel.now();
    kernel.with_module_mut::<AutonomicDaemon, _>(&daemon, |d, _| {
        for i in 1..=6u64 {
            d.note_failure(now + i * 20_000_000); // failures 20 ms apart
        }
    });
    kernel.run_for(400_000_000).expect("run");
    let (n2, interval2) = kernel
        .with_module_mut::<AutonomicDaemon, _>(&daemon, |d, _| {
            (d.outcomes.len(), d.intervals_used.last().copied().unwrap_or(0))
        })
        .unwrap();
    println!(
        "after failure burst: {} checkpoints total, interval tightened to {:.1} ms",
        n2,
        interval2 as f64 / 1e6
    );
    assert!(interval2 < interval1, "interval should tighten under failures");

    // Administrator flow: planned outage — checkpoint and freeze everything.
    let outs = autonomic::planned_outage(&mut kernel, &daemon).expect("outage");
    println!(
        "planned outage: {} process(es) checkpointed and frozen for maintenance",
        outs.len()
    );
    let w = kernel.process(pid).unwrap().work_done;
    kernel.run_for(100_000_000).expect("run");
    assert_eq!(kernel.process(pid).unwrap().work_done, w);
    autonomic::resume_preempted(&mut kernel, pid).expect("resume");
    kernel.run_for(50_000_000).expect("run");
    assert!(kernel.process(pid).unwrap().work_done > w);
    println!("maintenance over; application resumed where it left off — autonomic OK");
}
