//! Regenerate the paper's two artifacts — Table 1 and Figure 1 — from the
//! implemented systems, and verify the table against the paper.
//!
//! ```text
//! cargo run --release --example survey_report
//! ```

use ckpt_restart::survey;

fn main() {
    println!("Figure 1 — classification of checkpoint/restart implementations\n");
    println!("{}", survey::render_figure1(&survey::taxonomy()));

    println!("Table 1 — surveyed systems (regenerated from mechanism metadata)\n");
    let generated = survey::table1_generated();
    println!("{}", survey::render_table1(&generated));

    let paper = survey::table1_paper();
    if generated == paper {
        println!("✓ generated table matches the paper byte-for-byte");
    } else {
        println!("✗ DIVERGENCE from the paper:");
        for (g, p) in generated.iter().zip(&paper) {
            if g != p {
                println!("  {}: generated {:?} ≠ paper {:?}", p.name, g, p);
            }
        }
        std::process::exit(1);
    }

    println!("\nPer-system provenance notes:");
    for id in survey::SystemId::ALL {
        let s = survey::SurveyedSystem::get(id);
        println!("  {:<17} {}", id.display_name(), s.notes);
    }
}
