//! The incremental-checkpointing story for scientific workloads: how much
//! data each tracking technique ships for the paper's spectrum of
//! memory-update patterns (dense, sparse, append, read-mostly) — the
//! direction the paper argues Linux should take.
//!
//! ```text
//! cargo run --release --example incremental_scientific
//! ```

use ckpt_restart::ckpt::mechanism::KernelCkptEngine;
use ckpt_restart::ckpt::{shared_storage, TrackerKind};
use ckpt_restart::simos::apps::{AppParams, NativeKind};
use ckpt_restart::simos::cost::CostModel;
use ckpt_restart::simos::Kernel;
use ckpt_restart::storage::LocalDisk;

fn run_steps(k: &mut Kernel, pid: ckpt_restart::simos::Pid, n: u64) {
    let target = k.process(pid).unwrap().work_done + n;
    while k.process(pid).unwrap().work_done < target {
        k.run_for(2_000).unwrap();
    }
}

fn main() {
    println!("workload        tracker            ckpt#2 pages  ckpt#2 bytes   ckpt#2 time");
    println!("--------------------------------------------------------------------------");
    for (label, kind) in [
        ("dense-sweep ", NativeKind::DenseSweep),
        ("sparse-rand ", NativeKind::SparseRandom),
        ("append-log  ", NativeKind::AppendLog),
        ("read-mostly ", NativeKind::ReadMostly),
    ] {
        for tracker in [
            TrackerKind::FullOnly,
            TrackerKind::KernelPage,
            TrackerKind::ProbBlock { block: 256 },
            TrackerKind::HardwareLine,
        ] {
            let mut k = Kernel::new(CostModel::circa_2005());
            let mut params = AppParams::small();
            params.mem_bytes = 1024 * 1024;
            params.writes_per_step = 8;
            params.total_steps = u64::MAX;
            let pid = k.spawn_native(kind, params).unwrap();
            k.run_for(2_000_000).unwrap();
            let mut engine = KernelCkptEngine::new(
                "demo",
                "incr",
                shared_storage(LocalDisk::new(1 << 32)),
                tracker,
            );
            k.freeze_process(pid).unwrap();
            engine.checkpoint_in_kernel(&mut k, pid).unwrap();
            k.thaw_process(pid).unwrap();
            run_steps(&mut k, pid, 10);
            k.freeze_process(pid).unwrap();
            let o = engine.checkpoint_in_kernel(&mut k, pid).unwrap();
            println!(
                "{label}   {:<18} {:>10}  {:>11}  {:>10} ns",
                tracker.label(),
                o.pages_saved,
                o.encoded_bytes,
                o.total_ns
            );
        }
        println!();
    }
    println!("(first checkpoint is always full; the rows show the second, delta checkpoint)");
}
