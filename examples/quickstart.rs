//! Quickstart: checkpoint a running process, kill it, restore it, and
//! watch it finish as if nothing happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ckpt_restart::ckpt::mechanism::kthread::{
    KernelThreadMechanism, KthreadIface, KthreadVariant,
};
use ckpt_restart::ckpt::mechanism::Mechanism;
use ckpt_restart::ckpt::{shared_storage, RestorePid, TrackerKind};
use ckpt_restart::simos::apps::{AppParams, NativeKind};
use ckpt_restart::simos::cost::CostModel;
use ckpt_restart::simos::signal::Sig;
use ckpt_restart::simos::Kernel;
use ckpt_restart::storage::LocalDisk;

fn main() {
    // A kernel with one scientific application: a 1 MiB sparse writer.
    let mut kernel = Kernel::new(CostModel::circa_2005());
    let mut params = AppParams::small();
    params.mem_bytes = 1024 * 1024;
    params.total_steps = 120;
    let pid = kernel
        .spawn_native(NativeKind::DenseSweep, params.clone())
        .expect("spawn");
    println!(
        "spawned {pid} running a {}-step dense sweep over 1 MiB",
        params.total_steps
    );

    // A CRAK-style checkpointer: kernel thread + /dev device + ioctl,
    // with kernel-level incremental page tracking.
    let storage = shared_storage(LocalDisk::new(1 << 30));
    let mut ckpt = KernelThreadMechanism::new(
        "crak",
        "quickstart",
        storage,
        TrackerKind::KernelPage,
        KthreadIface::Ioctl,
        KthreadVariant::default(),
    );
    ckpt.prepare(&mut kernel, pid).expect("prepare");

    // Let it compute, checkpoint twice (full, then incremental).
    kernel.run_for(20_000_000).expect("run");
    let o1 = ckpt.checkpoint(&mut kernel, pid).expect("ckpt 1");
    println!(
        "checkpoint #1: {} pages, {} bytes encoded, {} ns, incremental={}",
        o1.pages_saved, o1.encoded_bytes, o1.total_ns, o1.incremental
    );
    kernel.run_for(10_000_000).expect("run");
    let o2 = ckpt.checkpoint(&mut kernel, pid).expect("ckpt 2");
    println!(
        "checkpoint #2: {} pages, {} bytes encoded, incremental={}",
        o2.pages_saved, o2.encoded_bytes, o2.incremental
    );

    // Disaster strikes.
    let progress = kernel.process(pid).unwrap().work_done;
    kernel.post_signal(pid, Sig::SIGKILL);
    kernel.run_for(20_000_000).expect("run");
    println!(
        "killed {pid} at {} completed steps (exit code {:?})",
        progress,
        kernel.process(pid).unwrap().exit_code()
    );

    // Restart on a brand-new kernel ("another node").
    let mut node2 = Kernel::new(CostModel::circa_2005());
    let restart = ckpt.restart(&mut node2, RestorePid::Fresh).expect("restart");
    println!(
        "restored as {} on a fresh kernel with {} steps of preserved progress",
        restart.pid, restart.work_done
    );
    let code = node2.run_until_exit(restart.pid).expect("finish");
    let p = node2.process(restart.pid).unwrap();
    println!(
        "application finished with exit code {code} after {} total steps",
        p.work_done
    );
    assert_eq!(p.work_done, params.total_steps);
    println!("progress from before the crash was preserved — quickstart OK");
}
