//! Process migration with ZAP-style pod virtualization: moving a process
//! onto a node whose pid and file paths collide with it — the resource-
//! conflict problem Section 3 of the paper describes.
//!
//! ```text
//! cargo run --release --example migration_pod
//! ```

use ckpt_restart::cluster::{migrate, Cluster, FailureConfig, MigrationMode, NodeId};
use ckpt_restart::ckpt::pod::Pod;
use ckpt_restart::simos::apps::{AppParams, NativeKind};
use ckpt_restart::simos::cost::CostModel;
use ckpt_restart::simos::fs::OpenFlags;
use ckpt_restart::simos::syscall::Syscall;

fn main() {
    let mut cluster = Cluster::new(2, CostModel::circa_2005(), FailureConfig::none());
    let mut params = AppParams::small();
    params.total_steps = u64::MAX;

    // The migrant on node 0, with an open file.
    let migrant = cluster
        .node(NodeId(0))
        .kernel()
        .unwrap()
        .spawn_native(NativeKind::SparseRandom, params.clone())
        .unwrap();
    cluster
        .node(NodeId(0))
        .kernel()
        .unwrap()
        .do_syscall(
            migrant,
            Syscall::Open {
                path: "/tmp/results".into(),
                flags: OpenFlags::RDWR_CREATE,
            },
        )
        .unwrap();

    // A squatter on node 1 with the SAME pid, plus a colliding file path.
    let squatter = cluster
        .node(NodeId(1))
        .kernel()
        .unwrap()
        .spawn_native(NativeKind::SparseRandom, params)
        .unwrap();
    cluster
        .node(NodeId(1))
        .kernel()
        .unwrap()
        .fs
        .create_file("/tmp/results")
        .unwrap();
    cluster.advance(20_000_000);
    println!("migrant: {migrant} on node0; squatter: {squatter} on node1 (same pid number)");

    // Attempt 1: pre-ZAP migration keeping identity — hits the conflict.
    match migrate(
        &mut cluster,
        NodeId(0),
        migrant,
        NodeId(1),
        MigrationMode::KeepIdentity,
        None,
    ) {
        Err(e) => println!("keep-identity migration fails as expected: {e}"),
        Ok(_) => panic!("conflict should have been detected"),
    }
    cluster
        .node(NodeId(0))
        .kernel()
        .unwrap()
        .thaw_process(migrant)
        .unwrap();

    // Attempt 2: pod-virtualized migration (ZAP).
    let mut pod = Pod::new("jobA");
    let report = migrate(
        &mut cluster,
        NodeId(0),
        migrant,
        NodeId(1),
        MigrationMode::Podded,
        Some(&mut pod),
    )
    .expect("podded migration");
    println!(
        "podded migration OK: moved {} bytes; physical pid {}, virtual pid {} preserved in pod",
        report.bytes_moved,
        report.new_pid,
        pod.virtual_of(report.new_pid).unwrap()
    );
    println!(
        "files re-rooted: /pods/jobA/tmp/results exists = {}",
        cluster
            .node(NodeId(1))
            .kernel()
            .unwrap()
            .fs
            .exists("/pods/jobA/tmp/results")
    );

    // The migrated process keeps computing, paying ZAP's interposition tax.
    let w0 = cluster
        .node(NodeId(1))
        .kernel()
        .unwrap()
        .process(report.new_pid)
        .unwrap()
        .work_done;
    cluster.advance(30_000_000);
    let k1 = cluster.node(NodeId(1)).kernel().unwrap();
    println!(
        "migrated process progressed {} → {} steps; interposition active = {}",
        w0,
        k1.process(report.new_pid).unwrap().work_done,
        k1.process(report.new_pid).unwrap().user_rt.interpose_active
    );
    println!("squatter untouched: {}", k1.process(squatter).is_some());
}
