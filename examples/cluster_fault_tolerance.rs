//! The capability-computing scenario that motivates the paper: a parallel
//! job on a failing cluster, kept alive by coordinated checkpointing to
//! remote stable storage — with automatic migration off dead nodes.
//!
//! ```text
//! cargo run --release --example cluster_fault_tolerance
//! ```

use ckpt_restart::cluster::{
    Cluster, Coordinator, FailureConfig, JobInterrupt, MpiJob, NodeId,
};
use ckpt_restart::ckpt::TrackerKind;
use ckpt_restart::simos::apps::{AppParams, NativeKind};
use ckpt_restart::simos::cost::CostModel;

fn main() {
    // Four nodes, aggressive per-node MTBF so we see failures quickly.
    let mut cluster = Cluster::new(
        4,
        CostModel::circa_2005(),
        FailureConfig::with_mtbf(60_000_000, 3_000_000, 2024),
    );
    let mut params = AppParams::small();
    params.mem_bytes = 128 * 1024;
    let mut job = MpiJob::launch(
        &mut cluster,
        "stencil",
        4,
        NativeKind::DenseSweep,
        params,
        20,
        32 * 1024,
    )
    .expect("launch");
    println!(
        "launched 4-rank job on nodes {:?}",
        job.ranks.iter().map(|r| r.node.0).collect::<Vec<_>>()
    );
    let mut coord = Coordinator::new("demo-job", TrackerKind::KernelPage);

    let target = 12u64;
    let mut recoveries = 0;
    while job.completed_supersteps() < target {
        match job.superstep(&mut cluster) {
            Ok(()) => {
                let done = job.completed_supersteps();
                print!("superstep {done:>2} done");
                if done.is_multiple_of(3) {
                    let o = coord.checkpoint(&mut cluster, &job).expect("ckpt");
                    print!(
                        "  [coordinated ckpt #{}: {} bytes, {} ns, incremental={}]",
                        o.seq, o.total_bytes, o.round_ns, o.incremental
                    );
                }
                println!();
            }
            Err(JobInterrupt::NodeLost(node)) => {
                println!("!! node {node} failed at t={} ns", cluster.now());
                // Wait for capacity if needed, then roll back and migrate.
                while cluster.alive_nodes().len() < 2 {
                    cluster.advance(5_000_000);
                }
                coord.restart(&mut cluster, &mut job).expect("recover");
                recoveries += 1;
                println!(
                    "   recovered to superstep {} on nodes {:?}",
                    job.completed_supersteps(),
                    job.ranks.iter().map(|r| r.node.0).collect::<Vec<_>>()
                );
            }
        }
    }
    println!(
        "\njob completed {target} supersteps at t={:.2} ms with {} failures and {} recoveries",
        cluster.now() as f64 / 1e6,
        cluster.failure_log.len(),
        recoveries
    );
    // Show the final rank states agree (the ring exchange is intact).
    let states = job.rank_states(&mut cluster).expect("states");
    for (i, (ss, inbox)) in states.iter().enumerate() {
        println!("rank {i}: superstep={ss} inbox=0x{inbox:016x}");
    }
    let _ = NodeId(0);
}
