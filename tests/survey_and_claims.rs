//! The paper's artifacts and headline claims, asserted as integration
//! tests: Table 1 must match byte-for-byte, Figure 1 must be fully
//! implemented, and each comparative claim (C1–C8 in DESIGN.md) must hold
//! with the expected *direction* on the calibrated cost model.

use ckpt_restart::cluster::stochastic_run;
use ckpt_restart::ckpt::mechanism::fork_concurrent::ForkConcurrentMechanism;
use ckpt_restart::ckpt::mechanism::hardware::{HardwareMechanism, HwFlavor};
use ckpt_restart::ckpt::mechanism::kthread::{
    KernelThreadMechanism, KthreadIface, KthreadVariant,
};
use ckpt_restart::ckpt::mechanism::syscall::{SyscallMechanism, SyscallVariant};
use ckpt_restart::ckpt::mechanism::user_level::{Trigger, UserLevelMechanism};
use ckpt_restart::ckpt::mechanism::Mechanism;
use ckpt_restart::ckpt::policy::young_interval;
use ckpt_restart::ckpt::{shared_storage, TrackerKind};
use ckpt_restart::simos::apps::{AppParams, NativeKind};
use ckpt_restart::simos::cost::CostModel;
use ckpt_restart::simos::signal::Sig;
use ckpt_restart::simos::{Kernel, Pid};
use ckpt_restart::storage::LocalDisk;
use ckpt_restart::survey;

const SEC: u64 = 1_000_000_000;

#[test]
fn table1_regenerated_equals_paper() {
    assert_eq!(survey::table1_generated(), survey::table1_paper());
}

#[test]
fn figure1_leaves_are_all_implemented() {
    let leaves = survey::taxonomy();
    for leaf in leaves.leaves() {
        assert!(!leaf.implemented_by.is_empty(), "{}", leaf.label);
    }
    assert_eq!(leaves.leaves().len(), 8);
}

fn spawn_app(k: &mut Kernel) -> Pid {
    let mut p = AppParams::small();
    p.mem_bytes = 512 * 1024;
    p.total_steps = u64::MAX;
    k.spawn_native(NativeKind::SparseRandom, p).unwrap()
}

/// C1: a user-level checkpoint spends strictly more protection-domain
/// crossings than a kernel-level one, and the gap grows with state size.
#[test]
fn claim_c1_user_level_crossing_tax() {
    let crossings = |user: bool, nfds: u32| -> u64 {
        let mut k = Kernel::new(CostModel::circa_2005());
        let pid = spawn_app(&mut k);
        for i in 0..nfds {
            k.do_syscall(
                pid,
                ckpt_restart::simos::syscall::Syscall::Open {
                    path: format!("/tmp/f{i}"),
                    flags: ckpt_restart::simos::fs::OpenFlags::RDWR_CREATE,
                },
            )
            .unwrap();
        }
        k.run_for(10_000_000).unwrap();
        let mut mech: Box<dyn Mechanism> = if user {
            Box::new(UserLevelMechanism::new(
                "lib",
                "c1",
                shared_storage(LocalDisk::new(1 << 32)),
                TrackerKind::FullOnly,
                Trigger::Signal { sig: Sig::SIGUSR1 },
            ))
        } else {
            Box::new(SyscallMechanism::new(
                "epckpt",
                SyscallVariant::ByPid,
                "c1",
                shared_storage(LocalDisk::new(1 << 32)),
                TrackerKind::FullOnly,
            ))
        };
        mech.prepare(&mut k, pid).unwrap();
        let o = mech.checkpoint(&mut k, pid).unwrap();
        o.events.syscalls
    };
    let user_small = crossings(true, 2);
    let kernel_small = crossings(false, 2);
    assert!(user_small > kernel_small + 5);
    let user_big = crossings(true, 32);
    assert!(user_big > user_small + 25, "per-fd crossings must add up");
}

/// C2/C3 direction: for a sparse writer, page-incremental beats full, and
/// fine granularity beats page granularity on logical delta size.
#[test]
fn claim_c2_c3_granularity_ordering() {
    let mut k = Kernel::new(CostModel::circa_2005());
    let mut p = AppParams::small();
    p.mem_bytes = 1024 * 1024;
    p.total_steps = u64::MAX;
    let pid = k.spawn_native(NativeKind::SparseRandom, p).unwrap();
    k.run_for(2_000_000).unwrap();
    let full_bytes;
    let page_bytes;
    let line_bytes;
    {
        use ckpt_restart::ckpt::Tracker;
        let mut page = Tracker::new(TrackerKind::KernelPage);
        let mut line = Tracker::new(TrackerKind::HardwareLine);
        // NOTE: one tracker per run — they share the protection machinery.
        page.arm(&mut k, pid).unwrap();
        let target = k.process(pid).unwrap().work_done + 8;
        while k.process(pid).unwrap().work_done < target {
            k.run_for(1_000).unwrap();
        }
        let c_page = page.collect(&mut k, pid).unwrap();
        page_bytes = c_page.logical_dirty_bytes;
        full_bytes = k.process(pid).unwrap().mem.resident_bytes();
        // Fresh run for the hardware tracker.
        let mut k2 = Kernel::new(CostModel::circa_2005());
        let mut p2 = AppParams::small();
        p2.mem_bytes = 1024 * 1024;
        p2.total_steps = u64::MAX;
        let pid2 = k2.spawn_native(NativeKind::SparseRandom, p2).unwrap();
        k2.run_for(2_000_000).unwrap();
        line.arm(&mut k2, pid2).unwrap();
        let target = k2.process(pid2).unwrap().work_done + 8;
        while k2.process(pid2).unwrap().work_done < target {
            k2.run_for(1_000).unwrap();
        }
        line_bytes = line.collect(&mut k2, pid2).unwrap().logical_dirty_bytes;
    }
    assert!(page_bytes < full_bytes, "incremental < full");
    assert!(line_bytes < page_bytes / 4, "line << page granularity");
}

/// C5 direction: fork-concurrent stalls the app far less than
/// stop-the-world for the same image.
#[test]
fn claim_c5_fork_stall() {
    let mut k = Kernel::new(CostModel::circa_2005());
    let mut p = AppParams::small();
    p.mem_bytes = 1024 * 1024;
    p.total_steps = u64::MAX;
    let pid = k.spawn_native(NativeKind::DenseSweep, p.clone()).unwrap();
    k.run_for(10_000_000).unwrap();
    let mut fork = ForkConcurrentMechanism::new("forkckpt", "c5", shared_storage(LocalDisk::new(1 << 32)));
    fork.prepare(&mut k, pid).unwrap();
    let fo = fork.checkpoint(&mut k, pid).unwrap();

    let mut k2 = Kernel::new(CostModel::circa_2005());
    let pid2 = k2.spawn_native(NativeKind::DenseSweep, p).unwrap();
    k2.run_for(10_000_000).unwrap();
    let mut stw = KernelThreadMechanism::new(
        "crak",
        "c5",
        shared_storage(LocalDisk::new(1 << 32)),
        TrackerKind::FullOnly,
        KthreadIface::Ioctl,
        KthreadVariant::default(),
    );
    stw.prepare(&mut k2, pid2).unwrap();
    let so = stw.checkpoint(&mut k2, pid2).unwrap();
    assert!(fo.app_stall_ns * 10 < so.app_stall_ns);
    // And the parent really did pay COW during the save.
    assert!(fo.events.cow_faults > 0);
}

/// C4 direction: SafetyNet stalls less than ReVive; hardware tracking has
/// no software fault cost.
#[test]
fn claim_c4_hardware_flavours() {
    let stall = |flavor| {
        let mut k = Kernel::new(CostModel::circa_2005());
        let pid = spawn_app(&mut k);
        let mut m = HardwareMechanism::new(flavor, "c4", shared_storage(LocalDisk::new(1 << 32)));
        m.prepare(&mut k, pid).unwrap();
        k.run_for(10_000_000).unwrap();
        m.checkpoint(&mut k, pid).unwrap();
        k.run_for(10_000_000).unwrap();
        (m.checkpoint(&mut k, pid).unwrap().app_stall_ns, k.stats.page_faults)
    };
    let (revive, faults_a) = stall(HwFlavor::Revive);
    let (safetynet, faults_b) = stall(HwFlavor::Safetynet);
    assert!(safetynet < revive);
    assert_eq!(faults_a, 0);
    assert_eq!(faults_b, 0);
}

/// C7 direction: at BlueGene/L scale, Young's interval dominates a naive
/// long interval by a wide margin.
#[test]
fn claim_c7_scale() {
    let n = 65_536;
    let node_mtbf = 36_000 * SEC;
    let c = SEC / 10;
    let ty = young_interval(c, (node_mtbf as f64 / n as f64) as u64).max(1);
    let tuned = stochastic_run(n, node_mtbf, ty, c, SEC, 60 * SEC, 7);
    let naive = stochastic_run(n, node_mtbf, 60 * SEC, c, SEC, 60 * SEC, 7);
    assert!(tuned.utilization > 2.0 * naive.utilization);
}

/// The paper's bottom line, as a test: the only fully transparent,
/// user-initiable, incremental-capable, commodity-hardware point in the
/// taxonomy is a system-level OS mechanism.
#[test]
fn papers_conclusion_holds_in_the_taxonomy() {
    use ckpt_restart::ckpt::mechanism::{Context, Initiation};
    // Candidate: kernel-thread mechanism with kernel-page tracking.
    let m = KernelThreadMechanism::new(
        "crak",
        "x",
        shared_storage(LocalDisk::new(1024)),
        TrackerKind::KernelPage,
        KthreadIface::Ioctl,
        KthreadVariant::default(),
    );
    let info = m.info();
    assert_eq!(info.context, Context::SystemOs);
    assert!(info.transparent);
    assert!(info.supports_incremental);
    assert_eq!(info.initiation, Initiation::UserInitiated);
    // User-level candidates fail transparency (unless preloaded) and pay
    // the crossing tax (claim_c1); hardware candidates need custom
    // hardware (Context::Hardware) — checked here for completeness.
    let hw = HardwareMechanism::new(HwFlavor::Revive, "x", shared_storage(LocalDisk::new(1024)));
    assert_eq!(hw.info().context, Context::Hardware);
}
