//! A crash-matrix slice with the parallel encode pool forced wide: the
//! fault sites enumerated by the recording pass must fire at exactly the
//! same points under a multi-worker pool, every cell must classify the
//! same way across repeated runs, and a crash landing mid-parallel-encode
//! (the capture/compress/store faultpoints) must never leave a partially
//! committed image behind — which would surface as a `Violation` via the
//! matrix's intact-chain cross-check.
//!
//! This lives in its own test binary so it can pin the process-wide pool
//! width before anything initializes it: the engines inside the matrix
//! mechanisms default to [`ckpt_par::global`].

use ckpt_restart::ckpt::crashpoint::{run_config, CellOutcome, MatrixConfig};

#[test]
fn pooled_matrix_slice_is_deterministic_with_no_partial_commits() {
    // Own process, first touch of the pool: the width sticks.
    std::env::set_var("CKPT_PAR_WORKERS", "4");
    assert_eq!(
        ckpt_restart::par::global().workers(),
        4,
        "pool was initialized before the test could pin its width"
    );

    // One engine-driven mechanism per storage backend keeps the slice
    // under a few seconds while still crossing every fault kind.
    let slice = [
        MatrixConfig {
            mechanism: "syscall",
            backend: "local-disk",
        },
        MatrixConfig {
            mechanism: "kernel-thread",
            backend: "remote",
        },
        MatrixConfig {
            mechanism: "fork-concurrent",
            backend: "nvram",
        },
    ];

    let mut all = Vec::new();
    for cfg in slice {
        let first = run_config(cfg);
        assert!(
            !first.is_empty(),
            "{}/{}: recording pass enumerated no fault sites",
            cfg.mechanism,
            cfg.backend
        );
        // Count-based fault triggers + a work-stealing pool: the arming
        // must still be deterministic, so a second sweep classifies every
        // cell identically.
        let second = run_config(cfg);
        assert_eq!(
            first, second,
            "{}/{}: cell outcomes changed between runs under the pool",
            cfg.mechanism, cfg.backend
        );
        for cell in &first {
            assert!(
                !matches!(cell.outcome, CellOutcome::Violation { .. }),
                "pooled violation: {cell}"
            );
        }
        all.extend(first);
    }

    // The parallel-encode window is actually swept: faults landed on the
    // capture, compress, and store points, and both terminal
    // classifications occurred.
    for phase in ["capture", "compress", "store"] {
        assert!(
            all.iter().any(|c| c.site.contains(&format!("/{phase}@"))),
            "phase {phase} never appeared as an armed site in the slice"
        );
    }
    assert!(all.iter().any(|c| matches!(c.outcome, CellOutcome::Restarted { .. })));
    assert!(all.iter().any(|c| matches!(c.outcome, CellOutcome::Detected { .. })));
}
