//! Property tests for live migration (`ckpt-cluster::livemig`).
//!
//! Three properties, each over randomized or exhaustive inputs:
//!
//! 1. **Converge-or-diverge** — across randomized dirty-rate schedules
//!    (guest geometry, write intensity, downtime budget), pre-copy either
//!    converges within the round cap or reports a typed
//!    [`SimError::CutoverDiverged`] leaving the source guest intact and
//!    runnable. It never panics and never produces a wrong target.
//! 2. **Bit-identical state** — for every app-zoo guest and both live
//!    strategies, the migrated guest's full memory span equals a
//!    deterministic standalone replay of the unmigrated application to
//!    the same step, word for word.
//! 3. **Pool-width invariance** — the whole migration (bytes on the wire,
//!    round structure, final guest bytes) is byte-identical whether pages
//!    are encoded by a 1-, 4-, or 8-worker `ckpt-par` pool.

use ckpt_cluster::livemig::{migrate_postcopy, migrate_precopy, LiveMigConfig};
use ckpt_cluster::{Cluster, FailureConfig, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use simos::apps::{self, AppParams, GuestMemIo, NativeKind, VecMem, HEADER_BASE};
use simos::cost::{CostModel, PAGE_SIZE};
use simos::types::{Pid, SimError};
use simos::Kernel;
use std::sync::Arc;

const FROM: NodeId = NodeId(0);
const TO: NodeId = NodeId(1);

fn setup(kind: NativeKind, mut params: AppParams) -> (Cluster, Pid) {
    let mut c = Cluster::new(2, CostModel::circa_2005(), FailureConfig::none());
    params.total_steps = u64::MAX;
    let pid = c
        .node(FROM)
        .kernel()
        .unwrap()
        .spawn_native(kind, params)
        .unwrap();
    c.advance(5_000_000);
    (c, pid)
}

/// The guest's full data span (header page + working array), absent pages
/// read as zero.
fn guest_bytes(k: &Kernel, pid: Pid, params: &AppParams) -> Vec<u8> {
    let span = (apps::ARRAY_BASE - HEADER_BASE) + params.mem_bytes + PAGE_SIZE;
    let mut buf = vec![0u8; span as usize];
    k.process(pid).unwrap().mem.peek(HEADER_BASE, &mut buf);
    buf
}

/// Replay the app standalone to the same step the guest reached and
/// demand bit-for-bit equality over the whole span.
fn assert_bit_identical(k: &Kernel, pid: Pid, kind: NativeKind, params: &AppParams, label: &str) {
    let got = guest_bytes(k, pid, params);
    let steps = {
        let mut snap = VecMem::new(params);
        snap.bytes.copy_from_slice(&got);
        snap.r64(apps::H_STEP)
    };
    let mut reference = VecMem::new(params);
    apps::init(kind, params, &mut reference);
    for _ in 0..steps {
        apps::step(kind, params, &mut reference);
    }
    assert_eq!(
        got, reference.bytes,
        "{label}: migrated guest state diverged from the unmigrated replay at step {steps}"
    );
}

#[test]
fn precopy_converges_or_diverges_typed_over_random_dirty_schedules() {
    let mut rng = StdRng::seed_from_u64(0x11ea_51fe);
    for case in 0..24u64 {
        // A random dirty-rate schedule: geometry controls how fast the
        // guest re-dirties pages relative to the link draining them.
        let params = AppParams {
            mem_bytes: (rng.gen_range(16u64..96) * 4096).max(16 * 4096),
            total_steps: u64::MAX,
            writes_per_step: rng.gen_range(1u64..32),
            write_stride_pages: rng.gen_range(1u64..8),
            seed: rng.next_u64(),
        };
        let kind = NativeKind::ALL[rng.gen_range(0usize..NativeKind::ALL.len())];
        let autoconverge: bool = rng.gen();
        let cfg = LiveMigConfig {
            downtime_budget_ns: rng.gen_range(30_000u64..500_000),
            max_rounds: rng.gen_range(6u32..30),
            autoconverge,
            ..LiveMigConfig::default()
        };
        let (mut c, pid) = setup(kind, params.clone());
        match migrate_precopy(&mut c, FROM, pid, TO, &cfg) {
            Ok(r) => {
                assert!(
                    r.rounds <= cfg.max_rounds,
                    "case {case}: converged past the round cap"
                );
                let k = c.node(TO).kernel().unwrap();
                assert_bit_identical(k, r.new_pid, kind, &params, &format!("case {case}"));
            }
            Err(SimError::CutoverDiverged {
                rounds,
                residual_pages,
            }) => {
                assert!(rounds <= cfg.max_rounds, "case {case}: diverged past the cap");
                assert!(residual_pages > 0, "case {case}: diverged with nothing dirty");
                // The abandoned migration must leave the source intact
                // and runnable.
                let k = c.node(FROM).kernel().unwrap();
                assert_bit_identical(k, pid, kind, &params, &format!("case {case} source"));
                let w0 = k.process(pid).unwrap().work_done;
                c.advance(2_000_000);
                assert!(
                    c.node(FROM).kernel().unwrap().process(pid).unwrap().work_done > w0,
                    "case {case}: source guest stuck after a diverged migration"
                );
            }
            Err(other) => panic!("case {case}: unexpected error {other}"),
        }
    }
}

#[test]
fn migrated_guests_are_bit_identical_across_the_zoo() {
    for kind in NativeKind::ALL {
        let params = AppParams::small();
        let (mut c, pid) = setup(kind, params.clone());
        let r = migrate_precopy(&mut c, FROM, pid, TO, &LiveMigConfig::default())
            .unwrap_or_else(|e| panic!("{kind:?} pre-copy: {e}"));
        let k = c.node(TO).kernel().unwrap();
        assert_bit_identical(k, r.new_pid, kind, &params, &format!("{kind:?} pre-copy"));

        let (mut c, pid) = setup(kind, params.clone());
        let r = migrate_postcopy(&mut c, FROM, pid, TO, &LiveMigConfig::default())
            .unwrap_or_else(|e| panic!("{kind:?} post-copy: {e}"));
        assert_eq!(
            r.demand_pages + r.prefetch_pages,
            r.residual_pages,
            "{kind:?}: residual ledger must drain exactly once"
        );
        let k = c.node(TO).kernel().unwrap();
        assert_bit_identical(k, r.new_pid, kind, &params, &format!("{kind:?} post-copy"));
    }
}

#[test]
fn migration_is_byte_identical_at_pool_widths_1_4_8() {
    let params = AppParams::medium();
    let mut baseline: Option<(u64, u64, u32, Vec<u8>)> = None;
    for width in [1usize, 4, 8] {
        let cfg = LiveMigConfig {
            encode_pool: Some(Arc::new(ckpt_par::Pool::new(width))),
            ..LiveMigConfig::default()
        };
        let (mut c, pid) = setup(NativeKind::Stencil2D, params.clone());
        let r = migrate_precopy(&mut c, FROM, pid, TO, &cfg).unwrap();
        let k = c.node(TO).kernel().unwrap();
        let bytes = guest_bytes(k, r.new_pid, &params);
        let sig = (r.bytes_precopy, r.bytes_cutover, r.rounds, bytes);
        match &baseline {
            None => baseline = Some(sig),
            Some(b) => assert_eq!(
                *b, sig,
                "pool width {width} changed the migration (bytes, rounds, or guest state)"
            ),
        }
    }
}
