//! The reproduction's central invariant, property-tested across the
//! mechanism space: **restarting from a checkpoint is indistinguishable
//! from never having crashed**.
//!
//! For a generated application, checkpoint instant, and mechanism family,
//! the final guest state of crash+restore+continue must equal the
//! uninterrupted run's. Cases come from the deterministic [`common::Gen`]
//! corpus, cycling through every family.

mod common;

use ckpt_restart::ckpt::mechanism::ksignal::KernelSignalMechanism;
use ckpt_restart::ckpt::mechanism::kthread::{
    KernelThreadMechanism, KthreadIface, KthreadVariant,
};
use ckpt_restart::ckpt::mechanism::syscall::{SyscallMechanism, SyscallVariant};
use ckpt_restart::ckpt::mechanism::user_level::{Trigger, UserLevelMechanism};
use ckpt_restart::ckpt::mechanism::Mechanism;
use ckpt_restart::ckpt::{shared_storage, RestorePid, TrackerKind};
use ckpt_restart::simos::apps::{self, AppParams, NativeKind};
use ckpt_restart::simos::cost::CostModel;
use ckpt_restart::simos::signal::Sig;
use ckpt_restart::simos::Kernel;
use ckpt_restart::storage::LocalDisk;
use common::Gen;

#[derive(Debug, Clone, Copy)]
enum Family {
    UserSignal,
    SyscallByPid,
    KernelSignal,
    KthreadIoctl,
    KthreadProc,
}

const FAMILIES: [Family; 5] = [
    Family::UserSignal,
    Family::SyscallByPid,
    Family::KernelSignal,
    Family::KthreadIoctl,
    Family::KthreadProc,
];

const KINDS: [NativeKind; 5] = [
    NativeKind::DenseSweep,
    NativeKind::SparseRandom,
    NativeKind::AppendLog,
    NativeKind::ReadMostly,
    NativeKind::Stencil2D,
];

const TRACKERS: [TrackerKind; 3] = [
    TrackerKind::FullOnly,
    TrackerKind::KernelPage,
    TrackerKind::ProbBlock { block: 256 },
];

fn build(family: Family, tracker: TrackerKind) -> Box<dyn Mechanism> {
    let storage = shared_storage(LocalDisk::new(1 << 32));
    // User-level mechanisms cannot use kernel trackers.
    match family {
        Family::UserSignal => Box::new(UserLevelMechanism::new(
            "libckpt",
            "prop",
            storage,
            if matches!(tracker, TrackerKind::KernelPage) {
                TrackerKind::UserPage
            } else {
                tracker
            },
            Trigger::Signal { sig: Sig::SIGUSR1 },
        )),
        Family::SyscallByPid => Box::new(SyscallMechanism::new(
            "epckpt",
            SyscallVariant::ByPid,
            "prop",
            storage,
            tracker,
        )),
        Family::KernelSignal => Box::new(KernelSignalMechanism::new(
            "chpox", "prop", storage, tracker,
        )),
        Family::KthreadIoctl => Box::new(KernelThreadMechanism::new(
            "crak",
            "prop",
            storage,
            tracker,
            KthreadIface::Ioctl,
            KthreadVariant::default(),
        )),
        Family::KthreadProc => Box::new(KernelThreadMechanism::new(
            "psnc",
            "prop",
            storage,
            tracker,
            KthreadIface::ProcWrite,
            KthreadVariant {
                compress: false,
                ..Default::default()
            },
        )),
    }
}

fn final_state(k: &Kernel, pid: ckpt_restart::simos::Pid) -> (u64, u64) {
    let p = k.process(pid).expect("process");
    let mut step = [0u8; 8];
    let mut sum = [0u8; 8];
    p.mem.peek(apps::H_STEP, &mut step);
    p.mem.peek(apps::H_SUM, &mut sum);
    (u64::from_le_bytes(step), u64::from_le_bytes(sum))
}

#[test]
fn crash_restore_continue_equals_uninterrupted_run() {
    for case in 0..12u64 {
        let mut g = Gen::new(case);
        let family = FAMILIES[case as usize % FAMILIES.len()];
        let kind = KINDS[g.range(0, KINDS.len() as u64) as usize];
        let tracker = TRACKERS[g.range(0, TRACKERS.len() as u64) as usize];
        let ckpt_after_steps = g.range(3, 24);
        let n_checkpoints = g.range(1, 3) as usize;
        let seed = g.range(1, 1_000);

        let mut params = AppParams::small();
        params.seed = seed;
        params.total_steps = 40;
        // Reference: uninterrupted.
        let (ref_step, ref_sum) = apps::reference_run(kind, &params);

        // Instrumented run: checkpoint at the chosen instant(s), crash,
        // restore on a fresh kernel, continue to completion.
        let mut k = Kernel::new(CostModel::circa_2005());
        let pid = k.spawn_native(kind, params.clone()).unwrap();
        let mut mech = build(family, tracker);
        mech.prepare(&mut k, pid).unwrap();
        for i in 0..n_checkpoints {
            let target = ckpt_after_steps + i as u64 * 5;
            while k.process(pid).unwrap().work_done < target
                && !k.process(pid).unwrap().has_exited()
            {
                k.run_for(1_000).unwrap();
            }
            if k.process(pid).unwrap().has_exited() {
                break;
            }
            mech.checkpoint(&mut k, pid).unwrap();
        }
        // Crash the whole node.
        drop(k);
        let mut k2 = Kernel::new(CostModel::circa_2005());
        let r = mech.restart(&mut k2, RestorePid::Fresh).unwrap();
        let code = k2.run_until_exit(r.pid).unwrap();
        assert_eq!(code, 0, "case {case} exited nonzero");
        let (step, sum) = final_state(&k2, r.pid);
        assert_eq!(
            step, ref_step,
            "step diverged for case {case} {family:?}/{kind:?}/{tracker:?}"
        );
        assert_eq!(
            sum, ref_sum,
            "checksum diverged for case {case} {family:?}/{kind:?}/{tracker:?}"
        );
    }
}

#[test]
fn restored_image_work_counter_is_monotone() {
    // A restart never loses more work than since the last checkpoint,
    // and never invents progress.
    for case in 0..6u64 {
        let mut g = Gen::new(100 + case);
        let kind = KINDS[case as usize % KINDS.len()];
        let seed = g.range(1, 500);
        let mut params = AppParams::small();
        params.seed = seed;
        params.total_steps = u64::MAX;
        let mut k = Kernel::new(CostModel::circa_2005());
        let pid = k.spawn_native(kind, params).unwrap();
        let mut mech = build(Family::KthreadIoctl, TrackerKind::KernelPage);
        mech.prepare(&mut k, pid).unwrap();
        k.run_for(5_000_000).unwrap();
        mech.checkpoint(&mut k, pid).unwrap();
        let work_at_ckpt_max = k.process(pid).unwrap().work_done;
        let mut k2 = Kernel::new(CostModel::circa_2005());
        let r = mech.restart(&mut k2, RestorePid::Fresh).unwrap();
        assert!(
            r.work_done <= work_at_ckpt_max,
            "case {case}: restored work {} exceeds checkpoint-time work {}",
            r.work_done,
            work_at_ckpt_max
        );
    }
}

#[test]
fn vm_program_restart_correctness() {
    // VM programs carry register state; checkpoint mid-loop and confirm
    // the final memory equals an uninterrupted run's.
    let text = ckpt_restart::simos::asm::programs::summer(200);
    let mut kr = Kernel::new(CostModel::circa_2005());
    let rp = kr.spawn_vm(text.clone(), "summer").unwrap();
    kr.run_until_exit(rp).unwrap();
    let mut expect = [0u8; 8];
    kr.process(rp)
        .unwrap()
        .mem
        .peek(ckpt_restart::simos::mem::DATA_BASE, &mut expect);

    let mut k = Kernel::new(CostModel::circa_2005());
    let pid = k.spawn_vm(text, "summer").unwrap();
    let mut mech = build(Family::KernelSignal, TrackerKind::FullOnly);
    mech.prepare(&mut k, pid).unwrap();
    k.run_for(200).unwrap(); // a couple hundred instructions in
    assert!(!k.process(pid).unwrap().has_exited());
    mech.checkpoint(&mut k, pid).unwrap();
    drop(k);
    let mut k2 = Kernel::new(CostModel::circa_2005());
    let r = mech.restart(&mut k2, RestorePid::Fresh).unwrap();
    k2.run_until_exit(r.pid).unwrap();
    let mut got = [0u8; 8];
    k2.process(r.pid)
        .unwrap()
        .mem
        .peek(ckpt_restart::simos::mem::DATA_BASE, &mut got);
    assert_eq!(got, expect);
}
