//! The reproduction's central invariant, property-tested across the
//! mechanism space: **restarting from a checkpoint is indistinguishable
//! from never having crashed**.
//!
//! For a random application, a random checkpoint instant, and a random
//! mechanism family, the final guest state of crash+restore+continue must
//! equal the uninterrupted run's.

use ckpt_restart::core::mechanism::ksignal::KernelSignalMechanism;
use ckpt_restart::core::mechanism::kthread::{
    KernelThreadMechanism, KthreadIface, KthreadVariant,
};
use ckpt_restart::core::mechanism::syscall::{SyscallMechanism, SyscallVariant};
use ckpt_restart::core::mechanism::user_level::{Trigger, UserLevelMechanism};
use ckpt_restart::core::mechanism::Mechanism;
use ckpt_restart::core::{shared_storage, RestorePid, TrackerKind};
use ckpt_restart::simos::apps::{self, AppParams, NativeKind};
use ckpt_restart::simos::cost::CostModel;
use ckpt_restart::simos::signal::Sig;
use ckpt_restart::simos::Kernel;
use ckpt_restart::storage::LocalDisk;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Family {
    UserSignal,
    SyscallByPid,
    KernelSignal,
    KthreadIoctl,
    KthreadProc,
}

fn family_strategy() -> impl Strategy<Value = Family> {
    prop_oneof![
        Just(Family::UserSignal),
        Just(Family::SyscallByPid),
        Just(Family::KernelSignal),
        Just(Family::KthreadIoctl),
        Just(Family::KthreadProc),
    ]
}

fn kind_strategy() -> impl Strategy<Value = NativeKind> {
    prop_oneof![
        Just(NativeKind::DenseSweep),
        Just(NativeKind::SparseRandom),
        Just(NativeKind::AppendLog),
        Just(NativeKind::ReadMostly),
        Just(NativeKind::Stencil2D),
    ]
}

fn tracker_strategy() -> impl Strategy<Value = TrackerKind> {
    prop_oneof![
        Just(TrackerKind::FullOnly),
        Just(TrackerKind::KernelPage),
        Just(TrackerKind::ProbBlock { block: 256 }),
    ]
}

fn build(family: Family, tracker: TrackerKind) -> Box<dyn Mechanism> {
    let storage = shared_storage(LocalDisk::new(1 << 32));
    // User-level mechanisms cannot use kernel trackers.
    match family {
        Family::UserSignal => Box::new(UserLevelMechanism::new(
            "libckpt",
            "prop",
            storage,
            if matches!(tracker, TrackerKind::KernelPage) {
                TrackerKind::UserPage
            } else {
                tracker
            },
            Trigger::Signal { sig: Sig::SIGUSR1 },
        )),
        Family::SyscallByPid => Box::new(SyscallMechanism::new(
            "epckpt",
            SyscallVariant::ByPid,
            "prop",
            storage,
            tracker,
        )),
        Family::KernelSignal => Box::new(KernelSignalMechanism::new(
            "chpox", "prop", storage, tracker,
        )),
        Family::KthreadIoctl => Box::new(KernelThreadMechanism::new(
            "crak",
            "prop",
            storage,
            tracker,
            KthreadIface::Ioctl,
            KthreadVariant::default(),
        )),
        Family::KthreadProc => Box::new(KernelThreadMechanism::new(
            "psnc",
            "prop",
            storage,
            tracker,
            KthreadIface::ProcWrite,
            KthreadVariant {
                compress: false,
                ..Default::default()
            },
        )),
    }
}

fn final_state(k: &Kernel, pid: ckpt_restart::simos::Pid) -> (u64, u64) {
    let p = k.process(pid).expect("process");
    let mut step = [0u8; 8];
    let mut sum = [0u8; 8];
    p.mem.peek(apps::H_STEP, &mut step);
    p.mem.peek(apps::H_SUM, &mut sum);
    (u64::from_le_bytes(step), u64::from_le_bytes(sum))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    #[test]
    fn crash_restore_continue_equals_uninterrupted_run(
        family in family_strategy(),
        kind in kind_strategy(),
        tracker in tracker_strategy(),
        ckpt_after_steps in 3u64..24,
        n_checkpoints in 1usize..3,
        seed in 1u64..1_000,
    ) {
        let mut params = AppParams::small();
        params.seed = seed;
        params.total_steps = 40;
        // Reference: uninterrupted.
        let (ref_step, ref_sum) = apps::reference_run(kind, &params);

        // Instrumented run: checkpoint at the chosen instant(s), crash,
        // restore on a fresh kernel, continue to completion.
        let mut k = Kernel::new(CostModel::circa_2005());
        let pid = k.spawn_native(kind, params.clone()).unwrap();
        let mut mech = build(family, tracker);
        mech.prepare(&mut k, pid).unwrap();
        for i in 0..n_checkpoints {
            let target = ckpt_after_steps + i as u64 * 5;
            while k.process(pid).unwrap().work_done < target
                && !k.process(pid).unwrap().has_exited()
            {
                k.run_for(1_000).unwrap();
            }
            if k.process(pid).unwrap().has_exited() {
                break;
            }
            mech.checkpoint(&mut k, pid).unwrap();
        }
        // Crash the whole node.
        drop(k);
        let mut k2 = Kernel::new(CostModel::circa_2005());
        let r = mech.restart(&mut k2, RestorePid::Fresh).unwrap();
        let code = k2.run_until_exit(r.pid).unwrap();
        prop_assert_eq!(code, 0);
        let (step, sum) = final_state(&k2, r.pid);
        prop_assert_eq!(step, ref_step, "step diverged for {:?}/{:?}", family, kind);
        prop_assert_eq!(sum, ref_sum, "checksum diverged for {:?}/{:?}", family, kind);
    }

    #[test]
    fn restored_image_work_counter_is_monotone(
        kind in kind_strategy(),
        seed in 1u64..500,
    ) {
        // A restart never loses more work than since the last checkpoint,
        // and never invents progress.
        let mut params = AppParams::small();
        params.seed = seed;
        params.total_steps = u64::MAX;
        let mut k = Kernel::new(CostModel::circa_2005());
        let pid = k.spawn_native(kind, params).unwrap();
        let mut mech = build(Family::KthreadIoctl, TrackerKind::KernelPage);
        mech.prepare(&mut k, pid).unwrap();
        k.run_for(5_000_000).unwrap();
        mech.checkpoint(&mut k, pid).unwrap();
        let work_at_ckpt_max = k.process(pid).unwrap().work_done;
        let mut k2 = Kernel::new(CostModel::circa_2005());
        let r = mech.restart(&mut k2, RestorePid::Fresh).unwrap();
        prop_assert!(r.work_done <= work_at_ckpt_max);
    }
}

#[test]
fn vm_program_restart_correctness() {
    // VM programs carry register state; checkpoint mid-loop and confirm
    // the final memory equals an uninterrupted run's.
    let text = ckpt_restart::simos::asm::programs::summer(200);
    let mut kr = Kernel::new(CostModel::circa_2005());
    let rp = kr.spawn_vm(text.clone(), "summer").unwrap();
    kr.run_until_exit(rp).unwrap();
    let mut expect = [0u8; 8];
    kr.process(rp)
        .unwrap()
        .mem
        .peek(ckpt_restart::simos::mem::DATA_BASE, &mut expect);

    let mut k = Kernel::new(CostModel::circa_2005());
    let pid = k.spawn_vm(text, "summer").unwrap();
    let mut mech = build(Family::KernelSignal, TrackerKind::FullOnly);
    mech.prepare(&mut k, pid).unwrap();
    k.run_for(200).unwrap(); // a couple hundred instructions in
    assert!(!k.process(pid).unwrap().has_exited());
    mech.checkpoint(&mut k, pid).unwrap();
    drop(k);
    let mut k2 = Kernel::new(CostModel::circa_2005());
    let r = mech.restart(&mut k2, RestorePid::Fresh).unwrap();
    k2.run_until_exit(r.pid).unwrap();
    let mut got = [0u8; 8];
    k2.process(r.pid)
        .unwrap()
        .mem
        .peek(ckpt_restart::simos::mem::DATA_BASE, &mut got);
    assert_eq!(got, expect);
}
