//! Cluster-level crash sweep of the sharded control plane's own protocol
//! faultpoints: the per-shard commit instants (`shard/s<i>/commit`, after
//! a shard's ranks are captured but around its batched quorum commit) and
//! the root's global-cut seal (`shard/root/commit`, after every shard has
//! acked). The kernel-level crash matrix cannot reach these — they only
//! exist on a running cluster — so this sweep plays the same game at the
//! cluster tier: enumerate the sites with a recording pass, arm each with
//! each applicable fault kind, crash a node, recover, and require the
//! recovered job to be *state-identical* to a failure-free run. Zero
//! silent-corruption outcomes, every abort clean and retryable.

use ckpt_restart::cluster::{Cluster, FailureConfig, MpiJob, NodeId, ShardedCoordinator};
use ckpt_restart::ckpt::TrackerKind;
use simos::apps::{AppParams, NativeKind};
use simos::cost::CostModel;
use simos::faultpoint::{Fault, FaultHandle};

const SUPERSTEPS: u64 = 6;

fn setup() -> (Cluster, MpiJob, ShardedCoordinator) {
    let mut c = Cluster::new_striped(
        3,
        CostModel::circa_2005(),
        FailureConfig::none(),
        4,
        3,
        2,
    );
    let job = MpiJob::launch(
        &mut c,
        "app",
        6,
        NativeKind::SparseRandom,
        AppParams::small(),
        6,
        32 * 1024,
    )
    .expect("launch");
    let coord = ShardedCoordinator::new("shardcrash", TrackerKind::KernelPage, 2);
    (c, job, coord)
}

/// The scenario every cell runs fault-free to produce its reference:
/// six supersteps of guest state, nothing else observable.
fn reference_states() -> Vec<(u64, u64)> {
    let (mut c, mut job, _) = setup();
    for _ in 0..SUPERSTEPS {
        job.superstep(&mut c).unwrap();
    }
    job.rank_states(&mut c).unwrap()
}

#[test]
fn every_shard_protocol_faultpoint_recovers_state_identical() {
    // Recording pass: run the scenario's two checkpoint rounds fault-free
    // and enumerate every protocol site the sharded coordinator visits.
    let sites: Vec<String> = {
        let (mut c, mut job, coord) = setup();
        let handle = FaultHandle::recording();
        let mut coord = coord.with_faults(handle.clone());
        for _ in 0..2 {
            job.superstep(&mut c).unwrap();
        }
        coord.checkpoint(&mut c, &job).unwrap();
        job.superstep(&mut c).unwrap();
        coord.checkpoint(&mut c, &job).unwrap();
        handle
            .sites()
            .into_iter()
            .filter(|s| s.name.starts_with("shard/"))
            .map(|s| s.name)
            .collect()
    };
    // Both shard leaders' commit instants and the root's seal, for both
    // the full and the incremental round.
    for frag in ["shard/s0/commit", "shard/s1/commit", "shard/root/commit"] {
        assert!(
            sites.iter().filter(|s| s.contains(frag)).count() >= 2,
            "{frag} must be recorded once per round: {sites:?}"
        );
    }

    let reference = reference_states();
    let mut aborted_rounds = 0u32;
    let mut clean_rounds = 0u32;

    for site in &sites {
        for fault in [Fault::FailStop, Fault::Transient] {
            let (mut c, mut job, coord) = setup();
            let handle = FaultHandle::armed(site, fault);
            let mut coord = coord.with_faults(handle.clone());
            for _ in 0..2 {
                job.superstep(&mut c).unwrap();
            }
            // Two checkpoint rounds; a fail-stop at an armed protocol
            // site aborts that round (seq burned, staged keys retracted,
            // ranks thawed) and a retry after the crash clears must
            // commit. A transient is absorbed by the protocol's retry.
            for _ in 0..2 {
                if coord.checkpoint(&mut c, &job).is_err() {
                    aborted_rounds += 1;
                    handle.clear_crash();
                    coord
                        .checkpoint(&mut c, &job)
                        .unwrap_or_else(|e| panic!("{site}: retry after abort failed: {e}"));
                } else {
                    clean_rounds += 1;
                }
                if job.completed_supersteps() < 3 {
                    job.superstep(&mut c).unwrap();
                }
            }
            assert!(coord.has_checkpoint(), "{site}: no cut ever committed");

            // The machine event: a node dies mid-superstep, the job is
            // rolled back to the last committed cut and replayed.
            c.inject_failure(NodeId(1));
            let _ = job.superstep(&mut c);
            handle.clear_crash();
            coord
                .restart(&mut c, &mut job)
                .unwrap_or_else(|e| panic!("{site} [{fault:?}]: restart failed: {e}"));
            assert!(
                job.completed_supersteps() >= 2,
                "{site}: recovery fell behind the first committed cut"
            );
            while job.completed_supersteps() < SUPERSTEPS {
                job.superstep(&mut c).unwrap();
            }
            assert_eq!(
                job.rank_states(&mut c).unwrap(),
                reference,
                "{site} [{fault:?}]: recovered job diverged from the failure-free run"
            );
        }
    }
    // The sweep exercised both outcomes: fail-stops actually aborted
    // rounds, transients were actually absorbed.
    assert!(aborted_rounds > 0, "no protocol fault ever aborted a round");
    assert!(clean_rounds > 0, "no round ever survived an armed sweep");
}
