//! Property tests on the erasure-coded store: random object sets coded
//! over k data + m parity shard nodes, then subjected to adversarial
//! per-object shard damage. The invariants:
//!
//! * objects with at most `m` damaged shards (dropped or corrupted, in
//!   any mix) read back byte-identical — decode masks the damage and
//!   read-repair leaves every touched shard digest-valid again;
//! * objects with more than `m` damaged shards refuse with a typed
//!   [`StorageError::TooManyShardsLost`] — never wrong bytes;
//! * in the striped variant, mauling one stripe's shard group NEVER
//!   bleeds into objects routed to other stripes.
//!
//! Cases are generated deterministically by [`common::Gen`]; a failing
//! seed reproduces directly.

mod common;

use ckpt_restart::ec::{EcStripedStore, ErasureStore};
use ckpt_restart::replica::Probe;
use ckpt_restart::storage::{StableStorage, StorageError};
use common::Gen;
use simos::cost::CostModel;

const CASES: u64 = 24;

fn geometry(case: u64) -> (usize, usize) {
    if case.is_multiple_of(2) {
        (4, 2)
    } else {
        (8, 3)
    }
}

/// Random object set: distinct keys (plain object keys and image-style
/// lineage keys both appear) with random payloads.
fn arb_objects(g: &mut Gen) -> Vec<(String, Vec<u8>)> {
    let count = g.range(6, 17) as usize;
    (0..count)
        .map(|i| {
            let key = if g.flag() {
                format!("job{}/pid{}/seq{:08}", g.range(0, 3), i, g.range(1, 5))
            } else {
                format!("obj/{i}/{}", g.range(0, 1_000_000))
            };
            let len = g.range(1, 2048) as usize;
            (key, g.bytes(len))
        })
        .collect()
}

/// Damage `count` distinct shard nodes under `key`: each victim either
/// loses its shard frame outright or keeps a corrupted copy. Returns the
/// victims so the caller can verify post-read repair.
fn damage_shards(
    g: &mut Gen,
    set: &ckpt_restart::replica::ReplicaSet,
    key: &str,
    count: usize,
) -> Vec<usize> {
    let n = set.len();
    let mut victims: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = g.range(0, (i + 1) as u64) as usize;
        victims.swap(i, j);
    }
    victims.truncate(count);
    for &r in &victims {
        if g.flag() {
            set.node(r).drop_key(key);
        } else {
            set.node(r).corrupt_key(key);
        }
    }
    victims
}

#[test]
fn shard_damage_within_m_is_masked_and_typed_beyond() {
    let cost = CostModel::circa_2005();
    let mut lost_objects = 0u64;
    let mut healthy_objects = 0u64;
    for case in 0..CASES {
        let mut g = Gen::new(93_000 + case);
        let (k, m) = geometry(case);
        let mut store = ErasureStore::fresh(k, m);
        let objects = arb_objects(&mut g);
        // Mix the two commit paths: single stores and one framed batch.
        let (head, tail) = objects.split_at(objects.len() / 2);
        for (key, payload) in head {
            store.store(key, payload, &cost).unwrap();
        }
        if !tail.is_empty() {
            let batch: Vec<(&str, &[u8])> = tail
                .iter()
                .map(|(k, p)| (k.as_str(), p.as_slice()))
                .collect();
            store.store_batch(&batch, &cost).unwrap();
        }

        // Adversary: each object independently draws a damage level —
        // within tolerance (0..=m) or exactly one past it (m + 1 shards
        // gone leaves k − 1 intact, so the decode must *notice* the
        // shortfall rather than run on whatever it can reach).
        let set = store.replica_set();
        let mut damaged: Vec<(usize, Vec<usize>)> = Vec::new();
        for (key, _) in &objects {
            let level = g.range(0, (m + 2) as u64) as usize;
            let victims = if level > 0 {
                damage_shards(&mut g, &set, key, level)
            } else {
                Vec::new()
            };
            damaged.push((level, victims));
        }

        for ((key, payload), (level, victims)) in objects.iter().zip(&damaged) {
            if *level <= m {
                // Tolerated damage: byte-identical read, and read-repair
                // must leave every victim holding a digest-valid shard.
                let (bytes, _) = store.load(key, &cost).unwrap_or_else(|e| {
                    panic!("case {case}: {level} of {m} tolerated losses refused {key}: {e}")
                });
                assert_eq!(
                    &bytes, payload,
                    "case {case}: rs({k},{m}) returned wrong bytes for {key}"
                );
                for &r in victims {
                    assert!(
                        matches!(set.node(r).probe(key), Probe::Valid(_)),
                        "case {case}: shard {r} of {key} not repaired after read"
                    );
                }
                healthy_objects += 1;
            } else {
                // Fewer than k shards intact: typed refusal, never bytes.
                match store.load(key, &cost) {
                    Err(StorageError::TooManyShardsLost { intact, needed }) => {
                        assert!(
                            (intact as usize) < k && needed as usize == k,
                            "case {case}: nonsensical shard arithmetic {intact}/{needed}"
                        );
                        lost_objects += 1;
                    }
                    Ok(_) => panic!(
                        "case {case}: {key} lost {level} > m = {m} shards but a read succeeded"
                    ),
                    Err(other) => panic!(
                        "case {case}: expected TooManyShardsLost for {key}, got {other}"
                    ),
                }
            }
        }
    }
    // The sweep actually exercised both sides of the boundary.
    assert!(lost_objects > 0, "adversary never exceeded the coding tolerance");
    assert!(healthy_objects > 0, "adversary never left a decodable object");
}

#[test]
fn node_failstop_within_m_leaves_every_object_readable() {
    // The coarsest adversary: power off whole shard nodes. Up to m dead
    // nodes cost nothing observable but reconstruction work; the
    // (m + 1)-th makes every object refuse with a typed error.
    let cost = CostModel::circa_2005();
    for case in 0..CASES {
        let mut g = Gen::new(94_000 + case);
        let (k, m) = geometry(case);
        let mut store = ErasureStore::fresh(k, m);
        let objects = arb_objects(&mut g);
        for (key, payload) in &objects {
            store.store(key, payload, &cost).unwrap();
        }
        let set = store.replica_set();
        let mut order: Vec<usize> = (0..k + m).collect();
        for i in (1..order.len()).rev() {
            let j = g.range(0, (i + 1) as u64) as usize;
            order.swap(i, j);
        }
        for &r in order.iter().take(m) {
            set.node(r).fail();
        }
        for (key, payload) in &objects {
            let (bytes, _) = store.load(key, &cost).unwrap_or_else(|e| {
                panic!("case {case}: rs({k},{m}) refused {key} with {m} nodes down: {e}")
            });
            assert_eq!(
                &bytes, payload,
                "case {case}: wrong bytes for {key} with {m} nodes down"
            );
        }
        set.node(order[m]).fail();
        let (probe_key, _) = &objects[g.range(0, objects.len() as u64) as usize];
        match store.load(probe_key, &cost) {
            Err(StorageError::TooManyShardsLost { intact, needed }) => {
                assert!(
                    (intact as usize) < k && needed as usize == k,
                    "case {case}: nonsensical shard arithmetic {intact}/{needed}"
                );
            }
            other => panic!(
                "case {case}: {} nodes down must refuse typed, got {other:?}",
                m + 1
            ),
        }
    }
}

#[test]
fn stripe_group_damage_never_bleeds_across_stripes() {
    // EC-striped variant: kill one stripe's shard group past its coding
    // tolerance. Objects routed there refuse typed; every object on the
    // other stripes stays byte-identical.
    let cost = CostModel::circa_2005();
    for case in 0..CASES {
        let mut g = Gen::new(95_000 + case);
        let (k, m) = geometry(case);
        let stripes = [2usize, 3, 4][(case % 3) as usize];
        let mut store = EcStripedStore::fresh(stripes, k, m);
        let objects = arb_objects(&mut g);
        for (key, payload) in &objects {
            store.store(key, payload, &cost).unwrap();
        }
        let set = store.striped_set();
        let dead = g.range(0, stripes as u64) as usize;
        for r in 0..=m {
            set.stripe(dead).node(r).fail();
        }
        for (key, payload) in &objects {
            if set.route(key) == dead {
                match store.load(key, &cost) {
                    Err(StorageError::TooManyShardsLost { intact, needed }) => {
                        assert!(
                            (intact as usize) < k && needed as usize == k,
                            "case {case}: nonsensical shard arithmetic {intact}/{needed}"
                        );
                    }
                    other => panic!(
                        "case {case}: dead stripe {dead} must refuse {key} typed, got {other:?}"
                    ),
                }
            } else {
                let (bytes, _) = store.load(key, &cost).unwrap_or_else(|e| {
                    panic!("case {case}: healthy stripe refused {key}: {e}")
                });
                assert_eq!(
                    &bytes, payload,
                    "case {case}: dead stripe {dead} bled into {key}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Durability regressions: a failed overwrite must never destroy the
// previously committed value (promoted from the PR-9 review scratch
// test, extended over the striped and replicated-batch commit paths).
// ---------------------------------------------------------------------

use ckpt_restart::replica::ReplicatedStore;

#[test]
fn failed_overwrite_under_quorum_loss_preserves_committed_value() {
    // The two-phase commit's reason to exist: when an overwrite cannot
    // reach its write quorum, the store must refuse *and leave the old
    // committed frames untouched* — losing v1 while failing to commit v2
    // would turn a transient outage into data loss.
    let cost = CostModel::circa_2005();
    let mut s = ErasureStore::fresh(4, 2);
    let v1 = vec![7u8; 4096];
    s.store("k", &v1, &cost).unwrap();
    // v1 is committed on all 6 nodes and readable.
    assert_eq!(s.load("k", &cost).unwrap().0, v1);

    // Two shard nodes go down; an overwrite attempt misses quorum (needs 5).
    s.replica_set().node(4).fail();
    s.replica_set().node(5).fail();
    let err = s.store("k", &vec![9u8; 4096], &cost).unwrap_err();
    assert!(matches!(err, StorageError::QuorumLost { .. }));

    // Nodes come back; the old committed value must still be readable.
    s.replica_set().node(4).repair();
    s.replica_set().node(5).repair();
    match s.load("k", &cost) {
        Ok((bytes, _)) => assert_eq!(bytes, v1, "wrong bytes back"),
        Err(e) => panic!("previously committed value lost after failed overwrite: {e}"),
    }
}

#[test]
fn striped_failed_overwrite_preserves_committed_values_per_stripe() {
    // Same invariant through the striped front: knock one stripe's shard
    // group below its write quorum, attempt overwrites everywhere, and
    // require (a) typed refusal without data loss on the dead stripe and
    // (b) untouched success on every other stripe.
    let cost = CostModel::circa_2005();
    for case in 0..CASES {
        let mut g = Gen::new(96_000 + case);
        let (k, m) = geometry(case);
        let stripes = [2usize, 3, 4][(case % 3) as usize];
        let mut store = EcStripedStore::fresh(stripes, k, m);
        let objects = arb_objects(&mut g);
        for (key, payload) in &objects {
            store.store(key, payload, &cost).unwrap();
        }

        // Drop m + 1 nodes of one stripe: reads still decode (k intact),
        // but an overwrite cannot reach its full-group write quorum.
        let set = store.striped_set();
        let dead = g.range(0, stripes as u64) as usize;
        for r in 0..=m {
            set.stripe(dead).node(r).fail();
        }

        for (key, payload) in &objects {
            let overwrite = g.bytes(payload.len().max(1));
            if set.route(key) == dead {
                let err = store.store(key, &overwrite, &cost).unwrap_err();
                assert!(
                    matches!(err, StorageError::QuorumLost { .. }),
                    "case {case}: dead stripe must refuse the overwrite typed, got {err}"
                );
            } else {
                store.store(key, &overwrite, &cost).unwrap_or_else(|e| {
                    panic!("case {case}: healthy stripe refused overwrite of {key}: {e}")
                });
            }
        }

        // The dead stripe's nodes come back: every refused overwrite
        // must have left the original value intact.
        for r in 0..=m {
            set.stripe(dead).node(r).repair();
        }
        for (key, payload) in &objects {
            if set.route(key) == dead {
                let (bytes, _) = store.load(key, &cost).unwrap_or_else(|e| {
                    panic!("case {case}: {key} lost after failed overwrite: {e}")
                });
                assert_eq!(
                    &bytes, payload,
                    "case {case}: failed overwrite destroyed the committed value of {key}"
                );
            }
        }
    }
}

#[test]
fn replicated_failed_batch_preserves_every_committed_value() {
    // The framed multi-object batch is all-or-nothing: if the batch
    // cannot commit (quorum lost mid-flight), *no* object in it may be
    // torn — every key must still read back its previously committed
    // value after the nodes return.
    let cost = CostModel::circa_2005();
    for case in 0..CASES {
        let mut g = Gen::new(97_000 + case);
        let (n, w) = if case.is_multiple_of(2) { (3usize, 2usize) } else { (5, 3) };
        let mut store = ReplicatedStore::fresh(n, w);
        let objects = arb_objects(&mut g);
        let v1: Vec<(&str, &[u8])> = objects
            .iter()
            .map(|(k, p)| (k.as_str(), p.as_slice()))
            .collect();
        store.store_batch(&v1, &cost).unwrap();

        // Lose enough replicas that the write quorum is unreachable.
        let set = store.replica_set();
        for r in 0..=(n - w) {
            set.node(r).fail();
        }
        let overwrites: Vec<(String, Vec<u8>)> = objects
            .iter()
            .map(|(k, p)| (k.clone(), g.bytes(p.len().max(1))))
            .collect();
        let v2: Vec<(&str, &[u8])> = overwrites
            .iter()
            .map(|(k, p)| (k.as_str(), p.as_slice()))
            .collect();
        let err = store.store_batch(&v2, &cost).unwrap_err();
        assert!(
            matches!(err, StorageError::QuorumLost { .. }),
            "case {case}: batch under quorum loss must refuse typed, got {err}"
        );

        for r in 0..=(n - w) {
            set.node(r).repair();
        }
        for (key, payload) in &objects {
            let (bytes, _) = store.load(key, &cost).unwrap_or_else(|e| {
                panic!("case {case}: {key} lost after failed batch: {e}")
            });
            assert_eq!(
                &bytes, payload,
                "case {case}: failed batch tore the committed value of {key}"
            );
        }
    }
}
