//! The exhaustive crash matrix: every mechanism family × every trace-phase
//! fault site × every storage backend × every fault kind, each cell ending
//! in exactly one of {bit-exact restart, typed detection} — never a silent
//! wrong restart, never a panic.
//!
//! The matrix is deterministic (no sampling): the site list comes from a
//! fault-free recording pass per column, so every instrumented site is
//! swept. Skipped cells (inapplicable fault kinds) are logged, not hidden.

use ckpt_cluster::migmatrix::{migration_matrix_cells, MIGRATION_BACKEND, MIGRATION_MECHS};
use ckpt_core::crashpoint::{
    all_configs, run_config, CellOutcome, MatrixReport, BACKENDS, DEDUP_BACKENDS, DEDUP_MECH,
    ERASURE_BACKENDS, ERASURE_MECH, HIBERNATE_BACKENDS, MATRIX_CELLS, REPLICATED_BACKENDS,
    REPLICATION_MECH, STRIPED_BACKENDS, STRIPED_MECH, TRAIT_MECHANISMS,
};

#[test]
fn full_crash_matrix_has_no_violations_and_no_panics() {
    let mut report = MatrixReport::default();
    for cfg in all_configs() {
        let cells = run_config(cfg);
        assert!(
            !cells.is_empty(),
            "{}/{}: recording pass enumerated no fault sites",
            cfg.mechanism,
            cfg.backend
        );
        report.cells.extend(cells);
    }
    // The live-migration tier: the migration path itself swept with the
    // same site-enumeration + arm-every-fault-kind discipline.
    for mech in MIGRATION_MECHS {
        let cells = migration_matrix_cells(mech);
        assert!(
            !cells.is_empty(),
            "{mech}: recording pass enumerated no fault sites"
        );
        report.cells.extend(cells);
    }

    // Log the skipped cells so bounded coverage is visible in CI output.
    for cell in &report.cells {
        if let CellOutcome::Skipped { reason } = &cell.outcome {
            println!("skipped: {}/{} {} [{}] — {reason}", cell.mechanism, cell.backend, cell.site, cell.fault);
        }
    }

    let violations = report.violations();
    assert!(
        violations.is_empty(),
        "matrix violations:\n{}",
        violations
            .iter()
            .map(|c| format!("  {c}"))
            .collect::<Vec<_>>()
            .join("\n")
    );

    // Coverage floor: the cross product actually ran. Every mechanism
    // family appears with every one of its backends, and every fault kind
    // produced at least one concrete (non-skipped) cell somewhere.
    for mech in TRAIT_MECHANISMS {
        for backend in BACKENDS {
            assert!(
                report
                    .cells
                    .iter()
                    .any(|c| c.mechanism == mech && c.backend == backend),
                "no cells for {mech}/{backend}"
            );
        }
    }
    for backend in HIBERNATE_BACKENDS {
        assert!(
            report
                .cells
                .iter()
                .any(|c| c.mechanism == "hibernate" && c.backend == backend),
            "no cells for hibernate/{backend}"
        );
    }
    // Replication tier: both quorum geometries ran against every fault
    // kind, and the per-replica fault sites were actually swept — not just
    // the client-side storage decorator's.
    for backend in REPLICATED_BACKENDS {
        assert!(
            report
                .cells
                .iter()
                .any(|c| c.mechanism == REPLICATION_MECH && c.backend == backend),
            "no cells for {REPLICATION_MECH}/{backend}"
        );
        for fault in ["fail-stop", "transient", "torn-write"] {
            assert!(
                report
                    .cells
                    .iter()
                    .any(|c| c.backend == backend && c.fault == fault),
            "fault kind {fault} missing from the {backend} tier"
            );
        }
        assert!(
            report
                .cells
                .iter()
                .any(|c| c.backend == backend && c.site.starts_with("replica/r")),
            "per-replica fault sites never armed on {backend}"
        );
        assert!(
            report
                .cells
                .iter()
                .any(|c| c.backend == backend && c.site.starts_with("storage/replicated")),
            "client-side fault sites never armed on {backend}"
        );
    }
    // Dedup tier: the content-addressed store ran over both backings, the
    // manifest-commit site was actually armed (the one new crash window
    // dedup introduces), and the inner backend's sites still show through
    // the decorator. Zero violations is already asserted globally above —
    // a torn manifest or missing chunk is always typed detection or a
    // bit-exact older-chain restart, never silent corruption.
    for backend in DEDUP_BACKENDS {
        assert!(
            report
                .cells
                .iter()
                .any(|c| c.mechanism == DEDUP_MECH && c.backend == backend),
            "no cells for {DEDUP_MECH}/{backend}"
        );
        assert!(
            report
                .cells
                .iter()
                .any(|c| c.backend == backend
                    && c.site.contains("cas/commit")
                    && !matches!(c.outcome, CellOutcome::Skipped { .. })),
            "manifest-commit site never armed concretely on {backend}"
        );
        assert!(
            report
                .cells
                .iter()
                .any(|c| c.backend == backend && c.site.starts_with("storage/")),
            "inner-backend fault sites never swept through dedup on {backend}"
        );
    }
    assert!(
        report.cells.iter().any(|c| c.backend == "dedup(replicated(3,2))"
            && c.site.starts_with("replica/r")),
        "per-replica sites never armed under the dedup decorator"
    );
    // Shard-commit tier: single-object stores on the striped pool travel
    // the framed batch-commit path, so every per-stripe
    // `stripe<j>/r<i>/batch` admission was recorded and armed concretely
    // with every applicable fault kind. Zero violations (asserted
    // globally above) means a fault on one stripe never corrupted keys
    // on another, and a torn batch frame was always detected or rolled
    // past — never silently restarted wrong.
    for backend in STRIPED_BACKENDS {
        assert!(
            report
                .cells
                .iter()
                .any(|c| c.mechanism == STRIPED_MECH && c.backend == backend),
            "no cells for {STRIPED_MECH}/{backend}"
        );
        // The scenario checkpoints one lineage, which routes to exactly
        // one stripe by design (whole chains live together); that
        // stripe's per-replica batch sites must have been armed
        // concretely. Cross-stripe isolation under damage is exercised by
        // the stripe property tests, which spread many lineages.
        assert!(
            report.cells.iter().any(|c| c.backend == backend
                && c.site.starts_with("stripe")
                && c.site.contains("/batch")
                && !matches!(c.outcome, CellOutcome::Skipped { .. })),
            "per-stripe batch-commit sites never armed concretely on {backend}"
        );
        assert!(
            report
                .cells
                .iter()
                .any(|c| c.backend == backend && c.site.starts_with("storage/striped")),
            "client-side fault sites never armed on {backend}"
        );
    }
    // Coding tier: both RS geometries ran, every per-shard batch-commit
    // admission was armed concretely (stores travel the framed shard
    // batch path), and the client-side decorator sites show on top. Zero
    // violations (asserted globally above) means a shard lost mid-commit
    // always ended in a quorum rollback or a reconstructing restart —
    // never a silently wrong reassembly.
    for backend in ERASURE_BACKENDS {
        assert!(
            report
                .cells
                .iter()
                .any(|c| c.mechanism == ERASURE_MECH && c.backend == backend),
            "no cells for {ERASURE_MECH}/{backend}"
        );
        assert!(
            report.cells.iter().any(|c| c.backend == backend
                && c.site.starts_with("ec/s")
                && c.site.contains("/batch")
                && !matches!(c.outcome, CellOutcome::Skipped { .. })),
            "per-shard batch-commit sites never armed concretely on {backend}"
        );
        assert!(
            report
                .cells
                .iter()
                .any(|c| c.backend == backend && c.site.starts_with("storage/rs(")),
            "client-side fault sites never armed on {backend}"
        );
        // A single lost shard is inside every geometry's m-loss budget, so
        // the tier must contain reconstructing restarts, not only typed
        // detections.
        assert!(
            report.cells.iter().any(|c| c.backend == backend
                && c.site.starts_with("ec/s")
                && matches!(c.outcome, CellOutcome::Restarted { .. })),
            "{backend}: no shard fault ever ended in a reconstructing restart"
        );
    }
    // Migration tier: both live strategies swept their cutover plus their
    // strategy-specific sites (pre-copy transfer rounds, post-copy demand
    // faults) with every fault kind, and the tier shows both terminal
    // classes — zero-loss survival (clean/transient) and fallback restart
    // from the durable baseline (source lost mid-migration). Zero
    // violations is asserted globally above: no cell may ever resume a
    // guest whose memory differs from the deterministic replay.
    for mech in MIGRATION_MECHS {
        let tier: Vec<_> = report
            .cells
            .iter()
            .filter(|c| c.mechanism == mech && c.backend == MIGRATION_BACKEND)
            .collect();
        assert!(!tier.is_empty(), "no cells for {mech}/{MIGRATION_BACKEND}");
        assert!(
            tier.iter().any(|c| c.site.starts_with("livemig/cutover")),
            "{mech}: cutover site never armed"
        );
        let body_site = if mech == "livemig-precopy" {
            "livemig/round"
        } else {
            "livemig/demand-fault"
        };
        assert!(
            tier.iter().any(|c| c.site.starts_with(body_site)),
            "{mech}: {body_site} sites never armed"
        );
        for fault in ["fail-stop", "transient", "torn-write"] {
            assert!(
                tier.iter().any(|c| c.fault == fault),
                "{mech}: fault kind {fault} missing"
            );
        }
        assert!(
            tier.iter()
                .any(|c| matches!(c.outcome, CellOutcome::Restarted { lost_steps: 0 })),
            "{mech}: no cell ever survived with zero loss"
        );
        assert!(
            tier.iter()
                .any(|c| matches!(c.outcome, CellOutcome::Restarted { lost_steps } if lost_steps > 0)),
            "{mech}: no cell ever exercised the baseline fallback"
        );
    }
    for fault in ["fail-stop", "transient", "torn-write"] {
        assert!(
            report.cells.iter().any(|c| c.fault == fault
                && !matches!(c.outcome, CellOutcome::Skipped { .. })),
            "fault kind {fault} never ran concretely"
        );
    }

    // Both terminal classifications occur: faults after a durable
    // checkpoint roll back bit-exactly; faults before any durable image
    // (or on volatile media) are detected with a typed error.
    assert!(report.restarted() > 0, "no cell ever restarted bit-exactly");
    assert!(report.detected() > 0, "no cell was ever typed-detected");

    // Phase coverage across the matrix: each instrumented phase fired as
    // an armed site in at least one cell.
    for phase in [
        "freeze", "walk", "capture", "compress", "store", "prune", "rearm", "resume",
    ] {
        assert!(
            report
                .cells
                .iter()
                .any(|c| c.site.contains(&format!("/{phase}@"))),
            "phase {phase} never appeared as an armed site"
        );
    }
    // Storage-offset, chain-segment, and restart-side sites all swept too.
    assert!(report.cells.iter().any(|c| c.site.contains("/store@") && c.site.starts_with("storage/")));
    assert!(report.cells.iter().any(|c| c.site.starts_with("chain/seg")));
    assert!(report.cells.iter().any(|c| c.site.contains("restart/restore")));

    // The matrix is deterministic, so its size is a fixed artifact of the
    // instrumentation. `MATRIX_CELLS` is the single source of truth the
    // docs cite; a new site, backend, or mechanism must repin it here
    // rather than letting the documented number drift.
    assert_eq!(
        report.cells.len(),
        MATRIX_CELLS,
        "matrix size changed: repin crashpoint::MATRIX_CELLS and the \
         numbers quoted in EXPERIMENTS.md"
    );

    println!(
        "crash matrix: MATRIX_CELLS = {} — {} restarted, {} detected, {} skipped, {} violations",
        MATRIX_CELLS,
        report.restarted(),
        report.detected(),
        report.skipped(),
        report.violations().len()
    );
}

#[test]
fn survivability_is_a_measured_artifact() {
    // Fail-stop after a completed checkpoint: whether the restart succeeds
    // is decided by the medium's survivability class, and the matrix
    // measures it rather than assuming it.
    use ckpt_core::crashpoint::MatrixConfig;

    // `resume@1` fires after checkpoint #1's image is durable on every
    // process-level mechanism's engine path.
    let restartable = |backend: &'static str| -> bool {
        let cells = run_config(MatrixConfig {
            mechanism: "syscall",
            backend,
        });
        cells
            .iter()
            .filter(|c| c.site.contains("/resume@1") && c.fault == "fail-stop")
            .all(|c| matches!(c.outcome, CellOutcome::Restarted { .. }))
    };
    assert!(restartable("local-disk"), "local disk survives node repair");
    assert!(restartable("remote"), "remote storage survives node loss");
    assert!(restartable("nvram"), "NVRAM survives node repair");

    // Hibernation to RAM (standby) must lose the image across power-down:
    // every fault cell on the volatile medium ends in typed detection.
    let ram_cells = run_config(MatrixConfig {
        mechanism: "hibernate",
        backend: "ram",
    });
    assert!(
        ram_cells
            .iter()
            .filter(|c| !matches!(c.outcome, CellOutcome::Skipped { .. }))
            .all(|c| matches!(c.outcome, CellOutcome::Detected { .. })),
        "volatile RAM standby must never restart after power-down"
    );
    // ...while hibernation to swap survives it bit-exactly when the fault
    // hits after the commit point.
    let swap_cells = run_config(MatrixConfig {
        mechanism: "hibernate",
        backend: "swap",
    });
    assert!(
        swap_cells
            .iter()
            .any(|c| matches!(c.outcome, CellOutcome::Restarted { .. })),
        "swap-backed hibernation must survive power-down"
    );
}
