//! Property tests on the *stored* incremental-chain algebra: random
//! full+incremental chains written through a real backend, with random
//! prunes interleaved, must always materialize to the same image — and a
//! prune that would orphan a later increment must be rejected with a typed
//! error, leaving storage untouched (never silently reordered or repaired).
//!
//! Cases are generated deterministically by [`common::Gen`]; a failing
//! seed reproduces directly.

mod common;

use ckpt_restart::image::{
    CheckpointImage, ImageHeader, ImageKind, PageRecord, PolicyRecord, ProgramRecord, RegsRecord,
    SigRecord,
};
use ckpt_restart::storage::{
    load_latest_chain, prune_before, store_image, ImageStoreError, LocalDisk, StableStorage,
};
use common::Gen;
use simos::cost::CostModel;
use std::collections::BTreeMap;

const CASES: u64 = 48;
const PID: u32 = 7;
const JOB: &str = "prop";

fn mk(seq: u64, parent: u64, kind: ImageKind, pages: Vec<(u64, u8)>) -> CheckpointImage {
    CheckpointImage {
        header: ImageHeader {
            pid: PID,
            seq,
            parent_seq: parent,
            kind,
            taken_at_ns: seq,
            mechanism: "prop".into(),
            node: 0,
        },
        regs: RegsRecord::default(),
        brk: 0,
        work_done: seq,
        policy: PolicyRecord { tag: 0, value: 0 },
        vmas: vec![],
        pages: pages
            .into_iter()
            .map(|(no, fill)| PageRecord::capture(no, &vec![fill; 4096]))
            .collect(),
        fds: vec![],
        files: vec![],
        sig: SigRecord::default(),
        timers: vec![],
        program: ProgramRecord::Vm {
            name: "prop".into(),
            text: vec![0],
        },
    }
}

/// Build a random chain: seq 1 is always Full, later seqs are Full with
/// probability 1/3. Returns (images, kinds by seq).
fn arb_chain(g: &mut Gen) -> Vec<CheckpointImage> {
    let len = g.range(2, 9);
    let mut chain = Vec::new();
    for seq in 1..=len {
        let full = seq == 1 || g.range(0, 3) == 0;
        let pages: Vec<(u64, u8)> = if full {
            (0u64..8).map(|i| (i, g.byte())).collect()
        } else {
            (0..g.range(1, 4)).map(|_| (g.range(0, 8), g.byte())).collect()
        };
        let kind = if full {
            ImageKind::Full
        } else {
            ImageKind::Incremental
        };
        chain.push(mk(seq, seq.saturating_sub(1), kind, pages));
    }
    chain
}

/// The materialized latest state as a naive page-overlay model, starting
/// from the last full image.
fn model_of(chain: &[CheckpointImage]) -> BTreeMap<u64, u8> {
    let last_full = chain
        .iter()
        .rposition(|i| i.header.kind == ImageKind::Full)
        .expect("seq 1 is full");
    let mut model = BTreeMap::new();
    for img in &chain[last_full..] {
        for p in &img.pages {
            model.insert(p.page_no, p.expand().unwrap()[0]);
        }
    }
    model
}

fn materialize(storage: &dyn StableStorage) -> BTreeMap<u64, u8> {
    let cost = CostModel::circa_2005();
    let (img, _) = load_latest_chain(storage, JOB, PID, &cost).expect("latest chain loads");
    img.pages
        .iter()
        .map(|p| (p.page_no, p.expand().unwrap()[0]))
        .collect()
}

#[test]
fn random_chains_with_random_prunes_round_trip() {
    let cost = CostModel::circa_2005();
    for case in 0..CASES {
        let mut g = Gen::new(11_000 + case);
        let chain = arb_chain(&mut g);
        let mut disk = LocalDisk::new(1 << 30);
        for img in &chain {
            store_image(&mut disk, JOB, img, &cost).unwrap();
        }
        let expect = model_of(&chain);
        assert_eq!(materialize(&disk), expect, "case {case}: stored chain diverged");

        // A few random prunes; whatever they do, the materialized latest
        // image must never change.
        let max_seq = chain.len() as u64;
        for round in 0..g.range(1, 4) {
            let keep_from = g.range(1, max_seq + 1);
            let keys_before = disk.list();
            let kind_at = |seq: u64| chain[(seq - 1) as usize].header.kind;
            let first_kept = keys_before
                .iter()
                .filter_map(|k| k.rsplit('/').next())
                .filter_map(|s| s.trim_start_matches("seq").parse::<u64>().ok())
                .filter(|s| *s >= keep_from)
                .min();
            let any_victim = keys_before
                .iter()
                .filter_map(|k| k.rsplit('/').next())
                .filter_map(|s| s.trim_start_matches("seq").parse::<u64>().ok())
                .any(|s| s < keep_from);
            let would_orphan = any_victim
                && matches!(first_kept, Some(s) if kind_at(s) == ImageKind::Incremental);
            let result = prune_before(&mut disk, JOB, PID, keep_from, &cost);
            if would_orphan {
                assert!(
                    matches!(result, Err(ImageStoreError::Chain(_))),
                    "case {case} round {round}: orphaning prune (keep {keep_from}) must be \
                     rejected, got {result:?}"
                );
                assert_eq!(
                    disk.list(),
                    keys_before,
                    "case {case} round {round}: rejected prune must leave storage untouched"
                );
            } else {
                let deleted = result.unwrap_or_else(|e| {
                    panic!("case {case} round {round}: legal prune failed: {e}")
                });
                assert_eq!(
                    deleted,
                    keys_before.len() - disk.list().len(),
                    "case {case} round {round}: deletion count"
                );
            }
            assert_eq!(
                materialize(&disk),
                expect,
                "case {case} round {round}: prune changed the materialized image"
            );
        }
    }
}

#[test]
fn prune_keeping_an_orphan_names_the_dependency() {
    // Deterministic spot check of the typed error's payload.
    let cost = CostModel::circa_2005();
    let mut disk = LocalDisk::new(1 << 30);
    for img in [
        mk(1, 0, ImageKind::Full, vec![(0, 1)]),
        mk(2, 1, ImageKind::Incremental, vec![(1, 2)]),
        mk(3, 2, ImageKind::Incremental, vec![(2, 3)]),
    ] {
        store_image(&mut disk, JOB, &img, &cost).unwrap();
    }
    let err = prune_before(&mut disk, JOB, PID, 2, &cost).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains('2'),
        "error should name the orphaned segment: {msg}"
    );
    assert_eq!(disk.list().len(), 3, "nothing deleted on rejection");
}
