//! Property tests on the image format: round-trip identity, corruption
//! detection, compression reversibility, and incremental-chain algebra.
//!
//! Cases are generated deterministically by [`common::Gen`] — every run
//! covers the same corpus, and a failing seed is directly reproducible.

mod common;

use ckpt_restart::image::{
    decode, decode_page, encode, encode_page, reconstruct, CheckpointImage, FdRecord,
    FileContentRecord, ImageHeader, ImageKind, PageRecord, PolicyRecord, ProgramRecord,
    RegsRecord, SigActionRecord, SigRecord, TimerRecord, VmaRecord,
};
use common::Gen;

const CASES: u64 = 64;

fn arb_page(g: &mut Gen) -> Vec<u8> {
    match g.range(0, 4) {
        0 => vec![0u8; 4096],
        1 => vec![g.byte(); 4096],
        2 => g.bytes(4096),
        _ => {
            let mut v = vec![0u8; 4096];
            let n = g.range(0, 4000) as usize;
            let b = g.byte();
            v[n..n + 64].fill(b);
            v
        }
    }
}

fn arb_image(g: &mut Gen) -> CheckpointImage {
    let pid = g.u64() as u32;
    let seq = g.range(1, 1000);
    let pages: Vec<(u64, Vec<u8>)> = (0..g.range(0, 12))
        .map(|_| (g.range(0, 4096), arb_page(g)))
        .collect();
    let fds: Vec<FdRecord> = (0..g.range(0, 6))
        .map(|_| FdRecord {
            fd: g.range(0, 64) as u32,
            path: g.ascii(12),
            offset: g.range(0, 10_000),
            flags: g.byte(),
            group: g.range(0, 4) as u32,
        })
        .collect();
    let actions: Vec<SigActionRecord> = (0..g.range(0, 5))
        .map(|_| SigActionRecord {
            sig: g.range(1, 40) as u32,
            kind: g.range(0, 6) as u8,
            param: g.u64(),
            non_reentrant: g.flag(),
        })
        .collect();
    let timers: Vec<TimerRecord> = (0..g.range(0, 3))
        .map(|_| TimerRecord {
            in_ns: g.range(0, 1_000_000),
            period_ns: g.range(0, 1_000_000),
            sig: g.range(1, 40) as u32,
        })
        .collect();
    CheckpointImage {
        header: ImageHeader {
            pid,
            seq,
            parent_seq: seq.saturating_sub(1),
            kind: if seq.is_multiple_of(2) {
                ImageKind::Incremental
            } else {
                ImageKind::Full
            },
            taken_at_ns: seq * 17,
            mechanism: "prop".into(),
            node: pid % 16,
        },
        regs: RegsRecord {
            pc: seq * 4,
            gpr: [seq; 16],
        },
        brk: seq * 4096,
        work_done: seq * 3,
        policy: PolicyRecord {
            tag: (seq % 2) as u8,
            value: (seq % 19) as i32,
        },
        vmas: vec![VmaRecord {
            start: 0x40_0000,
            end: 0x40_1000,
            prot: 5,
            kind: 0,
            name: "[text]".into(),
        }],
        pages: pages
            .into_iter()
            .map(|(no, data)| PageRecord::capture(no, &data))
            .collect(),
        fds,
        files: vec![FileContentRecord {
            path: "/tmp/x".into(),
            data: vec![1, 2, 3],
        }],
        sig: SigRecord {
            actions,
            pending: vec![10, 14],
            mask: g.u64(),
            in_handler: (seq % 3) as u32,
            non_reentrant_depth: (seq % 2) as u32,
        },
        timers,
        program: ProgramRecord::Native {
            kind: (seq % 5) as u8,
            mem_bytes: 65536,
            total_steps: 100,
            writes_per_step: 8,
            write_stride_pages: 4,
            seed: seq,
        },
    }
}

#[test]
fn encode_decode_is_identity() {
    for case in 0..CASES {
        let mut g = Gen::new(case);
        let img = arb_image(&mut g);
        let bytes = encode(&img);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, img, "round trip diverged for case {case}");
    }
}

#[test]
fn any_corruption_is_detected_or_decodes_differently() {
    for case in 0..CASES {
        let mut g = Gen::new(1_000 + case);
        let img = arb_image(&mut g);
        let bytes = encode(&img);
        let bit = g.range(0, bytes.len() as u64 * 8) as usize;
        let mut corrupted = bytes.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        // With a CRC this must always be an error, never a silently
        // different image.
        assert!(
            decode(&corrupted).is_err(),
            "case {case}: bit {bit} undetected"
        );
    }
}

#[test]
fn truncation_is_always_detected() {
    for case in 0..CASES {
        let mut g = Gen::new(2_000 + case);
        let img = arb_image(&mut g);
        let bytes = encode(&img);
        let n = g.range(0, bytes.len() as u64) as usize;
        assert!(decode(&bytes[..n]).is_err(), "case {case}: cut at {n}");
    }
}

#[test]
fn page_compression_round_trips() {
    for case in 0..CASES {
        let mut g = Gen::new(3_000 + case);
        let page = arb_page(&mut g);
        let (enc, payload) = encode_page(&page);
        let back = decode_page(enc, &payload, 4096).unwrap();
        assert_eq!(back, page, "page compression diverged for case {case}");
    }
}

#[test]
fn chain_reconstruction_pages_are_last_writer_wins() {
    let mk = |seq: u64, parent: u64, kind: ImageKind, pages: Vec<(u64, u8)>| CheckpointImage {
        header: ImageHeader {
            pid: 1,
            seq,
            parent_seq: parent,
            kind,
            taken_at_ns: seq,
            mechanism: "t".into(),
            node: 0,
        },
        regs: RegsRecord::default(),
        brk: 0,
        work_done: seq,
        policy: PolicyRecord { tag: 0, value: 0 },
        vmas: vec![],
        pages: pages
            .into_iter()
            .map(|(no, fill)| PageRecord::capture(no, &vec![fill; 4096]))
            .collect(),
        fds: vec![],
        files: vec![],
        sig: SigRecord::default(),
        timers: vec![],
        program: ProgramRecord::Vm {
            name: "t".into(),
            text: vec![0],
        },
    };
    for case in 0..CASES {
        let mut g = Gen::new(4_000 + case);
        let base_fill = g.byte();
        // Build full + incrementals and check reconstruct against a naive
        // model (BTreeMap overlay).
        let mut model: std::collections::BTreeMap<u64, u8> =
            (0u64..8).map(|i| (i, base_fill)).collect();
        let mut chain = vec![mk(
            1,
            0,
            ImageKind::Full,
            (0u64..8).map(|i| (i, base_fill)).collect(),
        )];
        for i in 0..g.range(0, 4) {
            let delta: Vec<(u64, u8)> = (0..g.range(1, 4))
                .map(|_| (g.range(0, 8), g.byte()))
                .collect();
            let seq = i + 2;
            for (no, fill) in &delta {
                model.insert(*no, *fill);
            }
            chain.push(mk(seq, seq - 1, ImageKind::Incremental, delta));
        }
        let full = reconstruct(&chain).unwrap();
        let got: std::collections::BTreeMap<u64, u8> = full
            .pages
            .iter()
            .map(|p| (p.page_no, p.expand().unwrap()[0]))
            .collect();
        assert_eq!(got, model, "chain algebra diverged for case {case}");
    }
}
