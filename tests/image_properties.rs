//! Property tests on the image format: round-trip identity, corruption
//! detection, compression reversibility, and incremental-chain algebra.

use ckpt_restart::image::{
    decode, encode, encode_page, decode_page, reconstruct, CheckpointImage, FdRecord,
    FileContentRecord, ImageHeader, ImageKind, PageRecord, PolicyRecord, ProgramRecord,
    RegsRecord, SigActionRecord, SigRecord, TimerRecord, VmaRecord,
};
use proptest::prelude::*;

fn arb_page() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        Just(vec![0u8; 4096]),
        any::<u8>().prop_map(|b| vec![b; 4096]),
        proptest::collection::vec(any::<u8>(), 4096),
        (any::<u8>(), 0usize..4000).prop_map(|(b, n)| {
            let mut v = vec![0u8; 4096];
            v[n..n + 64].fill(b);
            v
        }),
    ]
}

fn arb_image() -> impl Strategy<Value = CheckpointImage> {
    (
        any::<u32>(),
        1u64..1000,
        proptest::collection::vec((0u64..4096, arb_page()), 0..12),
        proptest::collection::vec((0u32..64, ".*", 0u64..10_000, any::<u8>(), 0u32..4), 0..6),
        proptest::collection::vec((1u32..40, 0u8..6, any::<u64>(), any::<bool>()), 0..5),
        any::<u64>(),
        proptest::collection::vec((0u64..1_000_000, 0u64..1_000_000, 1u32..40), 0..3),
    )
        .prop_map(|(pid, seq, pages, fds, actions, mask, timers)| CheckpointImage {
            header: ImageHeader {
                pid,
                seq,
                parent_seq: seq.saturating_sub(1),
                kind: if seq % 2 == 0 {
                    ImageKind::Incremental
                } else {
                    ImageKind::Full
                },
                taken_at_ns: seq * 17,
                mechanism: "prop".into(),
                node: (pid % 16),
            },
            regs: RegsRecord {
                pc: seq * 4,
                gpr: [seq; 16],
            },
            brk: seq * 4096,
            work_done: seq * 3,
            policy: PolicyRecord {
                tag: (seq % 2) as u8,
                value: (seq % 19) as i32,
            },
            vmas: vec![VmaRecord {
                start: 0x40_0000,
                end: 0x40_1000,
                prot: 5,
                kind: 0,
                name: "[text]".into(),
            }],
            pages: pages
                .into_iter()
                .map(|(no, data)| PageRecord::capture(no, &data))
                .collect(),
            fds: fds
                .into_iter()
                .map(|(fd, path, offset, flags, group)| FdRecord {
                    fd,
                    path,
                    offset,
                    flags,
                    group,
                })
                .collect(),
            files: vec![FileContentRecord {
                path: "/tmp/x".into(),
                data: vec![1, 2, 3],
            }],
            sig: SigRecord {
                actions: actions
                    .into_iter()
                    .map(|(sig, kind, param, non_reentrant)| SigActionRecord {
                        sig,
                        kind,
                        param,
                        non_reentrant,
                    })
                    .collect(),
                pending: vec![10, 14],
                mask,
                in_handler: (seq % 3) as u32,
                non_reentrant_depth: (seq % 2) as u32,
            },
            timers: timers
                .into_iter()
                .map(|(in_ns, period_ns, sig)| TimerRecord {
                    in_ns,
                    period_ns,
                    sig,
                })
                .collect(),
            program: ProgramRecord::Native {
                kind: (seq % 5) as u8,
                mem_bytes: 65536,
                total_steps: 100,
                writes_per_step: 8,
                write_stride_pages: 4,
                seed: seq,
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn encode_decode_is_identity(img in arb_image()) {
        let bytes = encode(&img);
        let back = decode(&bytes).unwrap();
        prop_assert_eq!(back, img);
    }

    #[test]
    fn any_corruption_is_detected_or_decodes_differently(
        img in arb_image(),
        flip in any::<proptest::sample::Index>(),
    ) {
        let bytes = encode(&img);
        let bit = flip.index(bytes.len() * 8);
        let mut corrupted = bytes.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        // With a CRC this must always be an error, never a silently
        // different image.
        prop_assert!(decode(&corrupted).is_err(), "bit {} undetected", bit);
    }

    #[test]
    fn truncation_is_always_detected(img in arb_image(), cut in any::<proptest::sample::Index>()) {
        let bytes = encode(&img);
        let n = cut.index(bytes.len());
        prop_assert!(decode(&bytes[..n]).is_err());
    }

    #[test]
    fn page_compression_round_trips(page in arb_page()) {
        let (enc, payload) = encode_page(&page);
        let back = decode_page(enc, &payload, 4096).unwrap();
        prop_assert_eq!(back, page);
    }

    #[test]
    fn chain_reconstruction_pages_are_last_writer_wins(
        base_fill in any::<u8>(),
        deltas in proptest::collection::vec(
            proptest::collection::vec((0u64..8, any::<u8>()), 1..4),
            0..4,
        ),
    ) {
        // Build full + incrementals and check reconstruct against a naive
        // model (BTreeMap overlay).
        let mk = |seq: u64, parent: u64, kind: ImageKind, pages: Vec<(u64, u8)>| {
            CheckpointImage {
                header: ImageHeader {
                    pid: 1,
                    seq,
                    parent_seq: parent,
                    kind,
                    taken_at_ns: seq,
                    mechanism: "t".into(),
                    node: 0,
                },
                regs: RegsRecord::default(),
                brk: 0,
                work_done: seq,
                policy: PolicyRecord { tag: 0, value: 0 },
                vmas: vec![],
                pages: pages
                    .into_iter()
                    .map(|(no, fill)| PageRecord::capture(no, &vec![fill; 4096]))
                    .collect(),
                fds: vec![],
                files: vec![],
                sig: SigRecord::default(),
                timers: vec![],
                program: ProgramRecord::Vm { name: "t".into(), text: vec![0] },
            }
        };
        let mut model: std::collections::BTreeMap<u64, u8> =
            (0u64..8).map(|i| (i, base_fill)).collect();
        let mut chain = vec![mk(
            1,
            0,
            ImageKind::Full,
            (0u64..8).map(|i| (i, base_fill)).collect(),
        )];
        for (i, delta) in deltas.iter().enumerate() {
            let seq = i as u64 + 2;
            for (no, fill) in delta {
                model.insert(*no, *fill);
            }
            chain.push(mk(seq, seq - 1, ImageKind::Incremental, delta.clone()));
        }
        let full = reconstruct(&chain).unwrap();
        let got: std::collections::BTreeMap<u64, u8> = full
            .pages
            .iter()
            .map(|p| (p.page_no, p.expand().unwrap()[0]))
            .collect();
        prop_assert_eq!(got, model);
    }
}
