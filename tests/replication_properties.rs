//! Property tests on quorum-replicated checkpoint chains: any random
//! full+incremental chain written through a [`ReplicatedStore`], then
//! subjected to adversarial per-segment replica damage, must either
//! materialize digest-identically to the undamaged chain (damage within
//! the `N − w` tolerance) or refuse with a typed `QuorumLost` (damage
//! beyond it) — never a silently wrong image, never a panic.
//!
//! Cases are generated deterministically by [`common::Gen`]; a failing
//! seed reproduces directly.

mod common;

use ckpt_restart::image::{
    encode, CheckpointImage, ImageHeader, ImageKind, PageRecord, PolicyRecord, ProgramRecord,
    RegsRecord, SigRecord,
};
use ckpt_restart::replica::{Probe, ReplicatedStore};
use ckpt_restart::storage::{load_latest_valid_chain, store_image, ImageStoreError, StorageError};
use common::Gen;
use simos::cost::CostModel;

const CASES: u64 = 32;
const PID: u32 = 7;
const JOB: &str = "repl-prop";

fn mk(seq: u64, parent: u64, kind: ImageKind, pages: Vec<(u64, u8)>) -> CheckpointImage {
    CheckpointImage {
        header: ImageHeader {
            pid: PID,
            seq,
            parent_seq: parent,
            kind,
            taken_at_ns: seq,
            mechanism: "prop".into(),
            node: 0,
        },
        regs: RegsRecord::default(),
        brk: 0,
        work_done: seq,
        policy: PolicyRecord { tag: 0, value: 0 },
        vmas: vec![],
        pages: pages
            .into_iter()
            .map(|(no, fill)| PageRecord::capture(no, &vec![fill; 4096]))
            .collect(),
        fds: vec![],
        files: vec![],
        sig: SigRecord::default(),
        timers: vec![],
        program: ProgramRecord::Vm {
            name: "prop".into(),
            text: vec![0],
        },
    }
}

/// A random chain: seq 1 is always Full, later seqs are Full with
/// probability 1/3.
fn arb_chain(g: &mut Gen) -> Vec<CheckpointImage> {
    let len = g.range(2, 8);
    let mut chain = Vec::new();
    for seq in 1..=len {
        let full = seq == 1 || g.range(0, 3) == 0;
        let pages: Vec<(u64, u8)> = if full {
            (0u64..6).map(|i| (i, g.byte())).collect()
        } else {
            (0..g.range(1, 4)).map(|_| (g.range(0, 6), g.byte())).collect()
        };
        let kind = if full {
            ImageKind::Full
        } else {
            ImageKind::Incremental
        };
        chain.push(mk(seq, seq.saturating_sub(1), kind, pages));
    }
    chain
}

/// Damage one segment on `k` distinct replicas: each victim either loses
/// the frame outright or keeps a torn prefix.
fn damage_segment(g: &mut Gen, store: &ReplicatedStore, key: &str, k: usize) {
    let set = store.replica_set();
    let n = set.len();
    let mut victims: Vec<usize> = (0..n).collect();
    // Deterministic shuffle, take the first k.
    for i in (1..n).rev() {
        let j = g.range(0, (i + 1) as u64) as usize;
        victims.swap(i, j);
    }
    for &r in victims.iter().take(k) {
        if g.flag() {
            set.node(r).drop_key(key);
        } else {
            set.node(r).corrupt_key(key);
        }
    }
}

fn quorums(case: u64) -> (usize, usize) {
    if case.is_multiple_of(2) {
        (3, 2)
    } else {
        (5, 3)
    }
}

#[test]
fn damage_within_tolerance_materializes_digest_identically() {
    let cost = CostModel::circa_2005();
    let mut total_repairs = 0u64;
    for case in 0..CASES {
        let mut g = Gen::new(23_000 + case);
        let (n, w) = quorums(case);
        let chain = arb_chain(&mut g);
        let mut store = ReplicatedStore::fresh(n, w);
        let mut keys = Vec::new();
        for img in &chain {
            keys.push(store_image(&mut store, JOB, img, &cost).unwrap().key);
        }
        let baseline = encode(
            &load_latest_valid_chain(&store, JOB, PID, &cost, |_| Ok(()))
                .unwrap()
                .image,
        );

        // Adversary: every segment independently loses up to N − w
        // replicas (dropped or torn).
        for key in &keys {
            let k = g.range(0, (n - w + 1) as u64) as usize;
            damage_segment(&mut g, &store, key, k);
        }

        let load = load_latest_valid_chain(&store, JOB, PID, &cost, |_| Ok(()))
            .unwrap_or_else(|e| panic!("case {case}: tolerated damage broke the load: {e}"));
        assert_eq!(
            encode(&load.image),
            baseline,
            "case {case}: damaged-but-tolerated chain diverged"
        );
        assert_eq!(
            load.images_skipped, 0,
            "case {case}: quorum reads must mask tolerated damage, not skip segments"
        );
        total_repairs += store.stats().repairs;
    }
    // Read-repair actually did work somewhere in the sweep (most cases
    // damage at least one segment the winning chain then re-reads).
    assert!(total_repairs > 0, "adversarial sweep never exercised read-repair");
}

#[test]
fn damage_beyond_tolerance_is_quorum_lost_never_a_wrong_answer() {
    let cost = CostModel::circa_2005();
    let mut typed_refusals = 0u64;
    for case in 0..CASES {
        let mut g = Gen::new(37_000 + case);
        let (n, w) = quorums(case);
        let chain = arb_chain(&mut g);
        let mut store = ReplicatedStore::fresh(n, w);
        let mut keys = Vec::new();
        for img in &chain {
            keys.push(store_image(&mut store, JOB, img, &cost).unwrap().key);
        }
        let baseline = encode(
            &load_latest_valid_chain(&store, JOB, PID, &cost, |_| Ok(()))
                .unwrap()
                .image,
        );

        // One random segment loses N − w + 1 replicas: its quorum is gone.
        // (A single damage round always leaves at least w − 1 ≥ 1 intact
        // copies, so the segment stays visible and the read must *notice*
        // the loss — compounding rounds could erase all N copies, which no
        // quorum system can distinguish from "never stored".)
        let victim = g.range(0, keys.len() as u64) as usize;
        damage_segment(&mut g, &store, &keys[victim], n - w + 1);

        match load_latest_valid_chain(&store, JOB, PID, &cost, |_| Ok(())) {
            // Legal only when the lost segment was not needed (older than
            // the newest full image) — and then the bytes must be right.
            Ok(load) => assert_eq!(
                encode(&load.image),
                baseline,
                "case {case}: load past a lost quorum returned wrong bytes"
            ),
            Err(ImageStoreError::Storage(StorageError::QuorumLost { acked, needed })) => {
                assert!(
                    (acked as usize) < w && needed as usize == w,
                    "case {case}: nonsense quorum arithmetic: {acked}/{needed}"
                );
                typed_refusals += 1;
            }
            Err(e) => panic!("case {case}: expected QuorumLost, got {e}"),
        }
    }
    assert!(
        typed_refusals > 0,
        "sweep never hit the typed-refusal path on the random victim"
    );
}

#[test]
fn losing_the_newest_segments_quorum_always_refuses_typed() {
    // The newest segment sits on every winning chain, so killing its
    // quorum can never be sidestepped by fallback.
    let cost = CostModel::circa_2005();
    for case in 0..CASES {
        let mut g = Gen::new(41_000 + case);
        let (n, w) = quorums(case);
        let chain = arb_chain(&mut g);
        let mut store = ReplicatedStore::fresh(n, w);
        let mut keys = Vec::new();
        for img in &chain {
            keys.push(store_image(&mut store, JOB, img, &cost).unwrap().key);
        }
        damage_segment(&mut g, &store, keys.last().unwrap(), n - w + 1);
        let err = load_latest_valid_chain(&store, JOB, PID, &cost, |_| Ok(()))
            .expect_err("newest segment past tolerance must refuse");
        assert!(
            matches!(
                err,
                ImageStoreError::Storage(StorageError::QuorumLost { .. })
            ),
            "case {case}: wrong refusal type: {err}"
        );
    }
}

#[test]
fn read_repair_rebuilds_damaged_replicas_to_intact_frames() {
    let cost = CostModel::circa_2005();
    for case in 0..8 {
        let mut g = Gen::new(51_000 + case);
        let (n, w) = quorums(case);
        let mut store = ReplicatedStore::fresh(n, w);
        let img = mk(1, 0, ImageKind::Full, (0u64..4).map(|i| (i, g.byte())).collect());
        let key = store_image(&mut store, JOB, &img, &cost).unwrap().key;
        damage_segment(&mut g, &store, &key, n - w);
        load_latest_valid_chain(&store, JOB, PID, &cost, |_| Ok(())).unwrap();
        // After one quorum read every reachable replica holds an intact
        // frame again.
        for node in store.replica_set().nodes() {
            match node.probe(&key) {
                Probe::Valid(f) => assert!(f.intact(), "replica {} torn", node.index()),
                other => panic!(
                    "case {case}: replica {} not repaired: {other:?}",
                    node.index()
                ),
            }
        }
    }
}
