//! Cross-crate end-to-end scenarios: the full lifecycle flows a user of
//! the library would run — hibernation across a power cycle, autonomic
//! checkpointing surviving a node loss via remote storage, gang
//! scheduling, and local-vs-remote storage fault coverage.

use ckpt_restart::cluster::{
    Cluster, Coordinator, FailureConfig, Gang, GangScheduler, MpiJob, NodeId,
};
use ckpt_restart::ckpt::autonomic::{self, AutonomicConfig, AutonomicDaemon};
use ckpt_restart::ckpt::mechanism::hibernate::{SoftwareSuspend, SuspendMode};
use ckpt_restart::ckpt::mechanism::kthread::{
    KernelThreadMechanism, KthreadIface, KthreadVariant,
};
use ckpt_restart::ckpt::mechanism::Mechanism;
use ckpt_restart::ckpt::{shared_storage, RestorePid, TrackerKind};
use ckpt_restart::simos::apps::{AppParams, NativeKind};
use ckpt_restart::simos::cost::CostModel;
use ckpt_restart::simos::Kernel;
use ckpt_restart::storage::SwapStore;

#[test]
fn hibernation_survives_a_power_cycle() {
    // Software Suspend: freeze everything, save to swap, power down, boot,
    // resume — all processes continue under their original pids.
    let mut k = Kernel::new(CostModel::circa_2005());
    let mut pids = Vec::new();
    for seed in 0..3u64 {
        let mut p = AppParams::small();
        p.seed = seed;
        p.total_steps = u64::MAX;
        pids.push(k.spawn_native(NativeKind::SparseRandom, p).unwrap());
    }
    k.run_for(30_000_000).unwrap();
    let works: Vec<u64> = pids.iter().map(|p| k.process(*p).unwrap().work_done).collect();

    let swap = shared_storage(SwapStore::new(1 << 32));
    let mut susp = SoftwareSuspend::new(swap.clone());
    let report = susp.hibernate(&mut k, SuspendMode::ToDisk).unwrap();
    assert_eq!(report.processes_saved, 3);
    swap.lock().on_power_down();
    drop(k); // the machine is off

    let mut k2 = Kernel::new(CostModel::circa_2005());
    let restored = susp.resume(&mut k2).unwrap();
    assert_eq!(restored, pids, "original pids restored");
    for (pid, w) in pids.iter().zip(&works) {
        assert_eq!(k2.process(*pid).unwrap().work_done, *w);
    }
    k2.run_for(30_000_000).unwrap();
    assert!(k2.process(pids[0]).unwrap().work_done > works[0]);
}

#[test]
fn autonomic_checkpoints_to_remote_storage_survive_node_loss() {
    // The paper's full "direction forward" story on a cluster: the daemon
    // checkpoints autonomously to remote storage; the node dies; the job
    // restarts on another node from the remote images.
    let mut cluster = Cluster::new(2, CostModel::circa_2005(), FailureConfig::none());
    let remote0 = cluster.nodes[0].remote.clone();
    let pid = {
        let k = cluster.node(NodeId(0)).kernel().unwrap();
        let mut p = AppParams::small();
        p.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::SparseRandom, p).unwrap();
        let cfg = AutonomicConfig {
            initial_interval_ns: 10_000_000,
            adaptive: false, // fixed 10 ms so the 100 ms window sees several rounds
            job: "auto".into(),
            ..Default::default()
        };
        let name = autonomic::install(k, cfg, remote0).unwrap();
        autonomic::register(k, &name, pid).unwrap();
        pid
    };
    cluster.advance(100_000_000);
    let (n_ckpts, saved_work) = {
        let k = cluster.node(NodeId(0)).kernel().unwrap();
        let n = k
            .with_module_mut::<AutonomicDaemon, _>("autonomicd", |d, _| d.outcomes.len())
            .unwrap();
        (n, k.process(pid).unwrap().work_done)
    };
    assert!(n_ckpts >= 3, "daemon should have checkpointed: {n_ckpts}");

    // Node 0 fail-stops. Local state is gone; the remote server has the
    // images. Restart on node 1.
    cluster.inject_failure(NodeId(0));
    let remote1 = cluster.nodes[1].remote.clone();
    let k1 = cluster.node(NodeId(1)).kernel().unwrap();
    let r = ckpt_restart::ckpt::mechanism::restart_from_shared(
        &remote1,
        "auto",
        pid,
        k1,
        RestorePid::Fresh,
    )
    .unwrap();
    assert!(r.work_done > 0);
    assert!(r.work_done <= saved_work);
    k1.run_for(30_000_000).unwrap();
    assert!(k1.process(r.pid).unwrap().work_done > r.work_done);
}

#[test]
fn uclik_full_circle_original_pid_and_files() {
    // UCLiK variant end-to-end: open files with content, checkpoint,
    // restart elsewhere under the original pid with file contents intact.
    let mut k = Kernel::new(CostModel::circa_2005());
    let mut p = AppParams::small();
    p.total_steps = u64::MAX;
    let pid = k.spawn_native(NativeKind::AppendLog, p).unwrap();
    k.do_syscall(
        pid,
        ckpt_restart::simos::syscall::Syscall::Open {
            path: "/tmp/journal".into(),
            flags: ckpt_restart::simos::fs::OpenFlags::RDWR_CREATE,
        },
    )
    .unwrap();
    k.fs.write_at("/tmp/journal", 0, b"entries...").unwrap();
    let mut mech = KernelThreadMechanism::new(
        "uclik",
        "uclik-job",
        shared_storage(ckpt_restart::storage::LocalDisk::new(1 << 32)),
        TrackerKind::KernelPage,
        KthreadIface::Ioctl,
        KthreadVariant {
            restore_original_pid: true,
            save_file_contents: true,
            ..Default::default()
        },
    );
    mech.prepare(&mut k, pid).unwrap();
    k.run_for(20_000_000).unwrap();
    mech.checkpoint(&mut k, pid).unwrap();
    drop(k);
    let mut k2 = Kernel::new(CostModel::circa_2005());
    let r = mech.restart(&mut k2, RestorePid::Fresh).unwrap();
    assert_eq!(r.pid, pid);
    assert_eq!(k2.fs.read_file("/tmp/journal").unwrap(), b"entries...");
}

#[test]
fn gang_scheduling_round_robins_two_jobs() {
    let mut cluster = Cluster::new(2, CostModel::circa_2005(), FailureConfig::none());
    let mk = |cluster: &mut Cluster, name: &str, seed: u64| {
        let mut p = AppParams::small();
        p.seed = seed;
        let job = MpiJob::launch(cluster, name, 2, NativeKind::SparseRandom, p, 4, 16 * 1024)
            .unwrap();
        Gang::new(job, TrackerKind::KernelPage)
    };
    let a = mk(&mut cluster, "A", 1);
    let b = mk(&mut cluster, "B", 2);
    let mut sched = GangScheduler::new(2);
    sched.add(a);
    sched.add(b);
    let order = sched.run(&mut cluster, 6).unwrap();
    assert_eq!(order.len(), 2);
    for gang in &sched.gangs {
        assert_eq!(gang.job.completed_supersteps(), 6);
    }
    assert!(sched.switches >= 2);
}

#[test]
fn coordinated_checkpoint_storage_is_remote_by_construction() {
    // The images a coordinator writes land on the shared remote server,
    // reachable from every node — verify by reading them from the *other*
    // node's client.
    let mut cluster = Cluster::new(2, CostModel::circa_2005(), FailureConfig::none());
    let mut p = AppParams::small();
    p.total_steps = u64::MAX;
    let job = MpiJob::launch(
        &mut cluster,
        "j",
        2,
        NativeKind::SparseRandom,
        p,
        4,
        16 * 1024,
    )
    .unwrap();
    let mut coord = Coordinator::new("remote-proof", TrackerKind::FullOnly);
    coord.checkpoint(&mut cluster, &job).unwrap();
    let keys = cluster.nodes[1].remote.lock().list();
    assert!(
        keys.iter().any(|k| k.starts_with("remote-proof/")),
        "coordinated images must be on the shared remote server: {keys:?}"
    );
}

#[test]
fn remote_store_clients_see_failures_locally_only() {
    let mut cluster = Cluster::new(2, CostModel::circa_2005(), FailureConfig::none());
    let c = CostModel::circa_2005();
    cluster.nodes[0]
        .remote
        .lock()
        .store("x", b"1", &c)
        .unwrap();
    cluster.inject_failure(NodeId(0));
    // Node 1 still reads the object.
    assert_eq!(cluster.nodes[1].remote.lock().load("x", &c).unwrap().0, b"1");
    // Node 0's client cannot (it is down).
    assert!(cluster.nodes[0].remote.lock().load("x", &c).is_err());
}
