//! Property tests on the content-addressed dedup store: any random
//! history of image versions written through a [`DedupStore`] must (a)
//! read back byte-identical — with identical receipts and identical
//! counter trajectories — no matter how wide the chunking pool is, and
//! (b) survive any order of deletions: the refcounted GC may only ever
//! free chunks no surviving manifest references, so every key that is
//! still stored loads bit-exact after every delete, and dropping the last
//! key drains the chunk index to empty (no leaks either).
//!
//! Cases are generated deterministically by [`common::Gen`]; a failing
//! seed reproduces directly.

mod common;

use ckpt_restart::cas::{CasStats, ChunkParams, DedupStore};
use ckpt_restart::par::Pool;
use ckpt_restart::storage::{ImageKey, LocalDisk, StableStorage};
use common::Gen;
use simos::cost::CostModel;
use std::sync::Arc;

const CASES: u64 = 24;

/// A random lineage: version 0 is random bytes; each later version
/// mutates its parent (byte flips, a block rewrite, and sometimes a
/// length change) so histories mix near-duplicate and novel content.
fn arb_history(g: &mut Gen) -> Vec<Vec<u8>> {
    let len = g.range(2, 6) as usize;
    let base_len = g.range(2_000, 60_000) as usize;
    let mut versions = vec![g.bytes(base_len)];
    for _ in 1..len {
        let mut v = versions.last().unwrap().clone();
        for _ in 0..g.range(1, 40) {
            let i = g.range(0, v.len() as u64) as usize;
            v[i] ^= g.byte() | 1;
        }
        if g.flag() {
            let at = g.range(0, v.len() as u64) as usize;
            let n = (g.range(64, 2_048) as usize).min(v.len() - at);
            let block = g.bytes(n);
            v[at..at + n].copy_from_slice(&block);
        }
        match g.range(0, 4) {
            0 => {
                let n = g.range(1, 4_096) as usize;
                let tail = g.bytes(n);
                v.extend(tail);
            }
            1 => v.truncate(v.len() - v.len().min(g.range(1, 2_048) as usize)),
            _ => {}
        }
        versions.push(v);
    }
    versions
}

#[allow(clippy::type_complexity)]
fn store_at_width(
    histories: &[Vec<Vec<u8>>],
    width: usize,
) -> (Vec<(String, u64)>, Vec<(String, Vec<u8>)>, CasStats) {
    let cost = CostModel::circa_2005();
    let mut store = DedupStore::new(Box::new(LocalDisk::new(1 << 30)))
        .with_params(ChunkParams::DEFAULT)
        .with_pool(Arc::new(Pool::new(width)));
    let stats = store.stats_handle();
    let mut receipts = Vec::new();
    let mut loaded = Vec::new();
    for (h, versions) in histories.iter().enumerate() {
        for (seq, v) in versions.iter().enumerate() {
            let key = ImageKey::new(format!("prop/h{h}"), 1, seq as u64).to_string();
            let r = store.store(&key, v, &cost).unwrap();
            receipts.push((key, r.bytes));
        }
    }
    for (h, versions) in histories.iter().enumerate() {
        for seq in 0..versions.len() {
            let key = ImageKey::new(format!("prop/h{h}"), 1, seq as u64).to_string();
            let (bytes, _) = store.load(&key, &cost).unwrap();
            loaded.push((key, bytes));
        }
    }
    (receipts, loaded, stats.snapshot())
}

#[test]
fn round_trip_is_byte_identical_at_every_pool_width() {
    for seed in 0..CASES {
        let mut g = Gen::new(seed);
        let histories: Vec<_> = (0..g.range(1, 4)).map(|_| arb_history(&mut g)).collect();

        let (r1, l1, s1) = store_at_width(&histories, 1);
        // Every version reads back exactly as written (width 1 first).
        let mut want = Vec::new();
        for (h, versions) in histories.iter().enumerate() {
            for (seq, v) in versions.iter().enumerate() {
                let key = ImageKey::new(format!("prop/h{h}"), 1, seq as u64).to_string();
                want.push((key, v.clone()));
            }
        }
        assert_eq!(l1, want, "seed {seed}: width-1 round trip corrupted bytes");

        for width in [4usize, 8] {
            let (r, l, s) = store_at_width(&histories, width);
            assert_eq!(r, r1, "seed {seed}: receipts differ at width {width}");
            assert_eq!(l, l1, "seed {seed}: loads differ at width {width}");
            assert_eq!(
                (s.logical_bytes, s.physical_bytes, s.novel_chunks, s.dup_chunks),
                (s1.logical_bytes, s1.physical_bytes, s1.novel_chunks, s1.dup_chunks),
                "seed {seed}: counters differ at width {width}"
            );
        }
    }
}

#[test]
fn gc_never_frees_a_chunk_a_live_chain_references() {
    let cost = CostModel::circa_2005();
    for seed in 0..CASES {
        let mut g = Gen::new(0x6C_0000 + seed);
        let histories: Vec<_> = (0..g.range(1, 4)).map(|_| arb_history(&mut g)).collect();
        let mut store = DedupStore::new(Box::new(LocalDisk::new(1 << 30)));
        let stats = store.stats_handle();

        let mut live: Vec<(String, Vec<u8>)> = Vec::new();
        for (h, versions) in histories.iter().enumerate() {
            for (seq, v) in versions.iter().enumerate() {
                let key = ImageKey::new(format!("prop/h{h}"), 1, seq as u64).to_string();
                store.store(&key, v, &cost).unwrap();
                live.push((key, v.clone()));
            }
        }

        // Delete in a random order; after each delete every surviving key
        // must still materialize bit-exactly — including delta children
        // whose raw base object was just pruned.
        while !live.is_empty() {
            let victim = g.range(0, live.len() as u64) as usize;
            let (key, _) = live.swap_remove(victim);
            store.delete(&key).unwrap();
            for (k, v) in &live {
                let (bytes, _) = store
                    .load(k, &cost)
                    .unwrap_or_else(|e| panic!("seed {seed}: {k} lost after deleting {key}: {e}"));
                assert_eq!(&bytes, v, "seed {seed}: {k} corrupted after deleting {key}");
            }
        }

        // With no surviving manifest, the refcounted index must drain —
        // GC is exact in both directions (no premature frees, no leaks).
        let s = stats.snapshot();
        assert_eq!(s.live_chunks, 0, "seed {seed}: chunk index leaked");
        assert_eq!(s.live_chunk_bytes, 0, "seed {seed}: chunk bytes leaked");
    }
}
