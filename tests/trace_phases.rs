//! ckpt-trace integration: every mechanism family emits the mandatory
//! phase events (freeze → capture → store → resume) in order, the traced
//! per-phase costs reconcile with the outcomes' end-to-end totals, and a
//! disabled sink records nothing.

use ckpt_restart::ckpt::mechanism::fork_concurrent::ForkConcurrentMechanism;
use ckpt_restart::ckpt::mechanism::hardware::{HardwareMechanism, HwFlavor};
use ckpt_restart::ckpt::mechanism::hibernate::{SoftwareSuspend, SuspendMode};
use ckpt_restart::ckpt::mechanism::ksignal::KernelSignalMechanism;
use ckpt_restart::ckpt::mechanism::kthread::{
    KernelThreadMechanism, KthreadIface, KthreadVariant,
};
use ckpt_restart::ckpt::mechanism::syscall::{SyscallMechanism, SyscallVariant};
use ckpt_restart::ckpt::mechanism::user_level::{Trigger, UserLevelMechanism};
use ckpt_restart::prelude::*;
use ckpt_restart::simos::apps::{AppParams, NativeKind};
use ckpt_restart::simos::cost::CostModel;
use ckpt_restart::simos::signal::Sig;
use ckpt_restart::simos::types::Pid;
use ckpt_restart::storage::{LocalDisk, SwapStore};

const MANDATORY: [Phase; 4] = [Phase::Freeze, Phase::Capture, Phase::Store, Phase::Resume];

fn is_ordered_subsequence(log: &[Phase], want: &[Phase]) -> bool {
    let mut it = want.iter();
    let mut next = it.next();
    for p in log {
        if Some(p) == next {
            next = it.next();
        }
    }
    next.is_none()
}

fn traced_kernel(trace: &TraceHandle) -> (Kernel, Pid) {
    let mut k = Kernel::new(CostModel::circa_2005());
    k.set_trace(trace.clone());
    let mut params = AppParams::small();
    params.mem_bytes = 256 * 1024;
    params.writes_per_step = 8;
    params.total_steps = u64::MAX;
    let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
    k.run_for(20_000_000).unwrap();
    (k, pid)
}

fn disk() -> SharedStorage {
    shared_storage(LocalDisk::new(1 << 30))
}

/// Run one checkpoint of `mech` under a fresh recording sink; return the
/// trace report and the outcome's end-to-end total.
fn checkpoint_traced(mech: &mut dyn Mechanism) -> (TraceReport, u64) {
    let trace = TraceHandle::recording();
    let (mut k, pid) = traced_kernel(&trace);
    mech.prepare(&mut k, pid).unwrap();
    let o = mech.checkpoint(&mut k, pid).unwrap();
    (trace.report(), o.total_ns)
}

fn assert_family(name: &str, report: &TraceReport, total_ns: u64) {
    let seq = report.phase_sequence(name);
    assert!(
        is_ordered_subsequence(&seq, &MANDATORY),
        "{name}: mandatory freeze→capture→store→resume missing from {seq:?}"
    );
    let traced = report.mechanism_total(name);
    let diff = traced.abs_diff(total_ns) as f64 / total_ns.max(1) as f64;
    assert!(
        diff < 0.01,
        "{name}: traced {traced} vs outcome total {total_ns} diverges {:.2}%",
        diff * 100.0
    );
}

#[test]
fn user_level_emits_mandatory_phases() {
    let mut m = UserLevelMechanism::new(
        "libckpt",
        "trace",
        disk(),
        TrackerKind::FullOnly,
        Trigger::Signal { sig: Sig::SIGUSR1 },
    );
    let (rep, total) = checkpoint_traced(&mut m);
    assert_family("libckpt", &rep, total);
}

#[test]
fn syscall_emits_mandatory_phases() {
    let mut m = SyscallMechanism::new(
        "epckpt",
        SyscallVariant::ByPid,
        "trace",
        disk(),
        TrackerKind::FullOnly,
    );
    let (rep, total) = checkpoint_traced(&mut m);
    assert_family("epckpt", &rep, total);
}

#[test]
fn kernel_signal_emits_mandatory_phases() {
    let mut m = KernelSignalMechanism::new("chpox", "trace", disk(), TrackerKind::FullOnly);
    let (rep, total) = checkpoint_traced(&mut m);
    assert_family("chpox", &rep, total);
}

#[test]
fn kernel_thread_emits_mandatory_phases() {
    let mut m = KernelThreadMechanism::new(
        "crak",
        "trace",
        disk(),
        TrackerKind::FullOnly,
        KthreadIface::Ioctl,
        KthreadVariant::default(),
    );
    let (rep, total) = checkpoint_traced(&mut m);
    assert_family("crak", &rep, total);
}

#[test]
fn fork_concurrent_emits_mandatory_phases() {
    let mut m = ForkConcurrentMechanism::new("forkckpt", "trace", disk());
    let (rep, total) = checkpoint_traced(&mut m);
    assert_family("forkckpt", &rep, total);
}

#[test]
fn hardware_emits_mandatory_phases() {
    for flavor in [HwFlavor::Revive, HwFlavor::Safetynet] {
        let mut m = HardwareMechanism::new(flavor, "trace", disk());
        let name = match flavor {
            HwFlavor::Revive => "revive",
            HwFlavor::Safetynet => "safetynet",
        };
        let (rep, total) = checkpoint_traced(&mut m);
        assert_family(name, &rep, total);
    }
}

#[test]
fn hibernate_emits_mandatory_phases() {
    let trace = TraceHandle::recording();
    let (mut k, _pid) = traced_kernel(&trace);
    let mut susp = SoftwareSuspend::new(shared_storage(SwapStore::new(1 << 30)));
    let r = susp.hibernate(&mut k, SuspendMode::ToDisk).unwrap();
    assert_family("swsusp", &trace.report(), r.total_ns);
}

#[test]
fn incremental_checkpoint_traces_walk_and_rearm() {
    let trace = TraceHandle::recording();
    let (mut k, pid) = traced_kernel(&trace);
    let mut m = SyscallMechanism::new(
        "epckpt",
        SyscallVariant::ByPid,
        "trace",
        disk(),
        TrackerKind::KernelPage,
    );
    m.prepare(&mut k, pid).unwrap();
    m.checkpoint(&mut k, pid).unwrap();
    k.run_for(5_000_000).unwrap();
    let o2 = m.checkpoint(&mut k, pid).unwrap();
    assert!(o2.incremental);
    let rep = trace.report();
    let seq = rep.phase_sequence("epckpt");
    assert!(seq.contains(&Phase::Walk), "incremental pass must walk: {seq:?}");
    assert!(seq.contains(&Phase::Rearm), "tracker must re-arm: {seq:?}");
}

#[test]
fn restart_traces_a_restore_phase_and_storage_load() {
    let trace = TraceHandle::recording();
    let (mut k, pid) = traced_kernel(&trace);
    let mut m = KernelSignalMechanism::new("chpox", "trace", disk(), TrackerKind::FullOnly);
    m.prepare(&mut k, pid).unwrap();
    m.checkpoint(&mut k, pid).unwrap();
    let mut k2 = Kernel::new(CostModel::circa_2005());
    k2.set_trace(trace.clone());
    m.restart(&mut k2, RestorePid::Fresh).unwrap();
    let rep = trace.report();
    assert!(rep.phase_sequence("chpox").contains(&Phase::Restore));
    use ckpt_restart::trace::StorageOp;
    assert!(
        rep.storage.keys().any(|(op, _)| *op == StorageOp::Load),
        "restart must record a storage load: {:?}",
        rep.storage.keys().collect::<Vec<_>>()
    );
}

#[test]
fn storage_stores_are_recorded_with_bytes() {
    let trace = TraceHandle::recording();
    let (mut k, pid) = traced_kernel(&trace);
    let mut m = KernelSignalMechanism::new("chpox", "trace", disk(), TrackerKind::FullOnly);
    m.prepare(&mut k, pid).unwrap();
    let o = m.checkpoint(&mut k, pid).unwrap();
    use ckpt_restart::trace::StorageOp;
    let rep = trace.report();
    let agg = rep
        .storage
        .get(&(StorageOp::Store, "local-disk".to_string()))
        .expect("local-disk store recorded");
    assert_eq!(agg.ops, 1);
    assert_eq!(agg.bytes, o.encoded_bytes);
    assert_eq!(agg.stall_ns, o.storage_ns);
}

#[test]
fn disabled_sink_records_nothing_end_to_end() {
    // Default kernels carry the no-op sink: a full checkpoint round leaves
    // zero trace state behind.
    let mut k = Kernel::new(CostModel::circa_2005());
    let mut params = AppParams::small();
    params.total_steps = u64::MAX;
    let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
    k.run_for(20_000_000).unwrap();
    let mut m = KernelThreadMechanism::new(
        "crak",
        "trace",
        disk(),
        TrackerKind::FullOnly,
        KthreadIface::Ioctl,
        KthreadVariant::default(),
    );
    m.prepare(&mut k, pid).unwrap();
    m.checkpoint(&mut k, pid).unwrap();
    assert!(!k.trace.is_enabled());
    assert_eq!(k.trace.events_recorded(), 0);
    assert_eq!(k.trace.report(), TraceReport::default());
}

#[test]
fn disabled_sink_does_not_perturb_virtual_time() {
    // Tracing is a pure observer: the same run traced and untraced lands
    // on the identical virtual instant with identical outcomes.
    let run = |traced: bool| {
        let trace = TraceHandle::recording();
        let mut k = Kernel::new(CostModel::circa_2005());
        if traced {
            k.set_trace(trace.clone());
        }
        let mut params = AppParams::small();
        params.mem_bytes = 256 * 1024;
        params.total_steps = u64::MAX;
        let pid = k.spawn_native(NativeKind::SparseRandom, params).unwrap();
        k.run_for(20_000_000).unwrap();
        let mut m =
            KernelSignalMechanism::new("chpox", "trace", disk(), TrackerKind::FullOnly);
        m.prepare(&mut k, pid).unwrap();
        let o = m.checkpoint(&mut k, pid).unwrap();
        (k.now(), o.total_ns, o.encoded_bytes)
    };
    assert_eq!(run(true), run(false));
}
