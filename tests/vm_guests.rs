//! VM guest programs under checkpoint/restart: register state, stack
//! frames, heap growth (`sbrk`), file descriptors with shared offsets, and
//! in-handler checkpoints — the state categories Section 4.1 enumerates,
//! exercised through real guest code.

use ckpt_restart::ckpt::mechanism::ksignal::KernelSignalMechanism;
use ckpt_restart::ckpt::mechanism::Mechanism;
use ckpt_restart::ckpt::{shared_storage, RestorePid, TrackerKind};
use ckpt_restart::simos::asm::programs;
use ckpt_restart::simos::cost::CostModel;
use ckpt_restart::simos::mem::DATA_BASE;
use ckpt_restart::simos::signal::Sig;
use ckpt_restart::simos::Kernel;
use ckpt_restart::storage::LocalDisk;

fn mech() -> KernelSignalMechanism {
    KernelSignalMechanism::new(
        "chpox",
        "vmtests",
        shared_storage(LocalDisk::new(1 << 30)),
        TrackerKind::FullOnly,
    )
}

fn peek_u64(k: &Kernel, pid: ckpt_restart::simos::Pid, addr: u64) -> u64 {
    let mut b = [0u8; 8];
    k.process(pid).unwrap().mem.peek(addr, &mut b);
    u64::from_le_bytes(b)
}

#[test]
fn file_writer_completes_uninterrupted() {
    let mut k = Kernel::new(CostModel::circa_2005());
    let pid = k.spawn_vm(programs::file_writer(), "fwriter").unwrap();
    let code = k.run_until_exit(pid).unwrap();
    assert_eq!(code, 16, "two 8-byte writes");
    // The file contains the counter twice (offset advanced between writes).
    let data = k.fs.read_file("/tmp/v").unwrap();
    assert_eq!(data.len(), 16);
    assert_eq!(u64::from_le_bytes(data[0..8].try_into().unwrap()), 12345);
    assert_eq!(u64::from_le_bytes(data[8..16].try_into().unwrap()), 12345);
}

#[test]
fn file_writer_survives_checkpoint_between_writes() {
    // Checkpoint after the first write syscall, crash, restore, finish:
    // the fd (and crucially its offset) must be rebuilt so the second
    // write lands at byte 8, not byte 0.
    let mut k = Kernel::new(CostModel::circa_2005());
    let pid = k.spawn_vm(programs::file_writer(), "fwriter").unwrap();
    let mut m = mech();
    m.prepare(&mut k, pid).unwrap();
    // Run until the file has exactly 8 bytes (first write done).
    while k.fs.file_len("/tmp/v").unwrap_or(0) < 8 {
        k.run_for(200).unwrap();
        assert!(!k.process(pid).unwrap().has_exited(), "overshot");
    }
    let mut opts_done = false;
    if k.fs.file_len("/tmp/v").unwrap() == 8 {
        m.checkpoint(&mut k, pid).unwrap();
        opts_done = true;
    }
    assert!(opts_done);
    drop(k);
    let mut k2 = Kernel::new(CostModel::circa_2005());
    let r = m.restart(&mut k2, RestorePid::Fresh).unwrap();
    let code = k2.run_until_exit(r.pid).unwrap();
    assert_eq!(code, 16);
    // NOTE: the image did not carry file contents (save_file_contents is
    // off), so the restored fd points at a recreated empty file with
    // offset 8 — the second write must land at byte 8.
    let data = k2.fs.read_file("/tmp/v").unwrap();
    assert_eq!(data.len(), 16);
    assert_eq!(
        u64::from_le_bytes(data[8..16].try_into().unwrap()),
        12345,
        "offset was not restored"
    );
}

#[test]
fn heap_user_completes_and_checkpoint_preserves_brk() {
    // Reference run.
    let mut kr = Kernel::new(CostModel::circa_2005());
    let rp = kr.spawn_vm(programs::heap_user(), "heap").unwrap();
    assert_eq!(kr.run_until_exit(rp).unwrap(), 0);
    let expected = peek_u64(&kr, rp, DATA_BASE);
    assert_eq!(expected, (0..64).sum::<u64>());

    // Checkpoint mid-fill, restore, finish.
    let mut k = Kernel::new(CostModel::circa_2005());
    let pid = k.spawn_vm(programs::heap_user(), "heap").unwrap();
    let mut m = mech();
    m.prepare(&mut k, pid).unwrap();
    k.run_for(100).unwrap(); // partway through the fill loop
    assert!(!k.process(pid).unwrap().has_exited());
    m.checkpoint(&mut k, pid).unwrap();
    drop(k);
    let mut k2 = Kernel::new(CostModel::circa_2005());
    let r = m.restart(&mut k2, RestorePid::Fresh).unwrap();
    assert_eq!(k2.run_until_exit(r.pid).unwrap(), 0);
    assert_eq!(peek_u64(&k2, r.pid, DATA_BASE), expected);
}

#[test]
fn signal_handler_state_survives_restart() {
    // A guest with an installed handler: checkpoint after the handler has
    // run once; after restore, a new signal must still reach the restored
    // handler (dispositions are part of the image).
    let mut k = Kernel::new(CostModel::circa_2005());
    let pid = k.spawn_vm(programs::signal_loop(10), "sigloop").unwrap();
    let mut m = mech();
    m.prepare(&mut k, pid).unwrap();
    k.run_for(5_000_000).unwrap();
    k.post_signal(pid, Sig(10));
    k.run_for(10_000_000).unwrap();
    assert_eq!(peek_u64(&k, pid, DATA_BASE + 8), 1, "handler ran once");
    m.checkpoint(&mut k, pid).unwrap();
    drop(k);
    let mut k2 = Kernel::new(CostModel::circa_2005());
    let r = m.restart(&mut k2, RestorePid::Fresh).unwrap();
    k2.run_for(5_000_000).unwrap();
    k2.post_signal(r.pid, Sig(10));
    k2.run_for(10_000_000).unwrap();
    assert_eq!(
        peek_u64(&k2, r.pid, DATA_BASE + 8),
        2,
        "restored handler did not run"
    );
    // And the main loop kept counting.
    assert!(peek_u64(&k2, r.pid, DATA_BASE) > 0);
}

#[test]
fn malloc_heavy_guest_checkpoints_inside_nonreentrant_region() {
    // System-level checkpointing does not care that the guest sits inside
    // malloc — no reentrancy hazard is recorded (the kernel is reentrant);
    // the restored guest continues correctly.
    let mut k = Kernel::new(CostModel::circa_2005());
    let pid = k.spawn_vm(programs::malloc_heavy(), "mheavy").unwrap();
    let mut m = mech();
    m.prepare(&mut k, pid).unwrap();
    k.run_for(2_000_000).unwrap();
    let counter_before = peek_u64(&k, pid, DATA_BASE);
    m.checkpoint(&mut k, pid).unwrap();
    assert!(
        k.process(pid).unwrap().sig.hazards.is_empty(),
        "kernel-level checkpoint must not trip user reentrancy hazards"
    );
    drop(k);
    let mut k2 = Kernel::new(CostModel::circa_2005());
    let r = m.restart(&mut k2, RestorePid::Fresh).unwrap();
    // The non-reentrant depth travelled with the image.
    k2.run_for(2_000_000).unwrap();
    assert!(peek_u64(&k2, r.pid, DATA_BASE) > counter_before);
}
