//! Shared deterministic case generator for the property-style integration
//! tests. The workspace builds offline, so instead of proptest the tests
//! drive their invariants with this SplitMix64-based generator: same
//! property checks, explicit seeds, exhaustively reproducible failures.

// Each test target compiles its own copy of this module and uses a
// different subset of the generator's methods.
#![allow(dead_code)]

/// A tiny deterministic generator (SplitMix64).
pub struct Gen {
    state: u64,
}

impl Gen {
    pub fn new(seed: u64) -> Self {
        Gen {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from the half-open range `lo..hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi);
        lo + ((self.u64() as u128 * (hi - lo) as u128) >> 64) as u64
    }

    pub fn byte(&mut self) -> u8 {
        (self.u64() >> 56) as u8
    }

    pub fn flag(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// A printable ASCII string of length 0..max_len.
    pub fn ascii(&mut self, max_len: u64) -> String {
        let n = self.range(0, max_len + 1);
        (0..n)
            .map(|_| (self.range(0x20, 0x7F) as u8) as char)
            .collect()
    }

    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.byte()).collect()
    }
}
