//! Regression test for the SCHED_OTHER saturated-bonus starvation fix.
//!
//! The fork-concurrent saver kthread deliberately runs `SCHED_OTHER` so
//! the save interleaves with the application. Before the tie-break fix,
//! once several equal-priority waiters saturated at `MAX_DYN_BONUS`, the
//! two oldest runqueue entries ping-ponged on the enqueue-order tie-break
//! and everything behind them — including the saver — starved forever;
//! the checkpoint wait then timed out after 60 s of virtual time.
//!
//! Here the saver competes with three saturated CPU-bound processes and
//! must still finish the save within a small multiple of the virtual time
//! an uncontended save takes (round-robin among four equals ⇒ roughly a
//! 4× slowdown, never a stall).

use ckpt_core::mechanism::fork_concurrent::ForkConcurrentMechanism;
use ckpt_core::mechanism::Mechanism;
use ckpt_core::shared_storage;
use ckpt_storage::LocalDisk;
use simos::apps::{AppParams, NativeKind};
use simos::cost::CostModel;
use simos::{Kernel, Pid};

fn saver_checkpoint_ns(competitors: usize) -> u64 {
    let mut k = Kernel::new(CostModel::circa_2005());
    let mut params = AppParams::small();
    params.mem_bytes = 512 * 1024;
    params.total_steps = u64::MAX;
    let target = k
        .spawn_native(NativeKind::DenseSweep, params.clone())
        .unwrap();
    let mut others: Vec<Pid> = Vec::new();
    for _ in 0..competitors {
        others.push(k.spawn_native(NativeKind::DenseSweep, params.clone()).unwrap());
    }
    // Long enough under contention that every SCHED_OTHER waiter's dynamic
    // bonus saturates — the exact regime the tie-break bug starved.
    k.run_for(50_000_000).unwrap();
    let mut mech =
        ForkConcurrentMechanism::new("forkckpt", "starv", shared_storage(LocalDisk::new(1 << 30)));
    mech.prepare(&mut k, target).unwrap();
    let t0 = k.now();
    let o = mech
        .checkpoint(&mut k, target)
        .expect("saver must not starve behind saturated competitors");
    assert!(o.pages_saved > 0);
    // The competitors were never frozen: they kept making progress while
    // the saver interleaved (the concurrency the scheme exists for).
    for p in &others {
        assert!(k.process(*p).unwrap().work_done > 0);
    }
    k.now() - t0
}

#[test]
fn fork_saver_progresses_under_three_saturated_competitors() {
    let alone = saver_checkpoint_ns(0);
    let contended = saver_checkpoint_ns(3);
    assert!(
        contended < alone.saturating_mul(8),
        "fork-concurrent save under 3 competitors took {contended} ns vs {alone} ns \
         uncontended — more than the fair-share bound, the saver is being starved"
    );
}
