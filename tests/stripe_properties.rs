//! Property tests on the striped replica pool: random object sets spread
//! over K independent quorum sets, then subjected to adversarial
//! per-stripe damage. The invariants:
//!
//! * objects on stripes damaged within the `N − w` tolerance read back
//!   byte-identical (quorum reads mask the damage);
//! * objects on stripes damaged beyond tolerance refuse with a typed
//!   [`StorageError::QuorumLost`] — never wrong bytes;
//! * damage on one stripe NEVER bleeds into another: every object routed
//!   to a different stripe stays byte-identical no matter how badly the
//!   victim stripe is mauled.
//!
//! Cases are generated deterministically by [`common::Gen`]; a failing
//! seed reproduces directly.

mod common;

use ckpt_restart::replica::StripedStore;
use ckpt_restart::storage::{StableStorage, StorageError};
use common::Gen;
use simos::cost::CostModel;

const CASES: u64 = 24;

fn geometry(case: u64) -> (usize, usize, usize) {
    let stripes = [2usize, 3, 4][(case % 3) as usize];
    let (n, w) = if case.is_multiple_of(2) { (3, 2) } else { (5, 3) };
    (stripes, n, w)
}

/// Random object set: distinct keys (plain object keys and image-style
/// lineage keys both appear) with random payloads.
fn arb_objects(g: &mut Gen) -> Vec<(String, Vec<u8>)> {
    let count = g.range(6, 17) as usize;
    (0..count)
        .map(|i| {
            let key = if g.flag() {
                format!("job{}/pid{}/seq{:08}", g.range(0, 3), i, g.range(1, 5))
            } else {
                format!("obj/{i}/{}", g.range(0, 1_000_000))
            };
            let len = g.range(1, 2048) as usize;
            (key, g.bytes(len))
        })
        .collect()
}

/// Damage `k` distinct replicas of `key`'s frame on one stripe: each
/// victim either loses the frame outright or keeps a corrupted copy.
fn damage_on_stripe(
    g: &mut Gen,
    store: &StripedStore,
    stripe: usize,
    key: &str,
    k: usize,
) {
    let set = store.striped_set().stripe(stripe);
    let n = set.len();
    let mut victims: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = g.range(0, (i + 1) as u64) as usize;
        victims.swap(i, j);
    }
    for &r in victims.iter().take(k) {
        if g.flag() {
            set.node(r).drop_key(key);
        } else {
            set.node(r).corrupt_key(key);
        }
    }
}

#[test]
fn per_stripe_damage_is_contained_and_typed() {
    let cost = CostModel::circa_2005();
    let mut lost_objects = 0u64;
    let mut healthy_objects = 0u64;
    for case in 0..CASES {
        let mut g = Gen::new(61_000 + case);
        let (stripes, n, w) = geometry(case);
        let mut store = StripedStore::fresh(stripes, n, w);
        let objects = arb_objects(&mut g);
        // Mix the two commit paths: single stores and one framed batch.
        let (head, tail) = objects.split_at(objects.len() / 2);
        for (key, payload) in head {
            store.store(key, payload, &cost).unwrap();
        }
        if !tail.is_empty() {
            let batch: Vec<(&str, &[u8])> = tail
                .iter()
                .map(|(k, p)| (k.as_str(), p.as_slice()))
                .collect();
            store.store_batch(&batch, &cost).unwrap();
        }

        // Adversary: each stripe independently draws a damage level —
        // within tolerance (0..=N−w) or exactly one past it (quorum
        // gone, but at least w−1 ≥ 1 copies stay visible so the read
        // must *notice* the loss rather than see an empty stripe).
        let set = store.striped_set();
        let levels: Vec<usize> = (0..stripes)
            .map(|_| g.range(0, (n - w + 2) as u64) as usize)
            .collect();
        for (key, _) in &objects {
            let j = set.route(key);
            if levels[j] > 0 {
                damage_on_stripe(&mut g, &store, j, key, levels[j]);
            }
        }

        for (key, payload) in &objects {
            let j = set.route(key);
            if levels[j] <= n - w {
                // Healthy or tolerated stripe: byte-identical read, no
                // cross-stripe bleed from the mauled stripes.
                let (bytes, _) = store.load(key, &cost).unwrap_or_else(|e| {
                    panic!("case {case}: tolerated stripe {j} refused {key}: {e}")
                });
                assert_eq!(
                    &bytes, payload,
                    "case {case}: stripe {j} returned wrong bytes for {key}"
                );
                healthy_objects += 1;
            } else {
                // Quorum gone on this stripe: typed refusal, never bytes.
                match store.load(key, &cost) {
                    Err(StorageError::QuorumLost { acked, needed }) => {
                        assert!(
                            (acked as usize) < w && needed as usize == w,
                            "case {case}: nonsensical quorum arithmetic {acked}/{needed}"
                        );
                        lost_objects += 1;
                    }
                    Ok(_) => panic!(
                        "case {case}: stripe {j} lost its quorum for {key} but a read succeeded"
                    ),
                    Err(other) => panic!(
                        "case {case}: expected QuorumLost for {key}, got {other}"
                    ),
                }
            }
        }
    }
    // The sweep actually exercised both sides of the boundary.
    assert!(lost_objects > 0, "adversary never broke a stripe's quorum");
    assert!(healthy_objects > 0, "adversary never left a readable stripe");
}

#[test]
fn whole_stripe_failure_leaves_other_stripes_fully_readable() {
    // The coarsest adversary: power off every replica of one stripe.
    // Every object routed elsewhere stays byte-identical; every object
    // on the dead stripe refuses with a typed error.
    let cost = CostModel::circa_2005();
    for case in 0..CASES {
        let mut g = Gen::new(87_000 + case);
        let (stripes, n, w) = geometry(case);
        let mut store = StripedStore::fresh(stripes, n, w);
        let objects = arb_objects(&mut g);
        for (key, payload) in &objects {
            store.store(key, payload, &cost).unwrap();
        }
        let set = store.striped_set();
        let dead = g.range(0, stripes as u64) as usize;
        for r in 0..n {
            set.stripe(dead).node(r).fail();
        }
        for (key, payload) in &objects {
            if set.route(key) == dead {
                assert!(
                    store.load(key, &cost).is_err(),
                    "case {case}: read from the dead stripe succeeded for {key}"
                );
            } else {
                let (bytes, _) = store.load(key, &cost).unwrap_or_else(|e| {
                    panic!("case {case}: healthy stripe refused {key}: {e}")
                });
                assert_eq!(
                    &bytes, payload,
                    "case {case}: dead stripe {dead} bled into {key}"
                );
            }
        }
    }
}
