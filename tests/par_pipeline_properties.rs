//! Property tests for the parallel checkpoint pipeline: at every pool
//! width the encoded image bytes must be identical to the width-1 (exact
//! serial) path, both for randomized in-memory images and for full and
//! incremental captures of randomized live address spaces.
//!
//! Cases are generated deterministically by [`common::Gen`] — every run
//! covers the same corpus, and a failing seed is directly reproducible.

mod common;

use std::sync::Arc;

use ckpt_restart::ckpt::capture::{capture_image, CaptureOptions};
use ckpt_restart::ckpt::tracker::{Tracker, TrackerKind};
use ckpt_restart::image::{
    encode, encode_with_pool, CheckpointImage, ImageHeader, ImageKind, PageRecord, PolicyRecord,
    ProgramRecord, RegsRecord, SigRecord,
};
use ckpt_restart::par::Pool;
use ckpt_restart::simos::apps::{AppParams, NativeKind};
use ckpt_restart::simos::cost::CostModel;
use ckpt_restart::simos::Kernel;
use common::Gen;

const WIDTHS: [usize; 3] = [2, 4, 8];

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A page drawn from the distributions the codec branches on: all-zero
/// (Zero encoding), constant (extreme RLE), random (incompressible Raw),
/// and mostly-zero with a dense island (mid-bail territory).
fn arb_page(g: &mut Gen) -> Vec<u8> {
    match g.range(0, 4) {
        0 => vec![0u8; 4096],
        1 => vec![g.byte(); 4096],
        2 => g.bytes(4096),
        _ => {
            let mut v = vec![0u8; 4096];
            let n = g.range(0, 4000) as usize;
            v[n..n + 64].fill(g.byte());
            v
        }
    }
}

/// A randomized image whose page payload can exceed the parallel-CRC
/// chunk size, so wide pools genuinely split the trailer checksum.
fn arb_image(g: &mut Gen) -> CheckpointImage {
    let seq = g.range(1, 500);
    let pages: Vec<PageRecord> = (0..g.range(0, 200))
        .map(|_| PageRecord::capture(g.range(0, 1 << 20), &arb_page(g)))
        .collect();
    CheckpointImage {
        header: ImageHeader {
            pid: g.u64() as u32,
            seq,
            parent_seq: seq - 1,
            kind: if seq.is_multiple_of(2) {
                ImageKind::Incremental
            } else {
                ImageKind::Full
            },
            taken_at_ns: seq * 13,
            mechanism: "par-prop".into(),
            node: (seq % 8) as u32,
        },
        regs: RegsRecord {
            pc: seq * 4,
            gpr: [seq; 16],
        },
        brk: seq * 4096,
        work_done: seq,
        policy: PolicyRecord {
            tag: (seq % 2) as u8,
            value: (seq % 23) as i32,
        },
        vmas: Vec::new(),
        pages,
        fds: Vec::new(),
        files: Vec::new(),
        sig: SigRecord::default(),
        timers: Vec::new(),
        program: ProgramRecord::Native {
            kind: (seq % 5) as u8,
            mem_bytes: 65536,
            total_steps: 100,
            writes_per_step: 8,
            write_stride_pages: 4,
            seed: seq,
        },
    }
}

#[test]
fn pooled_encode_is_byte_identical_on_random_images() {
    for case in 0..48u64 {
        let mut g = Gen::new(0x7A11 + case);
        let img = arb_image(&mut g);
        let serial = encode(&img);
        let one = encode_with_pool(&img, &Pool::new(1));
        assert_eq!(one, serial, "case {case}: width 1 is not the serial path");
        for w in WIDTHS {
            let par = encode_with_pool(&img, &Pool::new(w));
            assert_eq!(par, serial, "case {case} width {w}: bytes diverged");
        }
    }
}

fn spawn_random_process(g: &mut Gen) -> (Kernel, ckpt_restart::simos::types::Pid) {
    let kind = match g.range(0, 5) {
        0 => NativeKind::SparseRandom,
        1 => NativeKind::DenseSweep,
        2 => NativeKind::AppendLog,
        3 => NativeKind::Stencil2D,
        _ => NativeKind::ReadMostly,
    };
    let mut params = AppParams::small();
    params.mem_bytes = 128 * 1024 + g.range(0, 16) * 64 * 1024;
    params.writes_per_step = 1 + g.range(0, 16);
    params.total_steps = u64::MAX;
    let mut k = Kernel::new(CostModel::circa_2005());
    let pid = k.spawn_native(kind, params).expect("spawn");
    let warmup = 1_000_000 + g.range(0, 8) * 500_000;
    k.run_for(warmup).unwrap();
    (k, pid)
}

/// Capture with `opts` at width 1 and at every wider pool; all variants
/// must produce the same image struct and the same encoded bytes (the
/// header timestamp is normalized — capturing repeatedly advances the
/// virtual clock via the memcpy charge).
fn assert_capture_width_invariant(
    k: &mut Kernel,
    pid: ckpt_restart::simos::types::Pid,
    opts: &CaptureOptions,
    label: &str,
) {
    let serial = capture_image(k, pid, opts).unwrap();
    let serial_bytes = encode(&serial);
    let digest = fnv1a64(&serial_bytes);
    for w in WIDTHS {
        let mut o = opts.clone();
        o.encode_pool = Some(Arc::new(Pool::new(w)));
        let mut pooled = capture_image(k, pid, &o).unwrap();
        pooled.header.taken_at_ns = serial.header.taken_at_ns;
        assert_eq!(pooled, serial, "{label} width {w}: image struct diverged");
        let pooled_bytes = encode(&pooled);
        assert_eq!(
            fnv1a64(&pooled_bytes),
            digest,
            "{label} width {w}: image digest diverged"
        );
        assert_eq!(pooled_bytes, serial_bytes, "{label} width {w}: bytes diverged");
    }
}

/// Replicated commits are width-invariant: the quorum protocol resolves
/// admission, faults, and backoff sequentially on the caller, so only
/// pure payload copies ride the pool — at every width the manifests, the
/// receipts, and the bytes on every replica must be identical.
#[test]
fn replicated_commits_are_width_invariant() {
    use ckpt_restart::replica::{Probe, ReplicaConfig, ReplicaSet, ReplicatedStore};
    use ckpt_restart::storage::{ReplicaManifest, StableStorage};

    let cost = CostModel::circa_2005();
    for case in 0..12u64 {
        let commit_all = |width: usize| -> (Vec<ReplicaManifest>, Vec<u64>, Vec<u64>) {
            let mut g = Gen::new(0x5E7 + case);
            let (n, w) = if case % 2 == 0 { (3, 2) } else { (5, 3) };
            let mut store = ReplicatedStore::new(ReplicaSet::new(n), ReplicaConfig::new(n, w))
                .with_pool(Arc::new(Pool::new(width)));
            // A few commits, some through queued transient rejections, one
            // overwrite of an existing key.
            let mut manifests = Vec::new();
            let mut receipts = Vec::new();
            for i in 0..4u64 {
                let key = format!("w-inv/k{}", i % 3);
                let len = 1024 + g.range(0, 8192) as usize;
                let data = g.bytes(len);
                if g.flag() {
                    store.replica_set().node(g.range(0, n as u64) as usize)
                        .inject_transients(1 + g.range(0, 2) as u32);
                }
                let r = store.store(&key, &data, &cost).unwrap();
                receipts.push(r.time_ns);
                manifests.push(store.replica_manifest(&key).unwrap());
            }
            // Digest of every frame on every replica, in replica order.
            let frames: Vec<u64> = store
                .replica_set()
                .nodes()
                .iter()
                .flat_map(|node| {
                    node.keys().into_iter().map(|k| match node.probe(&k) {
                        Probe::Valid(f) => fnv1a64(&f.data) ^ f.version,
                        other => panic!("unexpected frame state: {other:?}"),
                    })
                })
                .collect();
            (manifests, receipts, frames)
        };
        let baseline = commit_all(1);
        for w in [4usize, 8] {
            assert_eq!(
                commit_all(w),
                baseline,
                "case {case} width {w}: replicated commit diverged"
            );
        }
    }
}

#[test]
fn pooled_capture_matches_serial_on_random_address_spaces() {
    for case in 0..12u64 {
        let mut g = Gen::new(0xCAF7 + case);
        let (mut k, pid) = spawn_random_process(&mut g);

        // Full capture of the randomized address space.
        k.freeze_process(pid).unwrap();
        assert_capture_width_invariant(
            &mut k,
            pid,
            &CaptureOptions::full("par-prop", 1),
            &format!("case {case} full"),
        );

        // Incremental capture of the dirty set accumulated after the full.
        let mut tracker = Tracker::new(TrackerKind::KernelPage);
        tracker.arm(&mut k, pid).unwrap();
        k.thaw_process(pid).unwrap();
        let run = 200_000 + g.range(0, 8) * 200_000;
        k.run_for(run).unwrap();
        k.freeze_process(pid).unwrap();
        let dirty = tracker.collect(&mut k, pid).unwrap().pages;
        assert_capture_width_invariant(
            &mut k,
            pid,
            &CaptureOptions::incremental("par-prop", 2, 1, dirty),
            &format!("case {case} incremental"),
        );
    }
}
