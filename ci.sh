#!/usr/bin/env bash
# The CI gate: build, test, lint. Run locally before pushing; the GitHub
# Actions workflow (.github/workflows/ci.yml) runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")"

echo '== cargo build --release =='
cargo build --release --workspace

echo '== cargo test -q =='
cargo test -q --workspace

echo '== crash-matrix gate (full cross product, deterministic, <60s) =='
# Re-runs the exhaustive fault-injection matrix on its own with a hard
# wall-clock ceiling: the matrix must stay cheap enough to never be
# sampled or skipped in CI. (Binaries are already built by the test step,
# so the 60 s budget is all matrix.)
timeout 60 cargo test -q -p ckpt-restart --test crash_matrix -- --nocapture \
    | grep -E 'crash matrix:|skipped:' | tail -20

echo '== replication gate: quorum properties + pinned report =='
# The quorum-replication tier gets its own named gate so a regression
# reads as "replication broke", not as a generic workspace-test failure:
# randomized adversarial damage must stay digest-identical within the
# N−w tolerance (and typed-QuorumLost beyond it), and the `report
# replication` output is FNV-pinned by the golden test.
cargo test -q -p ckpt-restart --test replication_properties
cargo test -q -p ckpt-bench --test golden_c12

echo '== dedup gate: chunk-store properties + pinned report + ratio floor =='
# The content-addressed dedup tier gets its own named gate: random image
# histories must round-trip byte-identically at every pool width and the
# refcounted GC must never free a live-referenced chunk; the `report
# dedup` output is FNV-pinned by the golden test; and the co-scheduled
# identical-guest sweep must keep deduplicating across processes — the
# floor catches a chunker or digest regression that silently degrades
# sharing without corrupting bytes.
cargo test -q -p ckpt-restart --test dedup_properties
cargo test -q -p ckpt-bench --test golden_c13
DEDUP_RATIO=$(./target/release/report c13 | awk -F': ' '/cross-process dedup ratio at n=8/ {print $2}' | tr -d 'x')
echo "cross-process dedup ratio at n=8: ${DEDUP_RATIO}x (floor 2x)"
awk -v r="$DEDUP_RATIO" 'BEGIN { exit !(r > 2.0) }' || {
    echo "FAIL: cross-process dedup ratio ${DEDUP_RATIO}x <= 2x — chunking no longer shares identical guests"
    exit 1
}

echo '== shard gate: striped-pool properties + protocol crash sweep + pinned report =='
# The sharded control plane gets its own named gate: adversarial
# per-stripe damage must stay byte-identical on healthy stripes and
# typed-QuorumLost on broken ones (never cross-stripe corruption); every
# shard-commit and root-commit protocol faultpoint must recover
# state-identical to a failure-free run; and the `report c14` scale
# sweep (1k–10k nodes) is FNV-pinned and pool-width-invariant by the
# golden test.
cargo test -q -p ckpt-restart --test stripe_properties
cargo test -q -p ckpt-restart --test shard_crash
cargo test -q -p ckpt-bench --test golden_c14

echo '== migration gate: live-migration properties + crash tier + pinned report + downtime ceiling =='
# The live-migration tier gets its own named gate: randomized dirty-rate
# schedules must either converge within the round cap or return the typed
# divergence error with the source intact; migrated guests must be
# bit-identical across the app zoo at every pool width; the migration
# crash tier (every livemig faultpoint x fault kind) must end in
# zero-loss completion, typed fallback, or typed abort — never silent
# corruption; and the `report c15` downtime table is FNV-pinned, with a
# hard ceiling on the slowest guest's post-copy downtime.
cargo test -q -p ckpt-restart --test livemig_properties
cargo test -q -p ckpt-bench --test golden_c15
POST_DT=$(./target/release/report c15 | awk -F': ' '/worst-case post-copy downtime/ {print $2}' | awk '{print $1}')
echo "worst-case post-copy downtime: ${POST_DT} us (ceiling 100 us)"
awk -v d="$POST_DT" 'BEGIN { exit !(d < 100.0) }' || {
    echo "FAIL: slowest-guest post-copy downtime ${POST_DT} us >= 100 us — minimal-image window regressed"
    exit 1
}

echo '== erasure gate: shard-damage properties + pinned report + commit-byte floor =='
# The erasure-coded tier gets its own named gate: adversarial per-object
# shard damage (random drop/corrupt mixes on both geometries) must read
# byte-identical within the m-loss tolerance — with every victim shard
# repaired digest-valid — and refuse typed-TooManyShardsLost beyond it,
# never cross-stripe bleed; the `report c16` output is FNV-pinned and
# pool-width-invariant by the golden test; and the coded commit path
# must keep the bandwidth win it exists for — RS(4,2) at or under 0.55x
# the replica-ingested bytes of replication(3,2) on identical lineages.
cargo test -q -p ckpt-restart --test erasure_properties
cargo test -q -p ckpt-bench --test golden_c16
EC_RATIO=$(./target/release/report c16 | awk -F': ' '/gate: rs\(4,2\) commit bytes vs replicated\(3,2\)/ {print $3}' | tr -d 'x')
echo "rs(4,2) commit bytes vs replicated(3,2): ${EC_RATIO}x (floor 0.55x)"
awk -v r="$EC_RATIO" 'BEGIN { exit !(r <= 0.55) }' || {
    echo "FAIL: rs(4,2) commit bytes ${EC_RATIO}x > 0.55x of replication(3,2) — coding no longer pays for itself"
    exit 1
}

echo '== cargo clippy -- -D warnings =='
cargo clippy --workspace --all-targets -- -D warnings

echo '== perf gate: report timings =='
# Writes BENCH_report.json (archived as a workflow artifact). The headline
# experiment C7a ran 33 s before the software-TLB fast path and ~1 s after;
# the 20 s ceiling is generous slack for slow runners while still catching
# a translation-cache regression.
./target/release/report timings
C7A_WALL=$(grep '"c7a_cluster_mechanistic"' BENCH_report.json | awk -F'"wall_s": ' '{print $2}' | tr -d '},')
echo "c7a wall-clock: ${C7A_WALL}s (ceiling 20s)"
awk -v w="$C7A_WALL" 'BEGIN { exit !(w < 20.0) }' || {
    echo "FAIL: c7a_cluster_mechanistic took ${C7A_WALL}s (> 20s) — software-TLB regression?"
    exit 1
}

# Suite-total gate. The parallel checkpoint pipeline fans the experiment
# suite out on the worker pool, so on real CI hardware (>= 4 cores) the
# whole suite must finish within 4.5 s of summed wall-clock (3.5 s before
# C15 joined the timed suite; its ~0.6 s wire simulation is serial, so
# the ceiling moves by the full cost); narrow hosts fall back to a serial
# ceiling (the suite ran ~10.3 s single-core when the gate was last
# calibrated, so 20 s is slow-runner slack, same policy as the c7a gate).
# The c14 scale sweep's wall-clock delta is printed on every run (not
# just on failure): it is the one experiment whose cost scales with the
# simulated node count, so drift shows up here first.
C14_WALL=$(grep '"c14_shard"' BENCH_report.json | awk -F'"wall_s": ' '{print $2}' | tr -d '},')
C14_DELTA=$(awk -v w="$C14_WALL" 'BEGIN { printf "%+.3f", w - 0.516 }')
echo "c14_shard wall-clock: ${C14_WALL}s (baseline 0.516s, delta ${C14_DELTA}s)"

if [ "$(nproc)" -ge 4 ]; then TOTAL_CEILING=4.5; else TOTAL_CEILING=20; fi
TOTAL_WALL=$(grep '"total_wall_s"' BENCH_report.json | awk -F': ' '{print $2}' | tr -d ' ')
echo "suite total wall-clock: ${TOTAL_WALL}s (ceiling ${TOTAL_CEILING}s on $(nproc) cores)"
awk -v w="$TOTAL_WALL" -v c="$TOTAL_CEILING" 'BEGIN { exit !(w < c) }' || {
    echo "FAIL: experiment suite took ${TOTAL_WALL}s (> ${TOTAL_CEILING}s)"
    echo "per-experiment wall_s vs the single-core baseline in EXPERIMENTS.md:"
    # Baseline column: single-core serial-path measurements from when the
    # gate was set, so the offending experiment is visible in CI output.
    baseline_wall() {
        case "$1" in
            table1|figure1|c3b_omission) echo 0.000 ;;
            c1_gather)                   echo 0.066 ;;
            c2_incremental)              echo 0.105 ;;
            c3_blocksize)                echo 0.056 ;;
            c4_mechanisms)               echo 1.268 ;;
            c5_fork)                     echo 0.260 ;;
            c6_storage)                  echo 0.089 ;;
            c7a_cluster_mechanistic)     echo 1.794 ;;
            c7b_cluster_scale)           echo 1.961 ;;
            c8_migration)                echo 0.099 ;;
            c9_batch_vs_autonomic)       echo 1.192 ;;
            c10_sensitivity)             echo 0.445 ;;
            trace)                       echo 0.584 ;;
            c12_replication)             echo 0.054 ;;
            c13_dedup)                   echo 0.124 ;;
            c14_shard)                   echo 0.516 ;;
            c15_livemig)                 echo 0.815 ;;
            c16_erasure)                 echo 0.178 ;;
            *)                           echo 0.000 ;;
        esac
    }
    grep '"name"' BENCH_report.json | while read -r line; do
        name=$(echo "$line" | awk -F'"name": "' '{print $2}' | awk -F'"' '{print $1}')
        wall=$(echo "$line" | awk -F'"wall_s": ' '{print $2}' | tr -d '},')
        base=$(baseline_wall "$name")
        delta=$(awk -v w="$wall" -v b="$base" 'BEGIN { printf "%+.3f", w - b }')
        echo "  ${name}: ${wall}s (baseline ${base}s, delta ${delta}s)"
    done
    exit 1
}

echo '== sweep gate: canonical artifacts + structural goldens + per-plan perf deltas =='
# The sweep engine's determinism contract — same plan + seed gives
# byte-identical canonical JSON at any pool width and any job submission
# order — is enforced by the property tests (they re-run `report sweep`
# in subprocesses at widths 1/4/8). The structural golden tests for
# C12/C14/C16 already gate in their tiers above and name the first
# divergent path on a mismatch; the byte compare here is the cheap
# belt-and-suspenders over the exact committed files. This step also
# writes the artifacts CI archives (SWEEP_cXX.json + RUNBOOK.json, repo
# root) and prints each plan's wall-clock against its pinned baseline so
# perf drift is attributable to one sweep plan, not "the suite got slow".
cargo test -q -p ckpt-bench --test sweep_properties
cargo test -q -p ckpt-bench --test artifact_schema
SWEEP_OUT=$(./target/release/report sweep --out .)
echo "$SWEEP_OUT"
for f in SWEEP_c12.json SWEEP_c14.json SWEEP_c16.json; do
    cmp -s "$f" "crates/bench/goldens/$f" || {
        echo "FAIL: regenerated $f differs from crates/bench/goldens/$f"
        echo "      (the golden test for it names the first divergent path)"
        exit 1
    }
done
baseline_plan_wall() {
    case "$1" in
        c12.survivability)  echo 0.034 ;;
        c12.latency)        echo 0.013 ;;
        c12.transients)     echo 0.008 ;;
        c14.cluster)        echo 0.087 ;;
        c14.nodes)          echo 0.176 ;;
        c14.shards)         echo 0.139 ;;
        c14.stripes)        echo 0.141 ;;
        c16.traffic)        echo 0.102 ;;
        c16.latency)        echo 0.043 ;;
        c16.survivability)  echo 0.025 ;;
        c16.reconstruction) echo 0.011 ;;
        c16.availability)   echo 0.000 ;;
        *)                  echo 0.000 ;;
    esac
}
echo "$SWEEP_OUT" | grep '^  plan ' | while read -r _ name rest; do
    wall=$(echo "$rest" | sed 's/.*wall_s=//' | tr -d ')')
    base=$(baseline_plan_wall "$name")
    delta=$(awk -v w="$wall" -v b="$base" 'BEGIN { printf "%+.3f", w - b }')
    echo "  ${name}: ${wall}s (baseline ${base}s, delta ${delta}s)"
done

echo 'CI OK'
