#!/usr/bin/env bash
# The CI gate: build, test, lint. Run locally before pushing; the GitHub
# Actions workflow (.github/workflows/ci.yml) runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")"

echo '== cargo build --release =='
cargo build --release --workspace

echo '== cargo test -q =='
cargo test -q --workspace

echo '== crash-matrix gate (full cross product, deterministic, <60s) =='
# Re-runs the exhaustive fault-injection matrix on its own with a hard
# wall-clock ceiling: the matrix must stay cheap enough to never be
# sampled or skipped in CI. (Binaries are already built by the test step,
# so the 60 s budget is all matrix.)
timeout 60 cargo test -q -p ckpt-restart --test crash_matrix -- --nocapture \
    | grep -E 'crash matrix:|skipped:' | tail -20

echo '== cargo clippy -- -D warnings =='
cargo clippy --workspace --all-targets -- -D warnings

echo '== perf gate: report timings =='
# Writes BENCH_report.json (archived as a workflow artifact). The headline
# experiment C7a ran 33 s before the software-TLB fast path and ~1 s after;
# the 20 s ceiling is generous slack for slow runners while still catching
# a translation-cache regression.
./target/release/report timings
C7A_WALL=$(grep '"c7a_cluster_mechanistic"' BENCH_report.json | awk -F'"wall_s": ' '{print $2}' | awk -F',' '{print $1}')
echo "c7a wall-clock: ${C7A_WALL}s (ceiling 20s)"
awk -v w="$C7A_WALL" 'BEGIN { exit !(w < 20.0) }' || {
    echo "FAIL: c7a_cluster_mechanistic took ${C7A_WALL}s (> 20s) — software-TLB regression?"
    exit 1
}

echo 'CI OK'
