#!/usr/bin/env bash
# The CI gate: build, test, lint. Run locally before pushing; the GitHub
# Actions workflow (.github/workflows/ci.yml) runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")"

echo '== cargo build --release =='
cargo build --release --workspace

echo '== cargo test -q =='
cargo test -q --workspace

echo '== cargo clippy -- -D warnings =='
cargo clippy --workspace --all-targets -- -D warnings

echo 'CI OK'
